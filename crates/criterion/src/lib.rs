//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment has no network access to crates.io, so this
//! in-repo shim provides the subset of the criterion API the workspace
//! benches use: [`Criterion::bench_function`], [`Bencher::iter`], the
//! [`criterion_group!`] / [`criterion_main!`] macros, and
//! [`black_box`]. Each benchmark runs a short warm-up followed by
//! `sample_size` timed samples and reports min / mean / max wall-clock
//! time per iteration.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the routine until the warm-up budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher::default();
            f(&mut b);
            if b.iters == 0 {
                break;
            }
        }

        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher::default();
            f(&mut b);
            if b.iters > 0 {
                per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        if per_iter.is_empty() {
            println!("{id:<40} (no samples)");
            return self;
        }
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{id:<40} time: [{} {} {}]",
            format_seconds(min),
            format_seconds(mean),
            format_seconds(max)
        );
        self
    }
}

/// Per-sample timing helper, mirroring `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated runs of `routine`, keeping its output alive via
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls >= 3);
    }

    #[test]
    fn seconds_formatting_picks_sane_units() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" µs"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
    }
}
