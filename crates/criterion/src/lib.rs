//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment has no network access to crates.io, so this
//! in-repo shim provides the subset of the criterion API the workspace
//! benches use: [`Criterion::bench_function`], [`Bencher::iter`], the
//! [`criterion_group!`] / [`criterion_main!`] macros, and
//! [`black_box`]. Each benchmark runs a short warm-up followed by
//! `sample_size` timed samples and reports min / mean / max wall-clock
//! time per iteration.
//!
//! Besides the human-readable line, results can be appended to a JSONL
//! file — one `{"id", "samples", "min_s", "mean_s", "max_s"}` object per
//! benchmark — either via [`Criterion::json_output`] or by setting the
//! `CRITERION_JSON` environment variable to the target path, so CI and
//! the `BENCH_*.json` baselines can consume timings without parsing the
//! console format.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    json_path: Option<PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            json_path: std::env::var_os("CRITERION_JSON").map(PathBuf::from),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Appends each benchmark's result to `path` as one JSON object per
    /// line (in addition to the console summary). Overrides the
    /// `CRITERION_JSON` environment variable.
    pub fn json_output(mut self, path: impl Into<PathBuf>) -> Self {
        self.json_path = Some(path.into());
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the routine until the warm-up budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher::default();
            f(&mut b);
            if b.iters == 0 {
                break;
            }
        }

        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher::default();
            f(&mut b);
            if b.iters > 0 {
                per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        if per_iter.is_empty() {
            println!("{id:<40} (no samples)");
            return self;
        }
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{id:<40} time: [{} {} {}]",
            format_seconds(min),
            format_seconds(mean),
            format_seconds(max)
        );
        if let Some(path) = &self.json_path {
            let line = result_json(id, per_iter.len(), min, mean, max);
            if let Err(e) = append_line(path, &line) {
                eprintln!("warning: cannot append to {}: {e}", path.display());
            }
        }
        self
    }
}

/// One benchmark result as a JSON object (no trailing newline).
fn result_json(id: &str, samples: usize, min: f64, mean: f64, max: f64) -> String {
    format!(
        "{{\"id\": \"{}\", \"samples\": {samples}, \"min_s\": {min:.9}, \"mean_s\": {mean:.9}, \"max_s\": {max:.9}}}",
        json_escape(id)
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn append_line(path: &std::path::Path, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

/// Per-sample timing helper, mirroring `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated runs of `routine`, keeping its output alive via
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls >= 3);
    }

    #[test]
    fn seconds_formatting_picks_sane_units() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" µs"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
    }

    #[test]
    fn result_json_shape_and_escaping() {
        let line = result_json("fig5 \"quick\"", 3, 1e-3, 2e-3, 4e-3);
        assert!(line.starts_with("{\"id\": \"fig5 \\\"quick\\\"\""));
        assert!(line.contains("\"samples\": 3"));
        assert!(line.contains("\"mean_s\": 0.002000000"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn json_output_appends_one_line_per_bench() {
        let path =
            std::env::temp_dir().join(format!("criterion_shim_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .json_output(&path);
        c.bench_function("first", |b| b.iter(|| 1 + 1));
        c.bench_function("second", |b| b.iter(|| 2 + 2));
        let text = std::fs::read_to_string(&path).expect("json file written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\": \"first\""));
        assert!(lines[1].contains("\"id\": \"second\""));
        let _ = std::fs::remove_file(&path);
    }
}
