//! Property tests for the bus/DMA pacing model.

use iobus::{Bus, BusConfig, BusDiscipline, DmaDirection, DmaSource, DmaTransfer, IssueOutcome};
use proptest::prelude::*;
use simcore::{SimDuration, SimTime};

fn drain(bus: &mut Bus) -> Vec<(SimTime, iobus::DmaRequest)> {
    let mut out = Vec::new();
    let mut now = SimTime::ZERO;
    let mut guard = 0;
    while bus.active_transfers() > 0 {
        guard += 1;
        assert!(guard < 2_000_000, "drain did not terminate");
        match bus.next_issue_time(now) {
            Some(t) => now = now.max(t),
            None => break,
        }
        if let IssueOutcome::Issued(r) = bus.issue(now) {
            if r.is_first {
                bus.ack_first(r.transfer, now);
            }
            out.push((now, r));
        }
    }
    out
}

fn transfers(sizes: &[u64]) -> Vec<DmaTransfer> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &bytes)| {
            DmaTransfer::new(
                i as u64 + 1,
                0,
                i as u64,
                bytes,
                DmaDirection::FromMemory,
                DmaSource::Network,
            )
        })
        .collect()
}

proptest! {
    /// Every transfer's bytes are delivered exactly once, in sequence, for
    /// any mix of sizes and either discipline.
    #[test]
    fn byte_conservation(
        sizes in prop::collection::vec(1u64..20_000, 1..10),
        tdm in any::<bool>(),
    ) {
        let discipline = if tdm { BusDiscipline::TimeDivision } else { BusDiscipline::PerEngine };
        let mut bus = Bus::new(0, BusConfig::pci_x().with_discipline(discipline));
        for t in transfers(&sizes) {
            bus.add_transfer(SimTime::ZERO, t);
        }
        let reqs = drain(&mut bus);
        for (i, &bytes) in sizes.iter().enumerate() {
            let tid = i as u64 + 1;
            let mine: Vec<_> = reqs.iter().filter(|(_, r)| r.transfer == tid).collect();
            let total: u64 = mine.iter().map(|(_, r)| r.bytes).sum();
            prop_assert_eq!(total, bytes, "transfer {} byte mismatch", tid);
            // Sequence numbers are 0..n in order.
            for (j, (_, r)) in mine.iter().enumerate() {
                prop_assert_eq!(r.seq, j as u64);
            }
            prop_assert!(mine.first().unwrap().1.is_first);
            prop_assert!(mine.last().unwrap().1.is_last);
        }
    }

    /// Per-stream request cadence never exceeds the engine rate: gaps
    /// between consecutive requests of one transfer are >= the slot period
    /// (after the first ack).
    #[test]
    fn per_stream_cadence_bounded(
        sizes in prop::collection::vec(64u64..4096, 1..6),
    ) {
        let mut bus = Bus::new(0, BusConfig::pci_x());
        for t in transfers(&sizes) {
            bus.add_transfer(SimTime::ZERO, t);
        }
        let period = BusConfig::pci_x().slot_period();
        let reqs = drain(&mut bus);
        for i in 0..sizes.len() {
            let tid = i as u64 + 1;
            let times: Vec<SimTime> = reqs
                .iter()
                .filter(|(_, r)| r.transfer == tid && !r.is_first)
                .map(|(t, _)| *t)
                .collect();
            for w in times.windows(2) {
                prop_assert!(w[1] - w[0] >= period, "stream {} too fast", tid);
            }
        }
    }

    /// Under strict TDM the bus never exceeds one request per slot in
    /// aggregate.
    #[test]
    fn tdm_aggregate_rate_bounded(
        sizes in prop::collection::vec(64u64..2048, 2..6),
    ) {
        let mut bus = Bus::new(
            0,
            BusConfig::pci_x().with_discipline(BusDiscipline::TimeDivision),
        );
        for t in transfers(&sizes) {
            bus.add_transfer(SimTime::ZERO, t);
        }
        let period = BusConfig::pci_x().slot_period();
        let reqs = drain(&mut bus);
        for w in reqs.windows(2) {
            prop_assert!(w[1].0 - w[0].0 >= period, "TDM slot violated");
        }
    }

    /// A stream blocked on its first ack never issues further requests.
    #[test]
    fn unacked_stream_stays_silent(bytes in 16u64..8192) {
        let mut bus = Bus::new(0, BusConfig::pci_x());
        bus.add_transfer(
            SimTime::ZERO,
            DmaTransfer::new(1, 0, 0, bytes, DmaDirection::ToMemory, DmaSource::Disk),
        );
        match bus.issue(SimTime::ZERO) {
            IssueOutcome::Issued(r) => prop_assert!(r.is_first),
            IssueOutcome::Idle => prop_assert!(false, "first request must issue"),
        }
        // No ack: the bus must stay idle forever after.
        for step in 1..50u64 {
            let t = SimTime::ZERO + SimDuration::from_us(step);
            prop_assert_eq!(bus.issue(t), IssueOutcome::Idle);
        }
        prop_assert_eq!(bus.next_issue_time(SimTime::ZERO + SimDuration::from_ms(1)), None);
    }

    /// requests_for is exact: ceil division, never losing a byte.
    #[test]
    fn requests_for_matches_manual(bytes in 1u64..1_000_000, req in 1u64..512) {
        let c = BusConfig::pci_x().with_request_bytes(req);
        let n = c.requests_for(bytes);
        prop_assert!(n * req >= bytes);
        prop_assert!((n - 1) * req < bytes);
    }
}
