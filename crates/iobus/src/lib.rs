//! I/O bus and DMA engine model.
//!
//! The paper's data-server memory traffic arrives over PCI-X-style I/O buses
//! (Section 3): a large DMA transfer (e.g. an 8-KB page) is broken into many
//! small **DMA-memory requests** (8 bytes by default) that a DMA engine
//! places on the bus one per bus slot. Because the bus is ~3x slower than
//! the memory chip, the chip idles between successive requests — the energy
//! waste the paper attacks.
//!
//! This crate models exactly that pacing:
//!
//! * [`BusConfig`] — bus byte rate and DMA-memory request size;
//!   [`BusConfig::pci_x`] gives the paper's 1.064 GB/s, 8-byte default.
//! * [`DmaTransfer`] — one large transfer (page in/out) bound to a bus.
//! * [`Bus`] — the slot-paced scheduler: at most one request per
//!   `request_bytes / byte_rate` slot, round-robin across the bus's active
//!   transfers, and — crucially for DMA-TA — a transfer's **first** request
//!   must be acknowledged by the memory controller before its subsequent
//!   requests are issued (paper Section 4.1.1).
//!
//! # Example
//!
//! ```
//! use iobus::{Bus, BusConfig, DmaDirection, DmaSource, DmaTransfer, IssueOutcome};
//! use simcore::SimTime;
//!
//! let mut bus = Bus::new(0, BusConfig::pci_x());
//! let t = DmaTransfer::new(1, 0, 77, 8192, DmaDirection::FromMemory, DmaSource::Network);
//! bus.add_transfer(SimTime::ZERO, t);
//! match bus.issue(SimTime::ZERO) {
//!     IssueOutcome::Issued(req) => {
//!         assert!(req.is_first);
//!         assert_eq!(req.page, 77);
//!     }
//!     IssueOutcome::Idle => unreachable!("a ready stream must issue"),
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use simcore::{SimDuration, SimTime};

/// Index of an I/O bus in the system.
pub type BusId = usize;

/// Unique identifier of a DMA transfer.
pub type TransferId = u64;

/// A logical page number (the unit DMA transfers address).
pub type PageId = u64;

/// Direction of a DMA transfer relative to main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDirection {
    /// Memory is read; data flows out (e.g. buffer cache to network).
    FromMemory,
    /// Memory is written; data flows in (e.g. disk read into the cache).
    ToMemory,
}

/// Which device class initiated a DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaSource {
    /// A network interface (SAN / NIC).
    Network,
    /// A disk or disk-array controller.
    Disk,
}

impl std::fmt::Display for DmaSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmaSource::Network => f.write_str("network"),
            DmaSource::Disk => f.write_str("disk"),
        }
    }
}

/// How concurrent DMA streams share a bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusDiscipline {
    /// Each DMA engine paces its own stream at the bus data rate,
    /// independent of other streams (split-transaction / multi-master
    /// behavior; transient oversubscription is allowed). This is the
    /// paper's model: Figure 2(a) fixes each transfer's request cadence at
    /// the bus rate, and Figure 3 interleaves such streams freely.
    PerEngine,
    /// Strict time-division multiplexing: at most one request per slot,
    /// round-robin across streams (a conservative physical model, kept for
    /// ablation).
    TimeDivision,
}

/// Static configuration of one I/O bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusConfig {
    /// Sustained bus data rate in bytes per second.
    pub bytes_per_sec: f64,
    /// Size of one DMA-memory request in bytes.
    pub request_bytes: u64,
    /// Stream-sharing discipline.
    pub discipline: BusDiscipline,
}

impl BusConfig {
    /// The paper's PCI-X bus: 133 MHz x 64 bit = 1.064 GB/s, 8-byte
    /// DMA-memory requests.
    pub fn pci_x() -> Self {
        BusConfig {
            bytes_per_sec: 1.064e9,
            request_bytes: 8,
            discipline: BusDiscipline::PerEngine,
        }
    }

    /// A custom bus rate with the PCI-X request size.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn with_rate(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "invalid bus rate: {bytes_per_sec}"
        );
        BusConfig {
            bytes_per_sec,
            request_bytes: 8,
            discipline: BusDiscipline::PerEngine,
        }
    }

    /// Replaces the DMA-memory request size (the paper's granularity
    /// ablation knob).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn with_request_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "zero-byte requests");
        self.request_bytes = bytes;
        self
    }

    /// Replaces the stream-sharing discipline.
    pub fn with_discipline(mut self, discipline: BusDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// The bus slot period: time to move one DMA-memory request.
    pub fn slot_period(&self) -> SimDuration {
        SimDuration::from_bytes_at_rate(self.request_bytes, self.bytes_per_sec)
    }

    /// Number of DMA-memory requests a transfer of `bytes` needs.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn requests_for(&self, bytes: u64) -> u64 {
        assert!(bytes > 0, "zero-byte transfer");
        bytes.div_ceil(self.request_bytes)
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig::pci_x()
    }
}

/// One large DMA operation: a page-sized block moving between memory and a
/// device over a specific bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTransfer {
    /// Unique transfer id.
    pub id: TransferId,
    /// Bus carrying the transfer.
    pub bus: BusId,
    /// Logical page accessed.
    pub page: PageId,
    /// Total bytes moved.
    pub bytes: u64,
    /// Direction relative to memory.
    pub direction: DmaDirection,
    /// Initiating device class.
    pub source: DmaSource,
    /// Engine-side arena slot for this transfer's bookkeeping record
    /// (see [`DmaTransfer::with_slot`]); propagated onto every
    /// [`DmaRequest`] so the controller resolves request → record with
    /// one stable index instead of a map probe. Zero when unused.
    pub slot: u32,
}

impl DmaTransfer {
    /// Creates a transfer description.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn new(
        id: TransferId,
        bus: BusId,
        page: PageId,
        bytes: u64,
        direction: DmaDirection,
        source: DmaSource,
    ) -> Self {
        assert!(bytes > 0, "zero-byte transfer");
        DmaTransfer {
            id,
            bus,
            page,
            bytes,
            direction,
            source,
            slot: 0,
        }
    }

    /// Attaches the engine's arena slot for this transfer (builder
    /// style); the bus stamps it on every issued request.
    pub fn with_slot(mut self, slot: u32) -> Self {
        self.slot = slot;
        self
    }
}

/// One DMA-memory request as it appears at the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaRequest {
    /// Transfer this request belongs to.
    pub transfer: TransferId,
    /// Bus it arrived on.
    pub bus: BusId,
    /// Logical page accessed.
    pub page: PageId,
    /// 0-based sequence number within the transfer.
    pub seq: u64,
    /// Bytes in this request.
    pub bytes: u64,
    /// True for the transfer's first request (the only one DMA-TA may
    /// delay).
    pub is_first: bool,
    /// True for the transfer's last request.
    pub is_last: bool,
    /// Initiating device class (propagated from the transfer).
    pub source: DmaSource,
    /// Engine-side arena slot (propagated from the transfer).
    pub slot: u32,
}

/// Result of asking a bus to issue at a slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IssueOutcome {
    /// A request went out on the bus.
    Issued(DmaRequest),
    /// No stream was eligible (all awaiting ack, or none active).
    Idle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamPhase {
    /// May issue its next request at the next slot.
    Ready,
    /// First request issued; waiting for the controller's ack.
    AwaitingAck,
}

#[derive(Debug, Clone)]
struct Stream {
    transfer: DmaTransfer,
    issued: u64,
    total: u64,
    phase: StreamPhase,
    /// Earliest instant this stream's next request may issue (per-engine
    /// pacing).
    next_due: SimTime,
}

/// A slot-paced I/O bus multiplexing the DMA transfers assigned to it.
///
/// Determinism: streams are serviced round-robin in arrival order;
/// [`Bus::issue`] never allocates.
#[derive(Debug, Clone)]
pub struct Bus {
    id: BusId,
    config: BusConfig,
    /// `config.slot_period()`, cached: the config is fixed at
    /// construction and the period is consulted on every issue.
    slot_period: SimDuration,
    streams: Vec<Stream>,
    rr_next: usize,
    next_free_slot: SimTime,
    issued_total: u64,
}

impl Bus {
    /// Creates an idle bus.
    pub fn new(id: BusId, config: BusConfig) -> Self {
        Bus {
            id,
            slot_period: config.slot_period(),
            config,
            streams: Vec::new(),
            rr_next: 0,
            next_free_slot: SimTime::ZERO,
            issued_total: 0,
        }
    }

    /// This bus's index.
    pub fn id(&self) -> BusId {
        self.id
    }

    /// The bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Number of active (incomplete) transfers on the bus.
    pub fn active_transfers(&self) -> usize {
        self.streams.len()
    }

    /// Total requests issued since construction.
    pub fn issued_total(&self) -> u64 {
        self.issued_total
    }

    /// Registers a new transfer, eligible to issue from `now` on.
    ///
    /// # Panics
    ///
    /// Panics if the transfer belongs to a different bus.
    pub fn add_transfer(&mut self, now: SimTime, transfer: DmaTransfer) {
        assert_eq!(transfer.bus, self.id, "transfer routed to wrong bus");
        let total = self.config.requests_for(transfer.bytes);
        self.streams.push(Stream {
            transfer,
            issued: 0,
            total,
            phase: StreamPhase::Ready,
            next_due: now,
        });
    }

    /// Acknowledges the first request of `transfer` at `now`, unblocking
    /// its stream; the next request issues one slot period later (the
    /// engine resumes once the first request is accepted). No-op if the
    /// stream already completed or was never blocked (acks of non-first
    /// requests are implicit).
    pub fn ack_first(&mut self, transfer: TransferId, now: SimTime) {
        if let Some(s) = self.streams.iter_mut().find(|s| s.transfer.id == transfer) {
            if s.phase == StreamPhase::AwaitingAck {
                s.phase = StreamPhase::Ready;
                s.next_due = s.next_due.max(now + self.slot_period);
            }
        }
    }

    /// True if at least one stream could issue right now (slot timing
    /// aside).
    pub fn has_eligible_stream(&self) -> bool {
        self.streams.iter().any(|s| s.phase == StreamPhase::Ready)
    }

    /// The earliest instant at or after `now` at which the bus could issue a
    /// request, or `None` if no stream is eligible.
    pub fn next_issue_time(&self, now: SimTime) -> Option<SimTime> {
        match self.config.discipline {
            BusDiscipline::TimeDivision => self
                .has_eligible_stream()
                .then(|| now.max(self.next_free_slot)),
            BusDiscipline::PerEngine => self
                .streams
                .iter()
                .filter(|s| s.phase == StreamPhase::Ready)
                .map(|s| s.next_due.max(now))
                .min(),
        }
    }

    /// Issues one request at `now` from the next eligible stream in
    /// round-robin order. Returns [`IssueOutcome::Idle`] when no stream is
    /// eligible or the slot is not free yet (callers may safely poll).
    pub fn issue(&mut self, now: SimTime) -> IssueOutcome {
        if self.streams.is_empty() {
            return IssueOutcome::Idle;
        }
        if self.config.discipline == BusDiscipline::TimeDivision && now < self.next_free_slot {
            return IssueOutcome::Idle;
        }
        let n = self.streams.len();
        for probe in 0..n {
            let idx = (self.rr_next + probe) % n;
            if self.streams[idx].phase != StreamPhase::Ready {
                continue;
            }
            if self.config.discipline == BusDiscipline::PerEngine
                && self.streams[idx].next_due > now
            {
                continue;
            }
            let request = {
                let s = &mut self.streams[idx];
                let seq = s.issued;
                s.issued += 1;
                let is_first = seq == 0;
                let is_last = s.issued == s.total;
                // Last request may be short.
                let bytes = if is_last {
                    s.transfer.bytes - (s.total - 1) * self.config.request_bytes
                } else {
                    self.config.request_bytes
                };
                if is_first {
                    s.phase = StreamPhase::AwaitingAck;
                } else {
                    s.next_due = now + self.slot_period;
                }
                DmaRequest {
                    transfer: s.transfer.id,
                    bus: self.id,
                    page: s.transfer.page,
                    seq,
                    bytes,
                    is_first,
                    is_last,
                    source: s.transfer.source,
                    slot: s.transfer.slot,
                }
            };
            if request.is_last {
                self.streams.remove(idx);
                self.rr_next = if self.streams.is_empty() {
                    0
                } else if idx < self.rr_next {
                    // Removal shifted the RR cursor left.
                    (self.rr_next - 1) % self.streams.len()
                } else {
                    idx % self.streams.len()
                };
            } else {
                self.rr_next = (idx + 1) % n;
            }
            self.next_free_slot = now + self.slot_period;
            self.issued_total += 1;
            return IssueOutcome::Issued(request);
        }
        IssueOutcome::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xfer(id: TransferId, page: PageId, bytes: u64) -> DmaTransfer {
        DmaTransfer::new(
            id,
            0,
            page,
            bytes,
            DmaDirection::FromMemory,
            DmaSource::Network,
        )
    }

    fn drain(bus: &mut Bus, mut now: SimTime, auto_ack: bool) -> Vec<(SimTime, DmaRequest)> {
        let mut out = Vec::new();
        while bus.active_transfers() > 0 {
            match bus.next_issue_time(now) {
                Some(t) => now = now.max(t),
                None => break,
            }
            if let IssueOutcome::Issued(r) = bus.issue(now) {
                if r.is_first && auto_ack {
                    bus.ack_first(r.transfer, now);
                }
                out.push((now, r));
            }
        }
        out
    }

    #[test]
    fn pci_x_slot_period_matches_paper() {
        let c = BusConfig::pci_x();
        // 8 bytes at 1.064 GB/s: ~7.52 ns, i.e. ~12 memory cycles of 625 ps.
        let p = c.slot_period();
        assert!(p.as_ns_f64() > 7.4 && p.as_ns_f64() < 7.6, "{p}");
        assert_eq!(c.requests_for(8192), 1024);
        assert_eq!(c.requests_for(512), 64);
    }

    #[test]
    fn single_stream_paces_at_slot_period() {
        let mut bus = Bus::new(0, BusConfig::pci_x());
        bus.add_transfer(SimTime::ZERO, xfer(1, 5, 64)); // 8 requests
        let reqs = drain(&mut bus, SimTime::ZERO, true);
        assert_eq!(reqs.len(), 8);
        let period = BusConfig::pci_x().slot_period();
        for (i, window) in reqs.windows(2).enumerate() {
            let gap = window[1].0 - window[0].0;
            assert_eq!(gap, period, "gap {i} was {gap}");
        }
        assert!(reqs[0].1.is_first && reqs[7].1.is_last);
        let seqs: Vec<u64> = reqs.iter().map(|(_, r)| r.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn first_request_gates_the_stream() {
        let mut bus = Bus::new(0, BusConfig::pci_x());
        bus.add_transfer(SimTime::ZERO, xfer(1, 5, 64));
        let r = match bus.issue(SimTime::ZERO) {
            IssueOutcome::Issued(r) => r,
            IssueOutcome::Idle => panic!("should issue"),
        };
        assert!(r.is_first);
        // Without an ack, the bus has nothing eligible.
        assert_eq!(bus.next_issue_time(SimTime::ZERO), None);
        let later = SimTime::ZERO + SimDuration::from_us(1);
        assert_eq!(bus.issue(later), IssueOutcome::Idle);
        // After the ack it resumes, one slot period after the ack.
        bus.ack_first(1, later);
        let resume = bus.next_issue_time(later).unwrap();
        assert_eq!(resume, later + BusConfig::pci_x().slot_period());
        match bus.issue(resume) {
            IssueOutcome::Issued(r2) => assert_eq!(r2.seq, 1),
            IssueOutcome::Idle => panic!("ack did not unblock"),
        }
    }

    #[test]
    fn two_streams_share_round_robin() {
        let mut bus = Bus::new(
            0,
            BusConfig::pci_x().with_discipline(BusDiscipline::TimeDivision),
        );
        bus.add_transfer(SimTime::ZERO, xfer(1, 10, 32)); // 4 reqs
        bus.add_transfer(SimTime::ZERO, xfer(2, 20, 32)); // 4 reqs
        let reqs = drain(&mut bus, SimTime::ZERO, true);
        let order: Vec<TransferId> = reqs.iter().map(|(_, r)| r.transfer).collect();
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2, 1, 2]);
        // Aggregate rate = one request per slot.
        let period = BusConfig::pci_x().slot_period();
        assert_eq!(reqs.last().unwrap().0, SimTime::ZERO + period * 7);
    }

    #[test]
    fn blocked_stream_does_not_stall_others() {
        let mut bus = Bus::new(
            0,
            BusConfig::pci_x().with_discipline(BusDiscipline::TimeDivision),
        );
        bus.add_transfer(SimTime::ZERO, xfer(1, 10, 32));
        bus.add_transfer(SimTime::ZERO, xfer(2, 20, 32));
        // Issue both firsts; ack only transfer 2.
        let r1 = match bus.issue(SimTime::ZERO) {
            IssueOutcome::Issued(r) => r,
            _ => panic!(),
        };
        assert_eq!(r1.transfer, 1);
        let t1 = bus.next_issue_time(SimTime::ZERO).unwrap();
        let r2 = match bus.issue(t1) {
            IssueOutcome::Issued(r) => r,
            _ => panic!(),
        };
        assert_eq!(r2.transfer, 2);
        bus.ack_first(2, t1);
        // Only transfer 2 issues now.
        let mut now = t1;
        for _ in 0..3 {
            now = bus.next_issue_time(now).unwrap();
            match bus.issue(now) {
                IssueOutcome::Issued(r) => assert_eq!(r.transfer, 2),
                IssueOutcome::Idle => panic!("stream 2 should flow"),
            }
        }
        assert_eq!(bus.active_transfers(), 1); // 2 completed, 1 still blocked
        bus.ack_first(1, now);
        let reqs = drain(&mut bus, now + SimDuration::from_us(1), true);
        assert_eq!(reqs.len(), 3);
        assert!(reqs.iter().all(|(_, r)| r.transfer == 1));
    }

    #[test]
    fn short_tail_request_carries_remainder() {
        let mut bus = Bus::new(0, BusConfig::pci_x());
        bus.add_transfer(SimTime::ZERO, xfer(1, 3, 20)); // 8 + 8 + 4
        let reqs = drain(&mut bus, SimTime::ZERO, true);
        let bytes: Vec<u64> = reqs.iter().map(|(_, r)| r.bytes).collect();
        assert_eq!(bytes, vec![8, 8, 4]);
        assert!(reqs[2].1.is_last);
    }

    #[test]
    fn issue_respects_slot_occupancy() {
        let mut bus = Bus::new(
            0,
            BusConfig::pci_x().with_discipline(BusDiscipline::TimeDivision),
        );
        bus.add_transfer(SimTime::ZERO, xfer(1, 3, 8192));
        let _ = bus.issue(SimTime::ZERO);
        bus.ack_first(1, SimTime::ZERO);
        // Same instant: slot consumed, nothing issues.
        assert_eq!(bus.issue(SimTime::ZERO), IssueOutcome::Idle);
        let next = bus.next_issue_time(SimTime::ZERO).unwrap();
        assert_eq!(next, SimTime::ZERO + BusConfig::pci_x().slot_period());
    }

    #[test]
    fn aggregate_throughput_matches_rate() {
        // 8 KB over a dedicated PCI-X bus takes bytes/rate seconds.
        let mut bus = Bus::new(0, BusConfig::pci_x());
        bus.add_transfer(SimTime::ZERO, xfer(1, 3, 8192));
        let reqs = drain(&mut bus, SimTime::ZERO, true);
        assert_eq!(reqs.len(), 1024);
        let span = reqs.last().unwrap().0 - reqs[0].0;
        let expect = SimDuration::from_bytes_at_rate(8192, 1.064e9);
        // 1023 slot gaps vs 1024 requests: within one slot.
        assert!(span <= expect && span >= expect - BusConfig::pci_x().slot_period() * 2);
    }

    #[test]
    fn three_streams_removal_keeps_rotation_fair() {
        let mut bus = Bus::new(
            0,
            BusConfig::pci_x().with_discipline(BusDiscipline::TimeDivision),
        );
        bus.add_transfer(SimTime::ZERO, xfer(1, 1, 16)); // 2 reqs
        bus.add_transfer(SimTime::ZERO, xfer(2, 2, 32)); // 4 reqs
        bus.add_transfer(SimTime::ZERO, xfer(3, 3, 32)); // 4 reqs
        let reqs = drain(&mut bus, SimTime::ZERO, true);
        assert_eq!(reqs.len(), 10);
        let order: Vec<TransferId> = reqs.iter().map(|(_, r)| r.transfer).collect();
        assert_eq!(order, vec![1, 2, 3, 1, 2, 3, 2, 3, 2, 3]);
    }

    #[test]
    fn custom_request_size() {
        let c = BusConfig::pci_x().with_request_bytes(64);
        assert_eq!(c.requests_for(8192), 128);
        let mut bus = Bus::new(0, c);
        bus.add_transfer(
            SimTime::ZERO,
            DmaTransfer::new(9, 0, 1, 128, DmaDirection::ToMemory, DmaSource::Disk),
        );
        let reqs = drain(&mut bus, SimTime::ZERO, true);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].1.bytes, 64);
    }

    #[test]
    fn per_engine_streams_pace_independently() {
        // Two engines on one bus each run at the full engine rate: their
        // requests land pairwise at the same instants (the paper's
        // Figure 2(a)/3 cadence model).
        let mut bus = Bus::new(0, BusConfig::pci_x());
        bus.add_transfer(SimTime::ZERO, xfer(1, 10, 32)); // 4 reqs
        bus.add_transfer(SimTime::ZERO, xfer(2, 20, 32)); // 4 reqs
        let reqs = drain(&mut bus, SimTime::ZERO, true);
        assert_eq!(reqs.len(), 8);
        let period = BusConfig::pci_x().slot_period();
        // Both last requests complete within 3 periods of the first + ack
        // skew, far faster than strict TDM (7 periods).
        let span = reqs.last().unwrap().0 - reqs[0].0;
        assert!(span <= period * 4, "span {span}");
        // Per-stream cadence is one request per period.
        for tid in [1u64, 2] {
            let times: Vec<SimTime> = reqs
                .iter()
                .filter(|(_, r)| r.transfer == tid)
                .map(|(t, _)| *t)
                .collect();
            for w in times.windows(2) {
                assert_eq!(w[1] - w[0], period, "stream {tid} cadence broken");
            }
        }
    }

    #[test]
    fn per_engine_ack_defers_next_request() {
        let mut bus = Bus::new(0, BusConfig::pci_x());
        bus.add_transfer(SimTime::ZERO, xfer(1, 10, 24)); // 3 reqs
        let _first = bus.issue(SimTime::ZERO);
        // Ack arrives late (e.g. after a DMA-TA delay): the stream resumes
        // one period after the ack, not after the original issue.
        let ack_at = SimTime::ZERO + SimDuration::from_us(5);
        bus.ack_first(1, ack_at);
        let resume = bus.next_issue_time(ack_at).unwrap();
        assert_eq!(resume, ack_at + BusConfig::pci_x().slot_period());
    }

    #[test]
    #[should_panic(expected = "wrong bus")]
    fn wrong_bus_panics() {
        let mut bus = Bus::new(0, BusConfig::pci_x());
        let t = DmaTransfer::new(1, 3, 0, 8, DmaDirection::FromMemory, DmaSource::Network);
        bus.add_transfer(SimTime::ZERO, t);
    }
}
