//! Trace event model.

use iobus::{BusId, DmaDirection, DmaSource, PageId};
use simcore::{SimDuration, SimTime};

use crate::popularity::PopularityCdf;
use crate::stats::TraceStats;

/// One large DMA transfer in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaRecord {
    /// When the transfer starts issuing requests.
    pub time: SimTime,
    /// Bus carrying the transfer.
    pub bus: BusId,
    /// Logical page moved.
    pub page: PageId,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Direction relative to memory.
    pub direction: DmaDirection,
    /// Initiating device class.
    pub source: DmaSource,
}

/// One processor access (a cache-line fill/writeback) in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcRecord {
    /// When the access reaches memory.
    pub time: SimTime,
    /// Logical page touched.
    pub page: PageId,
    /// Access size in bytes (typically one 64-byte cache line).
    pub bytes: u64,
}

/// A memory access in a data-server trace: either a DMA transfer or a
/// processor access (paper Table 2 traces contain both kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A DMA transfer.
    Dma(DmaRecord),
    /// A processor access.
    Proc(ProcRecord),
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> SimTime {
        match self {
            TraceEvent::Dma(d) => d.time,
            TraceEvent::Proc(p) => p.time,
        }
    }

    /// The logical page the event touches.
    pub fn page(&self) -> PageId {
        match self {
            TraceEvent::Dma(d) => d.page,
            TraceEvent::Proc(p) => p.page,
        }
    }

    /// True for DMA transfers.
    pub fn is_dma(&self) -> bool {
        matches!(self, TraceEvent::Dma(_))
    }
}

/// A time-ordered memory access trace.
///
/// # Example
///
/// ```
/// use dma_trace::{DmaRecord, Trace, TraceEvent};
/// use iobus::{DmaDirection, DmaSource};
/// use simcore::{SimDuration, SimTime};
///
/// let e = TraceEvent::Dma(DmaRecord {
///     time: SimTime::ZERO + SimDuration::from_us(3),
///     bus: 0,
///     page: 7,
///     bytes: 8192,
///     direction: DmaDirection::FromMemory,
///     source: DmaSource::Network,
/// });
/// let trace = Trace::from_events(vec![e]);
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace, sorting events by time (stable, so simultaneous
    /// events keep their given order).
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.time());
        Trace { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over events in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// The events as a slice.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Timestamp of the last event (zero for an empty trace).
    pub fn duration(&self) -> SimDuration {
        self.events
            .last()
            .map(|e| e.time().elapsed_since(SimTime::ZERO))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Summary statistics (the rows of the paper's Table 2).
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_trace(self)
    }

    /// The DMA page-popularity CDF (the paper's Figure 4).
    pub fn popularity_cdf(&self) -> PopularityCdf {
        PopularityCdf::from_trace(self)
    }

    /// Merges two traces into one time-ordered trace.
    pub fn merge(self, other: Trace) -> Trace {
        let mut events = self.events;
        events.extend(other.events);
        Trace::from_events(events)
    }

    /// A copy containing only events strictly before `cutoff` (useful for
    /// warm-up splits).
    pub fn truncated(&self, cutoff: SimTime) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .copied()
                .take_while(|e| e.time() < cutoff)
                .collect(),
        }
    }
}

impl IntoIterator for Trace {
    type Item = TraceEvent;
    type IntoIter = std::vec::IntoIter<TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace::from_events(iter.into_iter().collect())
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
        self.events.sort_by_key(|e| e.time());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dma_at(us: u64, page: PageId) -> TraceEvent {
        TraceEvent::Dma(DmaRecord {
            time: SimTime::ZERO + SimDuration::from_us(us),
            bus: 0,
            page,
            bytes: 8192,
            direction: DmaDirection::FromMemory,
            source: DmaSource::Network,
        })
    }

    fn proc_at(us: u64, page: PageId) -> TraceEvent {
        TraceEvent::Proc(ProcRecord {
            time: SimTime::ZERO + SimDuration::from_us(us),
            page,
            bytes: 64,
        })
    }

    #[test]
    fn from_events_sorts_by_time() {
        let t = Trace::from_events(vec![dma_at(30, 1), proc_at(10, 2), dma_at(20, 3)]);
        let times: Vec<u64> = t.iter().map(|e| e.time().as_ps() / 1_000_000).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(t.duration(), SimDuration::from_us(30));
    }

    #[test]
    fn merge_interleaves() {
        let a = Trace::from_events(vec![dma_at(10, 1), dma_at(30, 1)]);
        let b = Trace::from_events(vec![proc_at(20, 2)]);
        let m = a.merge(b);
        assert_eq!(m.len(), 3);
        assert!(!m.events()[1].is_dma());
    }

    #[test]
    fn truncated_keeps_prefix() {
        let t = Trace::from_events(vec![dma_at(10, 1), dma_at(20, 2), dma_at(30, 3)]);
        let cut = t.truncated(SimTime::ZERO + SimDuration::from_us(20));
        assert_eq!(cut.len(), 1);
        assert_eq!(cut.events()[0].page(), 1);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = vec![dma_at(5, 1)].into_iter().collect();
        t.extend(vec![dma_at(1, 2)]);
        assert_eq!(t.events()[0].page(), 2);
        let pages: Vec<PageId> = (&t).into_iter().map(|e| e.page()).collect();
        assert_eq!(pages, vec![2, 1]);
    }

    #[test]
    fn empty_trace_duration_zero() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.duration(), SimDuration::ZERO);
    }
}
