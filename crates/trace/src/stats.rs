//! Trace summary statistics (the paper's Table 2 rows).

use std::fmt;

use iobus::DmaSource;
use simcore::SimDuration;

use crate::event::{Trace, TraceEvent};

/// Arrival-rate and volume statistics of a trace.
///
/// # Example
///
/// ```
/// use dma_trace::{SyntheticDbGen, TraceGen};
/// use simcore::SimDuration;
///
/// let trace = SyntheticDbGen::default().generate(SimDuration::from_ms(2), 7);
/// let s = trace.stats();
/// assert!(s.proc_accesses > 0);
/// assert!(s.network_rate_per_ms() > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Trace length (time of the last event).
    pub duration: SimDuration,
    /// Number of network DMA transfers.
    pub network_transfers: u64,
    /// Number of disk DMA transfers.
    pub disk_transfers: u64,
    /// Number of processor accesses.
    pub proc_accesses: u64,
    /// Total bytes moved by DMA transfers.
    pub dma_bytes: u64,
    /// Number of distinct pages touched by DMAs.
    pub distinct_dma_pages: u64,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut s = TraceStats {
            duration: trace.duration(),
            ..TraceStats::default()
        };
        let mut pages: Vec<u64> = Vec::new();
        for e in trace {
            match e {
                TraceEvent::Dma(d) => {
                    match d.source {
                        DmaSource::Network => s.network_transfers += 1,
                        DmaSource::Disk => s.disk_transfers += 1,
                    }
                    s.dma_bytes += d.bytes;
                    pages.push(d.page);
                }
                TraceEvent::Proc(_) => s.proc_accesses += 1,
            }
        }
        pages.sort_unstable();
        pages.dedup();
        s.distinct_dma_pages = pages.len() as u64;
        s
    }

    /// Total DMA transfers (network + disk).
    pub fn dma_transfers(&self) -> u64 {
        self.network_transfers + self.disk_transfers
    }

    fn per_ms(&self, count: u64) -> f64 {
        let ms = self.duration.as_secs_f64() * 1e3;
        if ms == 0.0 {
            0.0
        } else {
            count as f64 / ms
        }
    }

    /// DMA transfers per millisecond.
    pub fn dma_rate_per_ms(&self) -> f64 {
        self.per_ms(self.dma_transfers())
    }

    /// Network DMA transfers per millisecond (paper: OLTP-St = 45.0,
    /// OLTP-Db = 100.0).
    pub fn network_rate_per_ms(&self) -> f64 {
        self.per_ms(self.network_transfers)
    }

    /// Disk DMA transfers per millisecond (paper: OLTP-St = 16.7).
    pub fn disk_rate_per_ms(&self) -> f64 {
        self.per_ms(self.disk_transfers)
    }

    /// Processor accesses per millisecond (paper: OLTP-Db = 23,300).
    pub fn proc_rate_per_ms(&self) -> f64 {
        self.per_ms(self.proc_accesses)
    }

    /// Average processor accesses per DMA transfer (paper: OLTP-Db ≈ 233).
    pub fn proc_accesses_per_transfer(&self) -> f64 {
        let dmas = self.dma_transfers();
        if dmas == 0 {
            0.0
        } else {
            self.proc_accesses as f64 / dmas as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "duration {} | net {:.1}/ms | disk {:.1}/ms | proc {:.0}/ms ({:.0}/transfer) | {} distinct DMA pages",
            self.duration,
            self.network_rate_per_ms(),
            self.disk_rate_per_ms(),
            self.proc_rate_per_ms(),
            self.proc_accesses_per_transfer(),
            self.distinct_dma_pages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DmaRecord, ProcRecord};
    use iobus::DmaDirection;
    use simcore::SimTime;

    fn build() -> Trace {
        let mut events = Vec::new();
        for i in 0..10u64 {
            events.push(TraceEvent::Dma(DmaRecord {
                time: SimTime::ZERO + SimDuration::from_us(i * 100),
                bus: 0,
                page: i % 3,
                bytes: 8192,
                direction: DmaDirection::FromMemory,
                source: if i % 5 == 0 {
                    DmaSource::Disk
                } else {
                    DmaSource::Network
                },
            }));
        }
        for i in 0..20u64 {
            events.push(TraceEvent::Proc(ProcRecord {
                time: SimTime::ZERO + SimDuration::from_us(i * 50),
                page: 1,
                bytes: 64,
            }));
        }
        Trace::from_events(events)
    }

    #[test]
    fn counts_and_rates() {
        let s = build().stats();
        assert_eq!(s.network_transfers, 8);
        assert_eq!(s.disk_transfers, 2);
        assert_eq!(s.proc_accesses, 20);
        assert_eq!(s.dma_transfers(), 10);
        assert_eq!(s.distinct_dma_pages, 3);
        assert_eq!(s.dma_bytes, 10 * 8192);
        assert!((s.proc_accesses_per_transfer() - 2.0).abs() < 1e-12);
        // Duration = 950 us => ~10.5 transfers/ms.
        assert!((s.dma_rate_per_ms() - 10.0 / 0.95).abs() < 0.01);
    }

    #[test]
    fn empty_trace_rates_are_zero() {
        let s = Trace::default().stats();
        assert_eq!(s.dma_rate_per_ms(), 0.0);
        assert_eq!(s.proc_accesses_per_transfer(), 0.0);
    }

    #[test]
    fn display_mentions_rates() {
        let s = build().stats();
        let txt = s.to_string();
        assert!(txt.contains("/ms"));
        assert!(txt.contains("distinct"));
    }
}
