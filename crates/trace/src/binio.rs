//! Compact binary trace serialization.
//!
//! The text format (`Trace::write_text`) is human-auditable but ~50 bytes
//! per event; database traces carry millions of processor accesses, so this
//! module provides a compact little-endian binary format (~18 bytes per
//! event) with a versioned header:
//!
//! ```text
//! magic "DMTR"  u8 version  u64 event_count
//! per event: u8 tag  (tag 0: DMA  — u64 time_ps, u16 bus, u64 page,
//!                                   u32 bytes, u8 dir, u8 src)
//!            (tag 1: Proc — u64 time_ps, u32 page, u16 bytes)
//! ```

use std::io::{self, BufRead, Write};

use iobus::{DmaDirection, DmaSource};
use simcore::SimTime;

use crate::event::{DmaRecord, ProcRecord, Trace, TraceEvent};
use crate::io::ParseTraceError;

const MAGIC: &[u8; 4] = b"DMTR";
const VERSION: u8 = 1;

fn bad(msg: impl Into<String>) -> ParseTraceError {
    ParseTraceError::Line(0, msg.into())
}

fn read_exact<R: BufRead>(r: &mut R, buf: &mut [u8]) -> Result<(), ParseTraceError> {
    r.read_exact(buf).map_err(ParseTraceError::Io)
}

fn read_u64<R: BufRead>(r: &mut R) -> Result<u64, ParseTraceError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32<R: BufRead>(r: &mut R) -> Result<u32, ParseTraceError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u16<R: BufRead>(r: &mut R) -> Result<u16, ParseTraceError> {
    let mut b = [0u8; 2];
    read_exact(r, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u8<R: BufRead>(r: &mut R) -> Result<u8, ParseTraceError> {
    let mut b = [0u8; 1];
    read_exact(r, &mut b)?;
    Ok(b[0])
}

impl Trace {
    /// Writes the trace in the compact binary format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_binary<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        for e in self {
            match e {
                TraceEvent::Dma(d) => {
                    w.write_all(&[0u8])?;
                    w.write_all(&d.time.as_ps().to_le_bytes())?;
                    w.write_all(&(d.bus as u16).to_le_bytes())?;
                    w.write_all(&d.page.to_le_bytes())?;
                    w.write_all(&(d.bytes as u32).to_le_bytes())?;
                    w.write_all(&[match d.direction {
                        DmaDirection::FromMemory => 0u8,
                        DmaDirection::ToMemory => 1,
                    }])?;
                    w.write_all(&[match d.source {
                        DmaSource::Network => 0u8,
                        DmaSource::Disk => 1,
                    }])?;
                }
                TraceEvent::Proc(p) => {
                    w.write_all(&[1u8])?;
                    w.write_all(&p.time.as_ps().to_le_bytes())?;
                    w.write_all(
                        &u32::try_from(p.page)
                            .map_err(|_| {
                                io::Error::new(io::ErrorKind::InvalidInput, "proc page exceeds u32")
                            })?
                            .to_le_bytes(),
                    )?;
                    w.write_all(
                        &u16::try_from(p.bytes)
                            .map_err(|_| {
                                io::Error::new(
                                    io::ErrorKind::InvalidInput,
                                    "proc access exceeds u16 bytes",
                                )
                            })?
                            .to_le_bytes(),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Reads a trace in the compact binary format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on I/O failure, bad magic/version, or a
    /// malformed event.
    pub fn read_binary<R: BufRead>(mut r: R) -> Result<Trace, ParseTraceError> {
        let mut magic = [0u8; 4];
        read_exact(&mut r, &mut magic)?;
        if &magic != MAGIC {
            return Err(bad(format!("bad magic {magic:02x?}")));
        }
        let version = read_u8(&mut r)?;
        if version != VERSION {
            return Err(bad(format!("unsupported version {version}")));
        }
        let count = read_u64(&mut r)?;
        let mut events = Vec::with_capacity(count.min(1 << 24) as usize);
        for i in 0..count {
            let tag = read_u8(&mut r)?;
            match tag {
                0 => {
                    let time = SimTime::from_ps(read_u64(&mut r)?);
                    let bus = read_u16(&mut r)? as usize;
                    let page = read_u64(&mut r)?;
                    let bytes = read_u32(&mut r)? as u64;
                    if bytes == 0 {
                        return Err(bad(format!("event {i}: zero-byte DMA")));
                    }
                    let direction = match read_u8(&mut r)? {
                        0 => DmaDirection::FromMemory,
                        1 => DmaDirection::ToMemory,
                        d => return Err(bad(format!("event {i}: bad direction {d}"))),
                    };
                    let source = match read_u8(&mut r)? {
                        0 => DmaSource::Network,
                        1 => DmaSource::Disk,
                        s => return Err(bad(format!("event {i}: bad source {s}"))),
                    };
                    events.push(TraceEvent::Dma(DmaRecord {
                        time,
                        bus,
                        page,
                        bytes,
                        direction,
                        source,
                    }));
                }
                1 => {
                    let time = SimTime::from_ps(read_u64(&mut r)?);
                    let page = read_u32(&mut r)? as u64;
                    let bytes = read_u16(&mut r)? as u64;
                    events.push(TraceEvent::Proc(ProcRecord { time, page, bytes }));
                }
                t => return Err(bad(format!("event {i}: unknown tag {t}"))),
            }
        }
        Ok(Trace::from_events(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{SyntheticDbGen, TraceGen};
    use simcore::SimDuration;

    fn sample() -> Trace {
        SyntheticDbGen {
            pages: 512,
            proc_per_transfer: 5.0,
            ..Default::default()
        }
        .generate(SimDuration::from_ms(1), 7)
    }

    #[test]
    fn binary_roundtrip_preserves_trace() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_binary(&mut buf).unwrap();
        let back = Trace::read_binary(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_is_smaller_than_text_at_realistic_timestamps() {
        // Realistic traces have >= 10-digit picosecond timestamps; generate
        // 20 ms so the text encoding pays for them.
        let t = SyntheticDbGen {
            pages: 512,
            proc_per_transfer: 20.0,
            ..Default::default()
        }
        .generate(SimDuration::from_ms(20), 7);
        let mut bin = Vec::new();
        t.write_binary(&mut bin).unwrap();
        let mut text = Vec::new();
        t.write_text(&mut text).unwrap();
        assert!(
            bin.len() < text.len(),
            "binary {} vs text {}",
            bin.len(),
            text.len()
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_binary(&b"NOPE\x01"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        sample().write_binary(&mut buf).unwrap();
        buf[4] = 99;
        let err = Trace::read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut buf = Vec::new();
        sample().write_binary(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(Trace::read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_tag_is_rejected() {
        let t = Trace::from_events(vec![TraceEvent::Proc(ProcRecord {
            time: SimTime::ZERO,
            page: 1,
            bytes: 64,
        })]);
        let mut buf = Vec::new();
        t.write_binary(&mut buf).unwrap();
        buf[13] = 7; // the event tag (4 magic + 1 version + 8 count)
        let err = Trace::read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unknown tag"), "{err}");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::default();
        let mut buf = Vec::new();
        t.write_binary(&mut buf).unwrap();
        assert_eq!(Trace::read_binary(buf.as_slice()).unwrap(), t);
    }
}
