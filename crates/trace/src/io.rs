//! Plain-text trace serialization.
//!
//! One event per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! D <time_ps> <bus> <page> <bytes> <F|T> <N|K>   # DMA (From/To memory, Network/disK)
//! P <time_ps> <page> <bytes>                     # processor access
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use iobus::{DmaDirection, DmaSource};
use simcore::SimTime;

use crate::event::{DmaRecord, ProcRecord, Trace, TraceEvent};

/// Why a trace file failed to parse.
#[derive(Debug)]
pub enum ParseTraceError {
    /// An I/O error while reading.
    Io(io::Error),
    /// A malformed line (1-based line number and explanation).
    Line(usize, String),
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ParseTraceError::Line(n, msg) => write!(f, "trace line {n}: {msg}"),
        }
    }
}

impl Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            ParseTraceError::Line(..) => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

fn field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
    what: &str,
) -> Result<T, ParseTraceError> {
    let raw = parts
        .next()
        .ok_or_else(|| ParseTraceError::Line(line_no, format!("missing {what}")))?;
    raw.parse()
        .map_err(|_| ParseTraceError::Line(line_no, format!("bad {what}: {raw:?}")))
}

impl Trace {
    /// Writes the trace in the text format above. `write_text` accepts any
    /// [`Write`]r; pass `&mut file` to keep using the file afterwards.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_text<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "# dma-aware-mem trace: {} events", self.len())?;
        for e in self {
            match e {
                TraceEvent::Dma(d) => {
                    let dir = match d.direction {
                        DmaDirection::FromMemory => 'F',
                        DmaDirection::ToMemory => 'T',
                    };
                    let src = match d.source {
                        DmaSource::Network => 'N',
                        DmaSource::Disk => 'K',
                    };
                    writeln!(
                        w,
                        "D {} {} {} {} {} {}",
                        d.time.as_ps(),
                        d.bus,
                        d.page,
                        d.bytes,
                        dir,
                        src
                    )?;
                }
                TraceEvent::Proc(p) => {
                    writeln!(w, "P {} {} {}", p.time.as_ps(), p.page, p.bytes)?;
                }
            }
        }
        Ok(())
    }

    /// Reads a trace in the text format above. `read_text` accepts any
    /// [`BufRead`]er; pass `&mut reader` to keep using it afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on I/O failure or malformed input.
    pub fn read_text<R: BufRead>(r: R) -> Result<Trace, ParseTraceError> {
        let mut events = Vec::new();
        for (i, line) in r.lines().enumerate() {
            let line_no = i + 1;
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_ascii_whitespace();
            let kind = parts.next().expect("non-empty line has a first token");
            match kind {
                "D" => {
                    let time_ps: u64 = field(&mut parts, line_no, "time")?;
                    let bus: usize = field(&mut parts, line_no, "bus")?;
                    let page: u64 = field(&mut parts, line_no, "page")?;
                    let bytes: u64 = field(&mut parts, line_no, "bytes")?;
                    let dir: String = field(&mut parts, line_no, "direction")?;
                    let src: String = field(&mut parts, line_no, "source")?;
                    let direction = match dir.as_str() {
                        "F" => DmaDirection::FromMemory,
                        "T" => DmaDirection::ToMemory,
                        other => {
                            return Err(ParseTraceError::Line(
                                line_no,
                                format!("bad direction: {other:?}"),
                            ))
                        }
                    };
                    let source = match src.as_str() {
                        "N" => DmaSource::Network,
                        "K" => DmaSource::Disk,
                        other => {
                            return Err(ParseTraceError::Line(
                                line_no,
                                format!("bad source: {other:?}"),
                            ))
                        }
                    };
                    events.push(TraceEvent::Dma(DmaRecord {
                        time: SimTime::from_ps(time_ps),
                        bus,
                        page,
                        bytes,
                        direction,
                        source,
                    }));
                }
                "P" => {
                    let time_ps: u64 = field(&mut parts, line_no, "time")?;
                    let page: u64 = field(&mut parts, line_no, "page")?;
                    let bytes: u64 = field(&mut parts, line_no, "bytes")?;
                    events.push(TraceEvent::Proc(ProcRecord {
                        time: SimTime::from_ps(time_ps),
                        page,
                        bytes,
                    }));
                }
                other => {
                    return Err(ParseTraceError::Line(
                        line_no,
                        format!("unknown record kind: {other:?}"),
                    ))
                }
            }
            if let Some(extra) = parts.next() {
                return Err(ParseTraceError::Line(
                    line_no,
                    format!("trailing garbage: {extra:?}"),
                ));
            }
        }
        Ok(Trace::from_events(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn sample() -> Trace {
        Trace::from_events(vec![
            TraceEvent::Dma(DmaRecord {
                time: SimTime::ZERO + SimDuration::from_us(1),
                bus: 2,
                page: 42,
                bytes: 8192,
                direction: DmaDirection::FromMemory,
                source: DmaSource::Network,
            }),
            TraceEvent::Proc(ProcRecord {
                time: SimTime::ZERO + SimDuration::from_us(2),
                page: 7,
                bytes: 64,
            }),
            TraceEvent::Dma(DmaRecord {
                time: SimTime::ZERO + SimDuration::from_us(3),
                bus: 0,
                page: 9,
                bytes: 512,
                direction: DmaDirection::ToMemory,
                source: DmaSource::Disk,
            }),
        ])
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_text(&mut buf).unwrap();
        let back = Trace::read_text(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n  \nP 1000 5 64\n";
        let t = Trace::read_text(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bad_kind_is_reported_with_line() {
        let text = "P 1000 5 64\nX 1 2 3\n";
        let err = Trace::read_text(text.as_bytes()).unwrap_err();
        match err {
            ParseTraceError::Line(2, msg) => assert!(msg.contains("unknown")),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn missing_field_is_reported() {
        let err = Trace::read_text("D 1000 0 5".as_bytes()).unwrap_err();
        match err {
            ParseTraceError::Line(1, msg) => assert!(msg.contains("missing")),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn bad_number_is_reported() {
        let err = Trace::read_text("P xyz 5 64".as_bytes()).unwrap_err();
        match err {
            ParseTraceError::Line(1, msg) => assert!(msg.contains("bad time")),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn trailing_garbage_is_reported() {
        let err = Trace::read_text("P 1 5 64 extra".as_bytes()).unwrap_err();
        match err {
            ParseTraceError::Line(1, msg) => assert!(msg.contains("trailing")),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = ParseTraceError::Line(3, "bad page".into());
        assert_eq!(e.to_string(), "trace line 3: bad page");
    }
}
