//! Page-popularity CDF (the paper's Figure 4).

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{Trace, TraceEvent};

/// The cumulative distribution of DMA accesses over pages, pages ordered
/// from most to least popular: point `(x, y)` means the hottest `x` fraction
/// of pages receives `y` fraction of DMA accesses.
///
/// The paper's Figure 4 shows ~20 % of pages receiving ~60 % of accesses
/// for the OLTP storage workload.
///
/// # Example
///
/// ```
/// use dma_trace::{OltpStGen, TraceGen};
/// use simcore::SimDuration;
///
/// let gen = OltpStGen { pages: 2048, cache_pages: 680, ..Default::default() };
/// let trace = gen.generate(SimDuration::from_ms(100), 1);
/// let cdf = trace.popularity_cdf();
/// // Skewed: the top 20% of pages get far more than 20% of accesses.
/// assert!(cdf.share_of_top(0.2) > 0.35);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PopularityCdf {
    /// Per-page DMA access counts, most popular first.
    counts: Vec<u64>,
    total: u64,
}

impl PopularityCdf {
    /// Builds the CDF from the DMA accesses of `trace` (processor accesses
    /// are excluded, matching Figure 4's "DMA transfer workload").
    pub fn from_trace(trace: &Trace) -> Self {
        // Ordered so that equal-count pages always collect in the same
        // sequence: the CDF (and anything ranked from it) is identical
        // across runs and hash-seed perturbations.
        let mut by_page: BTreeMap<u64, u64> = BTreeMap::new();
        for e in trace {
            if let TraceEvent::Dma(d) = e {
                *by_page.entry(d.page).or_insert(0) += 1;
            }
        }
        let mut counts: Vec<u64> = by_page.into_values().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total = counts.iter().sum();
        PopularityCdf { counts, total }
    }

    /// Number of distinct pages.
    pub fn pages(&self) -> usize {
        self.counts.len()
    }

    /// Total DMA accesses counted.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Fraction of all DMA accesses received by the hottest `frac` of pages
    /// (`frac` in `[0, 1]`). Returns 0 for an empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `[0, 1]`.
    pub fn share_of_top(&self, frac: f64) -> f64 {
        assert!((0.0..=1.0).contains(&frac), "fraction out of range: {frac}");
        if self.total == 0 {
            return 0.0;
        }
        let k = ((self.counts.len() as f64 * frac).round() as usize).min(self.counts.len());
        let top: u64 = self.counts[..k].iter().sum();
        top as f64 / self.total as f64
    }

    /// The smallest fraction of pages that covers at least `share` of
    /// accesses (e.g. `coverage(0.6)` answers "how many pages hold 60 % of
    /// the traffic").
    ///
    /// # Panics
    ///
    /// Panics if `share` is outside `[0, 1]`.
    pub fn coverage(&self, share: f64) -> f64 {
        assert!((0.0..=1.0).contains(&share), "share out of range: {share}");
        if self.total == 0 || self.counts.is_empty() {
            return 0.0;
        }
        let target = share * self.total as f64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc as f64 >= target {
                return (i + 1) as f64 / self.counts.len() as f64;
            }
        }
        1.0
    }

    /// Sampled CDF points `(pages_frac, accesses_frac)` for plotting
    /// Figure 4 (`n` evenly spaced x values, plus the endpoint).
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        let n = n.max(1);
        (0..=n)
            .map(|i| {
                let x = i as f64 / n as f64;
                (x, self.share_of_top(x))
            })
            .collect()
    }
}

impl fmt::Display for PopularityCdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pages, {} accesses; top 10%/20%/50% of pages -> {:.0}%/{:.0}%/{:.0}% of accesses",
            self.pages(),
            self.total_accesses(),
            self.share_of_top(0.1) * 100.0,
            self.share_of_top(0.2) * 100.0,
            self.share_of_top(0.5) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DmaRecord;
    use iobus::{DmaDirection, DmaSource};
    use simcore::{SimDuration, SimTime};

    fn trace_with_counts(counts: &[(u64, u64)]) -> Trace {
        let mut events = Vec::new();
        let mut t = 0u64;
        for &(page, n) in counts {
            for _ in 0..n {
                events.push(TraceEvent::Dma(DmaRecord {
                    time: SimTime::ZERO + SimDuration::from_ns(t),
                    bus: 0,
                    page,
                    bytes: 8192,
                    direction: DmaDirection::FromMemory,
                    source: DmaSource::Network,
                }));
                t += 1;
            }
        }
        Trace::from_events(events)
    }

    #[test]
    fn share_of_top_orders_by_popularity() {
        // 4 pages with counts 70, 20, 5, 5.
        let cdf = trace_with_counts(&[(0, 5), (1, 70), (2, 20), (3, 5)]).popularity_cdf();
        assert_eq!(cdf.pages(), 4);
        assert_eq!(cdf.total_accesses(), 100);
        assert!((cdf.share_of_top(0.25) - 0.70).abs() < 1e-12);
        assert!((cdf.share_of_top(0.5) - 0.90).abs() < 1e-12);
        assert!((cdf.share_of_top(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.share_of_top(0.0), 0.0);
    }

    #[test]
    fn cdf_is_identical_across_repeated_builds() {
        // Regression for the accumulation container: page counts with
        // many ties must collect into the same ranked counts vector on
        // every build, independent of any hash seed.
        let spec: Vec<(u64, u64)> = (0..64).map(|p| (p * 7 % 64, 1 + p % 4)).collect();
        let trace = trace_with_counts(&spec);
        let first = PopularityCdf::from_trace(&trace);
        for _ in 0..8 {
            assert_eq!(first, PopularityCdf::from_trace(&trace));
        }
        assert_eq!(first.pages(), 64);
    }

    #[test]
    fn coverage_inverts_share() {
        let cdf = trace_with_counts(&[(0, 70), (1, 20), (2, 5), (3, 5)]).popularity_cdf();
        assert!((cdf.coverage(0.6) - 0.25).abs() < 1e-12);
        assert!((cdf.coverage(0.9) - 0.5).abs() < 1e-12);
        assert!((cdf.coverage(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_popularity_is_diagonal() {
        let cdf = trace_with_counts(&[(0, 10), (1, 10), (2, 10), (3, 10)]).popularity_cdf();
        for (x, y) in cdf.points(4) {
            assert!((x - y).abs() < 1e-9, "({x}, {y}) off diagonal");
        }
    }

    #[test]
    fn empty_trace_cdf() {
        let cdf = Trace::default().popularity_cdf();
        assert_eq!(cdf.pages(), 0);
        assert_eq!(cdf.share_of_top(0.5), 0.0);
        assert_eq!(cdf.coverage(0.5), 0.0);
    }

    #[test]
    fn display_shows_shares() {
        let cdf = trace_with_counts(&[(0, 3), (1, 1)]).popularity_cdf();
        assert!(cdf.to_string().contains("pages"));
    }
}
