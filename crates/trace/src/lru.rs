//! An exact O(1) LRU set, used to model server buffer caches.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    prev: usize,
    next: usize,
}

/// A fixed-capacity set with least-recently-used eviction.
///
/// # Example
///
/// ```
/// use dma_trace::LruSet;
///
/// let mut lru = LruSet::new(2);
/// assert!(!lru.touch(1)); // miss, inserted
/// assert!(!lru.touch(2)); // miss, inserted
/// assert!(lru.touch(1));  // hit
/// assert!(!lru.touch(3)); // miss, evicts 2
/// assert!(!lru.contains(2));
/// ```
#[derive(Debug, Clone)]
pub struct LruSet {
    capacity: usize,
    // simlint::allow(nondet-iter, "key -> node-index lookups only; recency order lives in the intrusive list, the map is never iterated")
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruSet {
    /// Creates an empty set holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity LRU");
        LruSet {
            capacity,
            // simlint::allow(nondet-iter, "see field comment: O(1) lookups only, never iterated")
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of resident keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if `key` is resident (does not update recency).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Accesses `key`: returns `true` on a hit (recency updated), `false`
    /// on a miss (the key is inserted, evicting the LRU key if full).
    pub fn touch(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return true;
        }
        // Miss: insert, evicting if needed.
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].key);
            self.free.push(victim);
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_follows_recency() {
        let mut lru = LruSet::new(3);
        for k in [1, 2, 3] {
            assert!(!lru.touch(k));
        }
        assert!(lru.touch(1)); // order now 1,3,2 (MRU..LRU)
        assert!(!lru.touch(4)); // evicts 2
        assert!(lru.contains(1) && lru.contains(3) && lru.contains(4));
        assert!(!lru.contains(2));
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn repeated_touch_keeps_key_hot() {
        let mut lru = LruSet::new(2);
        lru.touch(1);
        lru.touch(2);
        for _ in 0..10 {
            assert!(lru.touch(1));
        }
        lru.touch(3); // evicts 2, not 1
        assert!(lru.contains(1));
        assert!(!lru.contains(2));
    }

    #[test]
    fn capacity_one_behaves() {
        let mut lru = LruSet::new(1);
        assert!(!lru.touch(5));
        assert!(lru.touch(5));
        assert!(!lru.touch(6));
        assert!(!lru.contains(5));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut lru = LruSet::new(2);
        for k in 0..100 {
            lru.touch(k);
        }
        // Only two node slots plus the free list churn; internal vector must
        // not grow past capacity + 1.
        assert!(lru.nodes.len() <= 3, "nodes grew to {}", lru.nodes.len());
        assert!(lru.contains(99) && lru.contains(98));
    }

    #[test]
    fn hit_ratio_tracks_skew() {
        // A 90/10 skew over 100 keys with a 10-key cache should hit often.
        let mut lru = LruSet::new(10);
        let mut rng = simcore::rng::DetRng::new(7);
        let mut hits = 0;
        let n = 10_000;
        for _ in 0..n {
            let key = if rng.chance(0.9) {
                rng.below(10)
            } else {
                10 + rng.below(90)
            };
            if lru.touch(key) {
                hits += 1;
            }
        }
        let ratio = hits as f64 / n as f64;
        assert!(ratio > 0.7, "hit ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _ = LruSet::new(0);
    }
}
