//! Memory-access traces and workload generators for data-server simulation.
//!
//! The paper evaluates with four traces (its Table 2): two captured from
//! real systems (`OLTP-St`, a storage server behind IBM DB2 running TPC-C;
//! `OLTP-Db`, DB2 itself on Simics/GEMS) and two synthetic (`Synthetic-St`,
//! `Synthetic-Db`). The real traces are proprietary, so this crate provides
//! **calibrated synthetic stand-ins** that match every characteristic the
//! paper publishes:
//!
//! | trace | contents | published characteristics matched |
//! |---|---|---|
//! | [`OltpStGen`] | network + disk DMAs | 45.0 network + 16.7 disk transfers/ms; Figure 4 popularity skew (~20 % of pages get ~60 % of accesses) |
//! | [`SyntheticStorageGen`] | network + disk DMAs | Zipf(1) popularity, Poisson arrivals at 100 transfers/ms |
//! | [`OltpDbGen`] | processor accesses + network DMAs | 100 transfers/ms, ~23,300 proc accesses/ms (≈233 per transfer) |
//! | [`SyntheticDbGen`] | processor accesses + network DMAs | Zipf(1), Poisson 100 transfers/ms + Poisson 10,000 proc accesses/ms |
//!
//! A [`Trace`] is a time-ordered sequence of [`TraceEvent`]s — large DMA
//! transfers and 64-byte processor accesses — plus statistics
//! ([`TraceStats`], for regenerating Table 2) and the popularity CDF of
//! Figure 4 ([`PopularityCdf`]).
//!
//! # Example
//!
//! ```
//! use dma_trace::{SyntheticStorageGen, TraceGen};
//! use simcore::SimDuration;
//!
//! let gen = SyntheticStorageGen::default();
//! let trace = gen.generate(SimDuration::from_ms(2), 42);
//! assert!(trace.len() > 100);
//! let stats = trace.stats();
//! assert!(stats.dma_rate_per_ms() > 50.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod binio;
mod event;
pub mod generators;
mod io;
mod lru;
mod popularity;
mod stats;

pub use event::{DmaRecord, ProcRecord, Trace, TraceEvent};
pub use generators::{
    OltpDbGen, OltpStGen, SyntheticDbGen, SyntheticStorageGen, TpchScanGen, TraceGen,
};
pub use io::ParseTraceError;
pub use lru::LruSet;
pub use popularity::PopularityCdf;
pub use stats::TraceStats;
