//! The paper's synthetic traces: Zipf page popularity, Poisson arrivals.

use iobus::{DmaDirection, DmaSource};
use simcore::dist::{PoissonProcess, Zipf};
use simcore::rng::DetRng;
use simcore::{SimDuration, SimTime};

use crate::event::{DmaRecord, ProcRecord, Trace, TraceEvent};
use crate::generators::{rank_permutation, TraceGen};

/// `Synthetic-St` (paper Table 2): storage-server memory workload with
/// network and disk DMA transfers only. Zipf(alpha = 1) page popularity and
/// Poisson transfer arrivals at 100 transfers/ms, exactly as Section 5.1
/// describes.
///
/// # Example
///
/// ```
/// use dma_trace::{SyntheticStorageGen, TraceGen};
/// use simcore::SimDuration;
///
/// let gen = SyntheticStorageGen { transfers_per_ms: 50.0, ..Default::default() };
/// let trace = gen.generate(SimDuration::from_ms(4), 1);
/// assert!((trace.stats().dma_rate_per_ms() - 50.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticStorageGen {
    /// Average DMA transfer arrival rate (paper default: 100/ms).
    pub transfers_per_ms: f64,
    /// Zipf exponent of page popularity (paper default: 1.0).
    pub zipf_alpha: f64,
    /// Working-set size in pages.
    pub pages: usize,
    /// Transfer size in bytes (8-KB pages).
    pub page_bytes: u64,
    /// Number of I/O buses transfers round-robin over.
    pub buses: usize,
    /// Fraction of transfers initiated by disk DMAs (cache fills).
    pub disk_fraction: f64,
}

impl Default for SyntheticStorageGen {
    fn default() -> Self {
        SyntheticStorageGen {
            transfers_per_ms: 100.0,
            zipf_alpha: 1.0,
            pages: 65_536,
            page_bytes: 8192,
            buses: 3,
            disk_fraction: 0.25,
        }
    }
}

impl TraceGen for SyntheticStorageGen {
    fn generate(&self, duration: SimDuration, seed: u64) -> Trace {
        assert!(self.buses > 0, "need at least one bus");
        assert!(self.pages > 0, "empty working set");
        let mut root = DetRng::new(seed);
        let mut arrivals_rng = root.fork(1);
        let mut pages_rng = root.fork(2);
        let mut perm_rng = root.fork(3);
        let perm = rank_permutation(self.pages, &mut perm_rng);
        let zipf = Zipf::new(self.pages, self.zipf_alpha);
        let mut poisson = PoissonProcess::new(self.transfers_per_ms * 1e3);
        let end = SimTime::ZERO + duration;

        let mut events = Vec::new();
        let mut bus_rr = 0usize;
        loop {
            let t = poisson.next_arrival(&mut arrivals_rng);
            if t >= end {
                break;
            }
            let rank = zipf.sample(&mut pages_rng);
            let page = perm[rank];
            let is_disk = pages_rng.chance(self.disk_fraction);
            let (source, direction) = if is_disk {
                (DmaSource::Disk, DmaDirection::ToMemory)
            } else {
                (DmaSource::Network, DmaDirection::FromMemory)
            };
            events.push(TraceEvent::Dma(DmaRecord {
                time: t,
                bus: bus_rr,
                page,
                bytes: self.page_bytes,
                direction,
                source,
            }));
            bus_rr = (bus_rr + 1) % self.buses;
        }
        Trace::from_events(events)
    }

    fn name(&self) -> &'static str {
        "Synthetic-St"
    }
}

/// `Synthetic-Db` (paper Table 2): database-server memory workload with
/// network DMAs *and* processor accesses. DMA transfers arrive Poisson at
/// 100/ms; each transfer drags a burst of 64-byte processor accesses with it
/// (query processing touches the data it ships), averaging
/// `proc_per_transfer` accesses per transfer — the knob the paper sweeps in
/// Figure 9. The default (100) yields the paper's 10,000 proc accesses/ms.
#[derive(Debug, Clone)]
pub struct SyntheticDbGen {
    /// Average network DMA transfer rate (paper default: 100/ms).
    pub transfers_per_ms: f64,
    /// Zipf exponent of page popularity (paper default: 1.0).
    pub zipf_alpha: f64,
    /// Working-set size in pages.
    pub pages: usize,
    /// Transfer size in bytes.
    pub page_bytes: u64,
    /// Number of I/O buses.
    pub buses: usize,
    /// Mean processor accesses accompanying each DMA transfer (Figure 9's
    /// x-axis; paper default workload: 100).
    pub proc_per_transfer: f64,
    /// Window after a transfer's start over which its processor burst is
    /// spread.
    pub proc_burst_window: SimDuration,
    /// Probability a burst access touches the transferred page (the rest go
    /// to random index pages).
    pub proc_locality: f64,
}

impl Default for SyntheticDbGen {
    fn default() -> Self {
        SyntheticDbGen {
            transfers_per_ms: 100.0,
            zipf_alpha: 1.0,
            pages: 65_536,
            page_bytes: 8192,
            buses: 3,
            proc_per_transfer: 100.0,
            proc_burst_window: SimDuration::from_us(100),
            proc_locality: 0.85,
        }
    }
}

impl SyntheticDbGen {
    /// Returns a copy with a different mean processor-access burst size
    /// (Figure 9 sweep).
    pub fn with_proc_per_transfer(mut self, n: f64) -> Self {
        assert!(n >= 0.0 && n.is_finite(), "invalid burst size: {n}");
        self.proc_per_transfer = n;
        self
    }
}

impl TraceGen for SyntheticDbGen {
    fn generate(&self, duration: SimDuration, seed: u64) -> Trace {
        assert!(self.buses > 0, "need at least one bus");
        assert!(self.pages > 0, "empty working set");
        let mut root = DetRng::new(seed);
        let mut arrivals_rng = root.fork(1);
        let mut pages_rng = root.fork(2);
        let mut perm_rng = root.fork(3);
        let mut proc_rng = root.fork(4);
        let perm = rank_permutation(self.pages, &mut perm_rng);
        let zipf = Zipf::new(self.pages, self.zipf_alpha);
        let mut poisson = PoissonProcess::new(self.transfers_per_ms * 1e3);
        let end = SimTime::ZERO + duration;

        let mut events = Vec::new();
        let mut bus_rr = 0usize;
        loop {
            let t = poisson.next_arrival(&mut arrivals_rng);
            if t >= end {
                break;
            }
            let rank = zipf.sample(&mut pages_rng);
            let page = perm[rank];
            events.push(TraceEvent::Dma(DmaRecord {
                time: t,
                bus: bus_rr,
                page,
                bytes: self.page_bytes,
                direction: DmaDirection::FromMemory,
                source: DmaSource::Network,
            }));
            bus_rr = (bus_rr + 1) % self.buses;

            // Processor burst: Poisson-distributed count with the configured
            // mean, spread uniformly over a window centered on the transfer
            // (query processing surrounds the shipping of a page).
            if self.proc_per_transfer > 0.0 {
                let count = sample_poisson_count(&mut proc_rng, self.proc_per_transfer);
                for _ in 0..count {
                    let offset = self.proc_burst_window.mul_f64(proc_rng.uniform());
                    let at = (t + offset).max(SimTime::ZERO + self.proc_burst_window / 2)
                        - self.proc_burst_window / 2;
                    let proc_page = if proc_rng.chance(self.proc_locality) {
                        page
                    } else {
                        perm[zipf.sample(&mut proc_rng)]
                    };
                    events.push(TraceEvent::Proc(ProcRecord {
                        time: at,
                        page: proc_page,
                        bytes: 64,
                    }));
                }
            }
        }
        Trace::from_events(events)
    }

    fn name(&self) -> &'static str {
        "Synthetic-Db"
    }
}

/// Draws a Poisson-distributed count with the given mean. Uses Knuth's
/// product method for small means and a normal approximation above 50 (bursts
/// of hundreds of accesses; exactness is irrelevant there).
pub(crate) fn sample_poisson_count(rng: &mut DetRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 50.0 {
        // Normal approximation with continuity correction.
        let u1 = 1.0 - rng.uniform();
        let u2 = rng.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return (mean + z * mean.sqrt()).round().max(0.0) as u64;
    }
    let limit = (-mean).exp();
    let mut product = rng.uniform();
    let mut count = 0u64;
    while product > limit {
        count += 1;
        product *= rng.uniform();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_rate_matches_config() {
        let g = SyntheticStorageGen::default();
        let t = g.generate(SimDuration::from_ms(10), 11);
        let rate = t.stats().dma_rate_per_ms();
        assert!((rate - 100.0).abs() < 12.0, "rate {rate}");
    }

    #[test]
    fn storage_mixes_sources() {
        let g = SyntheticStorageGen::default();
        let s = g.generate(SimDuration::from_ms(10), 11).stats();
        let disk_frac = s.disk_transfers as f64 / s.dma_transfers() as f64;
        assert!((disk_frac - 0.25).abs() < 0.06, "disk fraction {disk_frac}");
        assert!(s.proc_accesses == 0);
    }

    #[test]
    fn storage_popularity_is_zipf_skewed() {
        let g = SyntheticStorageGen {
            pages: 10_000,
            ..Default::default()
        };
        let cdf = g.generate(SimDuration::from_ms(50), 3).popularity_cdf();
        // Zipf(1): hottest 10% of *touched* pages take well over 30%.
        assert!(cdf.share_of_top(0.1) > 0.3, "{}", cdf.share_of_top(0.1));
    }

    #[test]
    fn storage_round_robins_buses() {
        let g = SyntheticStorageGen::default();
        let t = g.generate(SimDuration::from_ms(3), 5);
        let mut per_bus = [0u64; 3];
        for e in &t {
            if let TraceEvent::Dma(d) = e {
                per_bus[d.bus] += 1;
            }
        }
        let max = *per_bus.iter().max().unwrap();
        let min = *per_bus.iter().min().unwrap();
        assert!(max - min <= 1, "unbalanced: {per_bus:?}");
    }

    #[test]
    fn db_proc_rate_tracks_burst_size() {
        let g = SyntheticDbGen::default();
        let s = g.generate(SimDuration::from_ms(10), 7).stats();
        // 100 transfers/ms x 100 accesses => ~10,000/ms.
        assert!(
            (s.proc_rate_per_ms() - 10_000.0).abs() < 1_500.0,
            "proc rate {}",
            s.proc_rate_per_ms()
        );
        let per = s.proc_accesses_per_transfer();
        assert!((per - 100.0).abs() < 10.0, "per-transfer {per}");
    }

    #[test]
    fn db_burst_size_zero_emits_no_proc() {
        let g = SyntheticDbGen::default().with_proc_per_transfer(0.0);
        let s = g.generate(SimDuration::from_ms(5), 7).stats();
        assert_eq!(s.proc_accesses, 0);
    }

    #[test]
    fn db_bursts_cluster_near_their_transfer() {
        let g = SyntheticDbGen {
            transfers_per_ms: 1.0, // sparse, so bursts are attributable
            ..Default::default()
        };
        let t = g.generate(SimDuration::from_ms(20), 9);
        let dma_times: Vec<SimTime> = t
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Dma(d) => Some(d.time),
                _ => None,
            })
            .collect();
        for e in &t {
            if let TraceEvent::Proc(p) = e {
                // Bursts are centered on their transfer: within half a
                // window on either side.
                let near = dma_times.iter().any(|&d| {
                    p.time.saturating_since(d) <= SimDuration::from_us(50)
                        && d.saturating_since(p.time) <= SimDuration::from_us(50)
                });
                assert!(near, "orphan proc access at {}", p.time);
            }
        }
    }

    #[test]
    fn poisson_count_mean_small_and_large() {
        let mut rng = DetRng::new(21);
        for mean in [3.0, 233.0] {
            let n = 5_000;
            let sum: u64 = (0..n).map(|_| sample_poisson_count(&mut rng, mean)).sum();
            let observed = sum as f64 / n as f64;
            assert!(
                (observed - mean).abs() < mean * 0.1 + 0.5,
                "mean {mean}: observed {observed}"
            );
        }
        assert_eq!(sample_poisson_count(&mut rng, 0.0), 0);
    }
}
