//! TPC-H-style scan workload (the paper's future-work extension).

use iobus::{DmaDirection, DmaSource};
use simcore::rng::DetRng;
use simcore::{SimDuration, SimTime};

use crate::event::{DmaRecord, ProcRecord, Trace, TraceEvent};
use crate::generators::TraceGen;

/// A decision-support (TPC-H-like) workload: several concurrent sequential
/// table scans, each shipping pages out over network DMA at a steady rate,
/// with a few processor accesses per page for aggregation. Unlike OLTP,
/// popularity is nearly uniform — the stress case for popularity-based
/// layout (PL should help little here, which the ablation bench verifies).
///
/// # Example
///
/// ```
/// use dma_trace::{TpchScanGen, TraceGen};
/// use simcore::SimDuration;
///
/// let t = TpchScanGen::default().generate(SimDuration::from_ms(5), 2);
/// // Scans are nearly uniform: the top 20% of pages get ~20% of accesses.
/// let share = t.popularity_cdf().share_of_top(0.2);
/// assert!(share < 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct TpchScanGen {
    /// Number of concurrent scan streams.
    pub streams: usize,
    /// Pages scanned per millisecond per stream.
    pub pages_per_ms_per_stream: f64,
    /// Working-set (table) size in pages.
    pub pages: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Number of I/O buses.
    pub buses: usize,
    /// Mean processor accesses per scanned page (aggregation work).
    pub proc_per_page: f64,
    /// Jitter applied to each inter-page gap (fraction of the gap).
    pub jitter: f64,
}

impl Default for TpchScanGen {
    fn default() -> Self {
        TpchScanGen {
            streams: 4,
            pages_per_ms_per_stream: 25.0,
            pages: 65_536,
            page_bytes: 8192,
            buses: 3,
            proc_per_page: 2.0,
            jitter: 0.2,
        }
    }
}

impl TraceGen for TpchScanGen {
    fn generate(&self, duration: SimDuration, seed: u64) -> Trace {
        assert!(self.streams > 0, "no scan streams");
        assert!(self.buses > 0, "need at least one bus");
        assert!(self.pages > 0, "empty table");
        let mut root = DetRng::new(seed);
        let end = SimTime::ZERO + duration;
        let gap = SimDuration::from_secs_f64(1e-3 / self.pages_per_ms_per_stream);

        let mut events = Vec::new();
        for stream in 0..self.streams {
            let mut rng = root.fork(stream as u64 + 1);
            let mut page = rng.below(self.pages as u64);
            let mut t = SimTime::ZERO + gap.mul_f64(rng.uniform());
            let bus = stream % self.buses;
            while t < end {
                events.push(TraceEvent::Dma(DmaRecord {
                    time: t,
                    bus,
                    page,
                    bytes: self.page_bytes,
                    direction: DmaDirection::FromMemory,
                    source: DmaSource::Network,
                }));
                let procs = rng.exponential(self.proc_per_page.max(1e-9)).round() as u64;
                for _ in 0..procs {
                    events.push(TraceEvent::Proc(ProcRecord {
                        time: t + gap.mul_f64(rng.uniform() * 0.5),
                        page,
                        bytes: 64,
                    }));
                }
                page = (page + 1) % self.pages as u64;
                let jitter = 1.0 + self.jitter * (rng.uniform() - 0.5) * 2.0;
                t += gap.mul_f64(jitter.max(0.01));
            }
        }
        Trace::from_events(events)
    }

    fn name(&self) -> &'static str {
        "TPC-H-Scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_rate_matches_config() {
        let g = TpchScanGen::default();
        let s = g.generate(SimDuration::from_ms(10), 4).stats();
        // 4 streams x 25 pages/ms = ~100 transfers/ms.
        let rate = s.dma_rate_per_ms();
        assert!((rate - 100.0).abs() < 15.0, "rate {rate}");
    }

    #[test]
    fn pages_are_sequential_per_stream() {
        let g = TpchScanGen {
            streams: 1,
            jitter: 0.0,
            proc_per_page: 0.0,
            ..Default::default()
        };
        let t = g.generate(SimDuration::from_ms(2), 8);
        let pages: Vec<u64> = t
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Dma(d) => Some(d.page),
                _ => None,
            })
            .collect();
        for w in pages.windows(2) {
            assert_eq!(w[1], (w[0] + 1) % 65_536);
        }
    }

    #[test]
    fn popularity_is_flat() {
        let t = TpchScanGen::default().generate(SimDuration::from_ms(20), 6);
        let cdf = t.popularity_cdf();
        assert!(cdf.share_of_top(0.5) < 0.65);
    }

    #[test]
    fn streams_spread_over_buses() {
        let g = TpchScanGen::default();
        let t = g.generate(SimDuration::from_ms(2), 4);
        let mut buses: Vec<usize> = t
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Dma(d) => Some(d.bus),
                _ => None,
            })
            .collect();
        buses.sort_unstable();
        buses.dedup();
        assert_eq!(buses, vec![0, 1, 2]);
    }
}
