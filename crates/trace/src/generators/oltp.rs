//! Calibrated stand-ins for the paper's proprietary OLTP traces.
//!
//! The real `OLTP-St` and `OLTP-Db` traces were captured from production
//! systems the paper does not publish. These generators reconstruct them
//! from everything the paper *does* publish (Section 5.1, Table 2,
//! Figure 4):
//!
//! * `OLTP-St`: a storage server behind IBM DB2/TPC-C — network DMAs at
//!   45.0 transfers/ms and disk DMAs at 16.7 transfers/ms, with the
//!   Figure 4 popularity skew (~20 % of pages take ~60 % of accesses).
//!   [`OltpStGen`] models the actual server path: client requests hit an
//!   LRU buffer cache; misses go to a [`disksim::DiskArray`] whose timing
//!   dictates when the disk DMA reaches memory.
//! * `OLTP-Db`: DB2 itself — network DMAs at 100 transfers/ms plus 23,300
//!   processor accesses/ms (≈233 per transfer) clustered around the
//!   transfers they serve.

use disksim::{DiskArray, DiskParams, DiskRequest, RequestKind};
use iobus::{DmaDirection, DmaSource};
use simcore::dist::{PoissonProcess, Zipf};
use simcore::rng::DetRng;
use simcore::{SimDuration, SimTime};

use crate::event::{DmaRecord, ProcRecord, Trace, TraceEvent};
use crate::generators::synthetic::sample_poisson_count;
use crate::generators::{rank_permutation, TraceGen};
use crate::lru::LruSet;

/// Storage-server trace generator calibrated to the paper's `OLTP-St`.
///
/// Defaults reproduce the published characteristics: 45 client requests/ms
/// (one network DMA each), a buffer cache sized so that the disk-DMA rate
/// lands near the paper's 16.7/ms, and popularity skew `alpha = 0.68` so the
/// hottest 20 % of pages draw ~60 % of DMA accesses (Figure 4).
///
/// # Example
///
/// ```
/// use dma_trace::{OltpStGen, TraceGen};
/// use simcore::SimDuration;
///
/// let trace = OltpStGen::default().generate(SimDuration::from_ms(10), 42);
/// let s = trace.stats();
/// assert!(s.network_rate_per_ms() > 20.0);
/// assert!(s.disk_transfers > 0);
/// ```
#[derive(Debug, Clone)]
pub struct OltpStGen {
    /// Client request arrival rate (paper: network DMA rate = 45.0/ms).
    pub client_req_per_ms: f64,
    /// Working-set size in pages.
    pub pages: usize,
    /// Page (and DMA transfer) size in bytes.
    pub page_bytes: u64,
    /// Number of I/O buses.
    pub buses: usize,
    /// Buffer-cache capacity in pages (controls the disk-DMA rate).
    pub cache_pages: usize,
    /// Zipf exponent; 0.68 matches Figure 4's 20 % -> 60 % skew.
    pub zipf_alpha: f64,
    /// Fraction of client requests that are writes.
    pub write_fraction: f64,
    /// Processor time to parse a request before the DMA starts.
    pub parse_delay: SimDuration,
    /// Delay before a written page is destaged to disk.
    pub destage_delay: SimDuration,
    /// Number of disks in the backing RAID-0 array.
    pub disks: usize,
}

impl Default for OltpStGen {
    fn default() -> Self {
        OltpStGen {
            client_req_per_ms: 45.0,
            pages: 16_384,
            page_bytes: 8192,
            buses: 3,
            cache_pages: 5_376,
            zipf_alpha: 0.68,
            write_fraction: 0.10,
            parse_delay: SimDuration::from_us(5),
            destage_delay: SimDuration::from_ms(2),
            disks: 128,
        }
    }
}

impl OltpStGen {
    /// Maps a page to its array LBA, spreading pages across the array.
    fn page_lba(&self, page: u64, array: &DiskArray) -> u64 {
        let sectors_per_page = self.page_bytes.div_ceil(512);
        let slots = array.capacity_sectors() / sectors_per_page;
        (page % slots) * sectors_per_page
    }
}

impl TraceGen for OltpStGen {
    fn generate(&self, duration: SimDuration, seed: u64) -> Trace {
        assert!(self.buses > 0, "need at least one bus");
        assert!(self.cache_pages > 0, "empty buffer cache");
        let mut root = DetRng::new(seed);
        let mut arrivals_rng = root.fork(1);
        let mut pages_rng = root.fork(2);
        let mut perm_rng = root.fork(3);
        let perm = rank_permutation(self.pages, &mut perm_rng);
        let zipf = Zipf::new(self.pages, self.zipf_alpha);
        let mut poisson = PoissonProcess::new(self.client_req_per_ms * 1e3);
        let mut cache = LruSet::new(self.cache_pages);
        // Warm start: a steady-state server holds the hottest pages already
        // (touched coldest-first so the hottest end up most recently used).
        for rank in (0..self.cache_pages.min(self.pages)).rev() {
            cache.touch(perm[rank]);
        }
        let mut array = DiskArray::new(DiskParams::server_15k(), self.disks, 128);
        let end = SimTime::ZERO + duration;
        let sectors_per_page = self.page_bytes.div_ceil(512);
        // Time for the HBA to burst one page over its bus, used to place the
        // network DMA after a miss fill.
        let page_burst = SimDuration::from_bytes_at_rate(self.page_bytes, 1.064e9);

        let mut events = Vec::new();
        let mut bus_rr = 0usize;
        let next_bus = |rr: &mut usize| {
            let b = *rr;
            *rr = (*rr + 1) % self.buses;
            b
        };

        loop {
            let t = poisson.next_arrival(&mut arrivals_rng);
            if t >= end {
                break;
            }
            let page = perm[zipf.sample(&mut pages_rng)];
            let is_write = pages_rng.chance(self.write_fraction);
            let started = t + self.parse_delay;

            if is_write {
                // Data arrives from the SAN into the cache...
                events.push(TraceEvent::Dma(DmaRecord {
                    time: started,
                    bus: next_bus(&mut bus_rr),
                    page,
                    bytes: self.page_bytes,
                    direction: DmaDirection::ToMemory,
                    source: DmaSource::Network,
                }));
                cache.touch(page);
                // ...and is destaged to disk later: the disk DMA reads
                // memory when the destage is submitted.
                let destage_at = started + self.destage_delay;
                events.push(TraceEvent::Dma(DmaRecord {
                    time: destage_at,
                    bus: next_bus(&mut bus_rr),
                    page,
                    bytes: self.page_bytes,
                    direction: DmaDirection::FromMemory,
                    source: DmaSource::Disk,
                }));
                let _ = array.submit(
                    destage_at,
                    DiskRequest {
                        lba: self.page_lba(page, &array),
                        sectors: sectors_per_page,
                        kind: RequestKind::Write,
                    },
                );
                continue;
            }

            let hit = cache.touch(page);
            if hit {
                // Buffer-cache hit: ship straight out to the SAN.
                events.push(TraceEvent::Dma(DmaRecord {
                    time: started,
                    bus: next_bus(&mut bus_rr),
                    page,
                    bytes: self.page_bytes,
                    direction: DmaDirection::FromMemory,
                    source: DmaSource::Network,
                }));
            } else {
                // Miss: fetch from disk (DMA into memory once the drive has
                // the data buffered), then ship out.
                let access = array.submit(
                    started,
                    DiskRequest {
                        lba: self.page_lba(page, &array),
                        sectors: sectors_per_page,
                        kind: RequestKind::Read,
                    },
                );
                let fill_at = access.complete;
                events.push(TraceEvent::Dma(DmaRecord {
                    time: fill_at,
                    bus: next_bus(&mut bus_rr),
                    page,
                    bytes: self.page_bytes,
                    direction: DmaDirection::ToMemory,
                    source: DmaSource::Disk,
                }));
                events.push(TraceEvent::Dma(DmaRecord {
                    time: fill_at + page_burst + self.parse_delay,
                    bus: next_bus(&mut bus_rr),
                    page,
                    bytes: self.page_bytes,
                    direction: DmaDirection::FromMemory,
                    source: DmaSource::Network,
                }));
            }
        }
        Trace::from_events(events)
    }

    fn name(&self) -> &'static str {
        "OLTP-St"
    }
}

/// Database-server trace generator calibrated to the paper's `OLTP-Db`:
/// network DMAs at 100 transfers/ms, each accompanied by a burst of 64-byte
/// processor accesses averaging 233 per transfer (the paper's measured DB2
/// figure), with Figure-4-like popularity skew.
///
/// # Example
///
/// ```
/// use dma_trace::{OltpDbGen, TraceGen};
/// use simcore::SimDuration;
///
/// let s = OltpDbGen::default().generate(SimDuration::from_ms(5), 1).stats();
/// assert!(s.proc_accesses_per_transfer() > 150.0);
/// ```
#[derive(Debug, Clone)]
pub struct OltpDbGen {
    /// Network DMA transfer rate (paper: 100.0/ms).
    pub transfers_per_ms: f64,
    /// Mean processor accesses per transfer (paper: ≈233).
    pub proc_per_transfer: f64,
    /// Working-set size in pages.
    pub pages: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Number of I/O buses.
    pub buses: usize,
    /// Zipf exponent of page popularity.
    pub zipf_alpha: f64,
    /// Window over which a transfer's processor burst is spread.
    pub proc_burst_window: SimDuration,
    /// Probability a burst access touches the transferred page.
    pub proc_locality: f64,
}

impl Default for OltpDbGen {
    fn default() -> Self {
        OltpDbGen {
            transfers_per_ms: 100.0,
            proc_per_transfer: 233.0,
            pages: 16_384,
            page_bytes: 8192,
            buses: 3,
            zipf_alpha: 0.85,
            proc_burst_window: SimDuration::from_us(100),
            proc_locality: 0.9,
        }
    }
}

impl TraceGen for OltpDbGen {
    fn generate(&self, duration: SimDuration, seed: u64) -> Trace {
        assert!(self.buses > 0, "need at least one bus");
        let mut root = DetRng::new(seed);
        let mut arrivals_rng = root.fork(1);
        let mut pages_rng = root.fork(2);
        let mut perm_rng = root.fork(3);
        let mut proc_rng = root.fork(4);
        let perm = rank_permutation(self.pages, &mut perm_rng);
        let zipf = Zipf::new(self.pages, self.zipf_alpha);
        let mut poisson = PoissonProcess::new(self.transfers_per_ms * 1e3);
        let end = SimTime::ZERO + duration;

        let mut events = Vec::new();
        let mut bus_rr = 0usize;
        loop {
            let t = poisson.next_arrival(&mut arrivals_rng);
            if t >= end {
                break;
            }
            let page = perm[zipf.sample(&mut pages_rng)];
            events.push(TraceEvent::Dma(DmaRecord {
                time: t,
                bus: bus_rr,
                page,
                bytes: self.page_bytes,
                direction: DmaDirection::FromMemory,
                source: DmaSource::Network,
            }));
            bus_rr = (bus_rr + 1) % self.buses;

            let count = sample_poisson_count(&mut proc_rng, self.proc_per_transfer);
            for _ in 0..count {
                let offset = self.proc_burst_window.mul_f64(proc_rng.uniform());
                let at = (t + offset).max(SimTime::ZERO + self.proc_burst_window / 2)
                    - self.proc_burst_window / 2;
                let proc_page = if proc_rng.chance(self.proc_locality) {
                    page
                } else {
                    perm[zipf.sample(&mut proc_rng)]
                };
                events.push(TraceEvent::Proc(ProcRecord {
                    time: at,
                    page: proc_page,
                    bytes: 64,
                }));
            }
        }
        Trace::from_events(events)
    }

    fn name(&self) -> &'static str {
        "OLTP-Db"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oltp_st_rates_match_table2() {
        // Paper Table 2 / Section 5.1: network 45.0/ms, disk 16.7/ms.
        let t = OltpStGen::default().generate(SimDuration::from_ms(60), 17);
        let s = t.stats();
        let net = s.network_rate_per_ms();
        let disk = s.disk_rate_per_ms();
        assert!((net - 45.0).abs() < 7.0, "network rate {net}");
        assert!((disk - 16.7).abs() < 7.0, "disk rate {disk}");
        assert_eq!(s.proc_accesses, 0);
    }

    #[test]
    fn oltp_st_popularity_matches_figure4() {
        // Figure 4: ~20% of pages receive ~60% of DMA accesses.
        let gen = OltpStGen {
            pages: 4096,
            cache_pages: 1344,
            ..Default::default()
        };
        let t = gen.generate(SimDuration::from_ms(500), 3);
        let cdf = t.popularity_cdf();
        let share = cdf.share_of_top(0.2);
        assert!((0.45..=0.80).contains(&share), "top-20% share {share}");
    }

    #[test]
    fn oltp_st_miss_fills_precede_network_send() {
        let t = OltpStGen::default().generate(SimDuration::from_ms(20), 5);
        // Every disk ToMemory fill is followed by a network FromMemory of
        // the same page.
        let events = t.events();
        let mut checked = 0;
        for (i, e) in events.iter().enumerate() {
            if let TraceEvent::Dma(d) = e {
                if d.source == DmaSource::Disk && d.direction == DmaDirection::ToMemory {
                    let follow = events[i..].iter().any(|f| match f {
                        TraceEvent::Dma(n) => {
                            n.page == d.page
                                && n.source == DmaSource::Network
                                && n.direction == DmaDirection::FromMemory
                                && n.time >= d.time
                        }
                        _ => false,
                    });
                    assert!(follow, "fill of page {} never shipped", d.page);
                    checked += 1;
                }
            }
        }
        assert!(checked > 10, "too few misses to check ({checked})");
    }

    #[test]
    fn oltp_st_writes_produce_destages() {
        let gen = OltpStGen {
            write_fraction: 1.0,
            ..Default::default()
        };
        let t = gen.generate(SimDuration::from_ms(5), 9);
        let s = t.stats();
        // All writes: every request yields one network ToMemory and one
        // disk FromMemory destage.
        assert_eq!(s.network_transfers, s.disk_transfers);
        for e in &t {
            if let TraceEvent::Dma(d) = e {
                match d.source {
                    DmaSource::Network => assert_eq!(d.direction, DmaDirection::ToMemory),
                    DmaSource::Disk => assert_eq!(d.direction, DmaDirection::FromMemory),
                }
            }
        }
    }

    #[test]
    fn oltp_db_matches_table2() {
        // 100 transfers/ms, ~233 proc accesses per transfer (23,300/ms).
        let s = OltpDbGen::default()
            .generate(SimDuration::from_ms(10), 23)
            .stats();
        let rate = s.network_rate_per_ms();
        assert!((rate - 100.0).abs() < 15.0, "transfer rate {rate}");
        let per = s.proc_accesses_per_transfer();
        assert!((per - 233.0).abs() < 25.0, "proc per transfer {per}");
        assert_eq!(s.disk_transfers, 0);
    }

    #[test]
    fn oltp_db_proc_accesses_follow_transfers() {
        let gen = OltpDbGen {
            transfers_per_ms: 2.0,
            ..Default::default()
        };
        let t = gen.generate(SimDuration::from_ms(10), 31);
        let dma_times: Vec<SimTime> = t
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Dma(d) => Some(d.time),
                _ => None,
            })
            .collect();
        for e in &t {
            if let TraceEvent::Proc(p) = e {
                let near = dma_times.iter().any(|&d| {
                    p.time.saturating_since(d) <= SimDuration::from_us(50)
                        && d.saturating_since(p.time) <= SimDuration::from_us(50)
                });
                assert!(near, "orphan proc access at {}", p.time);
            }
        }
    }
}
