//! Workload generators producing the paper's four traces (plus a TPC-H
//! style extension).
//!
//! Each generator is deterministic given `(config, duration, seed)`.

mod oltp;
mod synthetic;
mod tpch;

pub use oltp::{OltpDbGen, OltpStGen};
pub use synthetic::{SyntheticDbGen, SyntheticStorageGen};
pub use tpch::TpchScanGen;

use simcore::rng::DetRng;
use simcore::SimDuration;

use crate::event::Trace;

/// A deterministic trace generator.
pub trait TraceGen {
    /// Generates a trace covering `[0, duration)` from `seed`.
    fn generate(&self, duration: SimDuration, seed: u64) -> Trace;

    /// Short workload name (matches the paper's trace names where
    /// applicable).
    fn name(&self) -> &'static str;
}

/// Maps a popularity rank to a page id via a seeded random permutation, so
/// hot pages are scattered across the address space (as they are in a real
/// buffer cache) rather than clustered at low page numbers.
pub(crate) fn rank_permutation(pages: usize, rng: &mut DetRng) -> Vec<u64> {
    let mut perm: Vec<u64> = (0..pages as u64).collect();
    rng.shuffle(&mut perm);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn all_generators_are_deterministic() {
        let d = SimDuration::from_ms(3);
        let gens: Vec<Box<dyn TraceGen>> = vec![
            Box::new(SyntheticStorageGen::default()),
            Box::new(SyntheticDbGen::default()),
            Box::new(OltpStGen::default()),
            Box::new(OltpDbGen::default()),
            Box::new(TpchScanGen::default()),
        ];
        for g in &gens {
            let a = g.generate(d, 99);
            let b = g.generate(d, 99);
            assert_eq!(a, b, "{} not deterministic", g.name());
            assert!(!a.is_empty(), "{} generated nothing", g.name());
            let c = g.generate(d, 100);
            assert_ne!(a, c, "{} ignores its seed", g.name());
        }
    }

    #[test]
    fn events_within_duration_for_dma_starts() {
        let d = SimDuration::from_ms(2);
        let t = SyntheticStorageGen::default().generate(d, 5);
        // Arrivals are generated inside the window (completions may run
        // past it in the simulator, but start times must not).
        assert!(t.duration() <= d + SimDuration::from_ms(5));
    }

    #[test]
    fn rank_permutation_is_bijective() {
        let mut rng = simcore::rng::DetRng::new(3);
        let p = rank_permutation(100, &mut rng);
        let mut seen = p.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<u64>>());
    }
}
