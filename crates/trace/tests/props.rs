//! Property tests for trace generation and serialization.

use dma_trace::{
    OltpDbGen, OltpStGen, SyntheticDbGen, SyntheticStorageGen, TpchScanGen, Trace, TraceGen,
};
use proptest::prelude::*;
use simcore::SimDuration;

fn generators() -> Vec<Box<dyn TraceGen>> {
    vec![
        Box::new(SyntheticStorageGen {
            pages: 2048,
            ..Default::default()
        }),
        Box::new(SyntheticDbGen {
            pages: 2048,
            proc_per_transfer: 10.0,
            ..Default::default()
        }),
        Box::new(OltpStGen {
            pages: 2048,
            cache_pages: 700,
            disks: 64,
            ..Default::default()
        }),
        Box::new(OltpDbGen {
            pages: 2048,
            proc_per_transfer: 10.0,
            ..Default::default()
        }),
        Box::new(TpchScanGen {
            pages: 2048,
            ..Default::default()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generator produces time-ordered events on valid pages/buses,
    /// deterministically per seed, and survives a text round-trip.
    #[test]
    fn generator_output_is_well_formed(seed in 0u64..300, which in 0usize..5) {
        let gen = &generators()[which];
        let t = gen.generate(SimDuration::from_ms(2), seed);
        // Ordered.
        let mut prev = simcore::SimTime::ZERO;
        for e in &t {
            prop_assert!(e.time() >= prev, "{} unordered", gen.name());
            prev = e.time();
            prop_assert!(e.page() < 2048, "{} page out of range", gen.name());
            if let dma_trace::TraceEvent::Dma(d) = e {
                prop_assert!(d.bus < 3, "{} bus out of range", gen.name());
                prop_assert!(d.bytes > 0);
            }
        }
        // Deterministic.
        prop_assert_eq!(&t, &gen.generate(SimDuration::from_ms(2), seed));
        // Round-trips through the text format.
        let mut buf = Vec::new();
        t.write_text(&mut buf).unwrap();
        let back = Trace::read_text(buf.as_slice()).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Rates scale linearly with the configured arrival rate.
    #[test]
    fn synthetic_rate_scales(rate in 20.0f64..300.0, seed in 0u64..100) {
        let gen = SyntheticStorageGen {
            transfers_per_ms: rate,
            pages: 2048,
            ..Default::default()
        };
        let s = gen.generate(SimDuration::from_ms(5), seed).stats();
        let measured = s.dma_rate_per_ms();
        prop_assert!(
            (measured - rate).abs() < rate * 0.35 + 5.0,
            "asked {rate}, measured {measured}"
        );
    }

    /// Popularity skew grows with the Zipf exponent.
    #[test]
    fn skew_tracks_alpha(seed in 0u64..100) {
        let share = |alpha: f64| {
            let gen = SyntheticStorageGen {
                zipf_alpha: alpha,
                pages: 512,
                ..Default::default()
            };
            gen.generate(SimDuration::from_ms(10), seed)
                .popularity_cdf()
                .share_of_top(0.1)
        };
        let flat = share(0.0);
        let skewed = share(1.2);
        prop_assert!(skewed > flat, "skewed {skewed} <= flat {flat}");
    }

    /// The stats rates are internally consistent with raw counts.
    #[test]
    fn stats_rates_consistent(seed in 0u64..200) {
        let gen = SyntheticDbGen {
            pages: 2048,
            proc_per_transfer: 25.0,
            ..Default::default()
        };
        let t = gen.generate(SimDuration::from_ms(3), seed);
        let s = t.stats();
        prop_assert_eq!(s.dma_transfers(), s.network_transfers + s.disk_transfers);
        let ms = s.duration.as_secs_f64() * 1e3;
        prop_assume!(ms > 0.0);
        prop_assert!((s.dma_rate_per_ms() - s.dma_transfers() as f64 / ms).abs() < 1e-9);
    }
}
