//! The memory power model: modes, powers, and transition costs.

use simcore::SimDuration;

/// A power mode of a memory chip (paper Section 2.2, RDRAM).
///
/// Data is preserved in every mode; only `Active` can serve reads/writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PowerMode {
    /// Fully operational; the only mode that can serve requests.
    Active,
    /// Shallow low-power mode (row/column demux disabled).
    Standby,
    /// Deeper low-power mode.
    Nap,
    /// Deepest low-power mode; self-refresh only.
    Powerdown,
}

impl PowerMode {
    /// All modes, from shallowest to deepest.
    pub const ALL: [PowerMode; 4] = [
        PowerMode::Active,
        PowerMode::Standby,
        PowerMode::Nap,
        PowerMode::Powerdown,
    ];

    /// The next deeper mode, if any.
    pub fn deeper(self) -> Option<PowerMode> {
        match self {
            PowerMode::Active => Some(PowerMode::Standby),
            PowerMode::Standby => Some(PowerMode::Nap),
            PowerMode::Nap => Some(PowerMode::Powerdown),
            PowerMode::Powerdown => None,
        }
    }

    /// True for any mode other than `Active`.
    pub fn is_low_power(self) -> bool {
        self != PowerMode::Active
    }
}

impl std::fmt::Display for PowerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PowerMode::Active => "active",
            PowerMode::Standby => "standby",
            PowerMode::Nap => "nap",
            PowerMode::Powerdown => "powerdown",
        };
        f.write_str(s)
    }
}

/// Power drawn and time taken by one power-mode transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionSpec {
    /// Power drawn while transitioning, in milliwatts.
    pub power_mw: f64,
    /// Transition latency.
    pub latency: SimDuration,
}

/// The complete power model of a memory chip: per-mode powers plus
/// down-transition (`Active -> X`) and wake-up (`X -> Active`) costs, and the
/// chip's sustained data rate.
///
/// [`PowerModel::rdram`] reproduces the paper's Table 1 exactly; the builder
/// setters support the paper's Section 5.4 sensitivity studies (e.g. a
/// DDR-SDRAM-like 2.1 GB/s part).
///
/// # Example
///
/// ```
/// use mempower::{PowerMode, PowerModel};
///
/// let m = PowerModel::rdram();
/// assert_eq!(m.mode_power_mw(PowerMode::Active), 300.0);
/// assert_eq!(m.wake(PowerMode::Powerdown).latency.as_ns_f64(), 6000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    mode_power_mw: [f64; 4],
    down: [TransitionSpec; 3],
    wake: [TransitionSpec; 3],
    bandwidth_bytes_per_sec: f64,
    chip_bytes: u64,
}

/// Index of a non-active mode in the transition tables.
fn low_index(mode: PowerMode) -> usize {
    match mode {
        // simlint::allow(panic-path, "callers only index low-power modes; Active reaching here is a table-construction bug caught by every unit test")
        PowerMode::Active => panic!("active mode has no transition entry"),
        PowerMode::Standby => 0,
        PowerMode::Nap => 1,
        PowerMode::Powerdown => 2,
    }
}

impl PowerModel {
    /// The paper's Table 1: 512-Mb 1600 MHz RDRAM.
    ///
    /// | state / transition  | power  | time          |
    /// |---------------------|--------|---------------|
    /// | active              | 300 mW | —             |
    /// | standby             | 180 mW | —             |
    /// | nap                 | 30 mW  | —             |
    /// | powerdown           | 3 mW   | —             |
    /// | active → standby    | 240 mW | 1 memory cycle|
    /// | active → nap        | 160 mW | 8 cycles      |
    /// | active → powerdown  | 15 mW  | 8 cycles      |
    /// | standby → active    | 240 mW | +6 ns         |
    /// | nap → active        | 160 mW | +60 ns        |
    /// | powerdown → active  | 15 mW  | +6000 ns      |
    ///
    /// Memory cycle = 625 ps (1600 MHz); sustained rate 3.2 GB/s; 32-MB chips
    /// (the paper's 1-GB system uses 32 such chips).
    pub fn rdram() -> Self {
        let cycle = SimDuration::from_ps(625);
        PowerModel {
            mode_power_mw: [300.0, 180.0, 30.0, 3.0],
            down: [
                TransitionSpec {
                    power_mw: 240.0,
                    latency: cycle,
                },
                TransitionSpec {
                    power_mw: 160.0,
                    latency: cycle * 8,
                },
                TransitionSpec {
                    power_mw: 15.0,
                    latency: cycle * 8,
                },
            ],
            wake: [
                TransitionSpec {
                    power_mw: 240.0,
                    latency: SimDuration::from_ns(6),
                },
                TransitionSpec {
                    power_mw: 160.0,
                    latency: SimDuration::from_ns(60),
                },
                TransitionSpec {
                    power_mw: 15.0,
                    latency: SimDuration::from_ns(6000),
                },
            ],
            bandwidth_bytes_per_sec: 3.2e9,
            chip_bytes: 32 * 1024 * 1024,
        }
    }

    /// A DDR-SDRAM-like variant used in the Section 5.4 discussion: same
    /// power structure, 2.1 GB/s sustained rate.
    pub fn ddr_sdram_like() -> Self {
        let mut m = PowerModel::rdram();
        m.bandwidth_bytes_per_sec = 2.1e9;
        m
    }

    /// Replaces the sustained data rate (bytes/second).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn with_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "invalid bandwidth: {bytes_per_sec}"
        );
        self.bandwidth_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Replaces the chip capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn with_chip_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "zero-capacity chip");
        self.chip_bytes = bytes;
        self
    }

    /// Replaces the steady-state power of one mode (milliwatts).
    ///
    /// # Panics
    ///
    /// Panics if `mw` is negative or not finite.
    pub fn with_mode_power(mut self, mode: PowerMode, mw: f64) -> Self {
        assert!(mw >= 0.0 && mw.is_finite(), "invalid power: {mw}");
        let i = match mode {
            PowerMode::Active => 0,
            PowerMode::Standby => 1,
            PowerMode::Nap => 2,
            PowerMode::Powerdown => 3,
        };
        self.mode_power_mw[i] = mw;
        self
    }

    /// Steady-state power of `mode` in milliwatts.
    pub fn mode_power_mw(&self, mode: PowerMode) -> f64 {
        match mode {
            PowerMode::Active => self.mode_power_mw[0],
            PowerMode::Standby => self.mode_power_mw[1],
            PowerMode::Nap => self.mode_power_mw[2],
            PowerMode::Powerdown => self.mode_power_mw[3],
        }
    }

    /// Cost of entering `to` from `Active`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is `Active`.
    pub fn down(&self, to: PowerMode) -> TransitionSpec {
        self.down[low_index(to)]
    }

    /// Cost of waking to `Active` from `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is `Active`.
    pub fn wake(&self, from: PowerMode) -> TransitionSpec {
        self.wake[low_index(from)]
    }

    /// Sustained data rate in bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.bandwidth_bytes_per_sec
    }

    /// Chip capacity in bytes.
    pub fn chip_bytes(&self) -> u64 {
        self.chip_bytes
    }

    /// Time for this chip to move `bytes` at its sustained rate.
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_bytes_at_rate(bytes, self.bandwidth_bytes_per_sec)
    }

    /// The idle duration at which sleeping in `mode` breaks even with
    /// staying active, counting both transition energies (paper Section 2.2
    /// background; used to choose sane default thresholds).
    ///
    /// # Panics
    ///
    /// Panics if `mode` is `Active`.
    pub fn break_even(&self, mode: PowerMode) -> SimDuration {
        let down = self.down(mode);
        let wake = self.wake(mode);
        let trans_mj = down.power_mw * down.latency.as_secs_f64() * 1e3
            + wake.power_mw * wake.latency.as_secs_f64() * 1e3;
        let active_mw = self.mode_power_mw(PowerMode::Active);
        let saved_mw = active_mw - self.mode_power_mw(mode);
        assert!(saved_mw > 0.0, "mode saves no power");
        // Idle time t pays off when saved_mw * t >= trans_mj + the active
        // energy we would also have spent across the transitions themselves.
        let secs = trans_mj / 1e3 / saved_mw;
        SimDuration::from_secs_f64(secs) + down.latency + wake.latency
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::rdram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_exact() {
        let m = PowerModel::rdram();
        assert_eq!(m.mode_power_mw(PowerMode::Active), 300.0);
        assert_eq!(m.mode_power_mw(PowerMode::Standby), 180.0);
        assert_eq!(m.mode_power_mw(PowerMode::Nap), 30.0);
        assert_eq!(m.mode_power_mw(PowerMode::Powerdown), 3.0);

        assert_eq!(m.down(PowerMode::Standby).power_mw, 240.0);
        assert_eq!(
            m.down(PowerMode::Standby).latency,
            SimDuration::from_ps(625)
        );
        assert_eq!(m.down(PowerMode::Nap).power_mw, 160.0);
        assert_eq!(m.down(PowerMode::Nap).latency, SimDuration::from_ps(5000));
        assert_eq!(m.down(PowerMode::Powerdown).power_mw, 15.0);
        assert_eq!(
            m.down(PowerMode::Powerdown).latency,
            SimDuration::from_ps(5000)
        );

        assert_eq!(m.wake(PowerMode::Standby).power_mw, 240.0);
        assert_eq!(m.wake(PowerMode::Standby).latency, SimDuration::from_ns(6));
        assert_eq!(m.wake(PowerMode::Nap).power_mw, 160.0);
        assert_eq!(m.wake(PowerMode::Nap).latency, SimDuration::from_ns(60));
        assert_eq!(m.wake(PowerMode::Powerdown).power_mw, 15.0);
        assert_eq!(
            m.wake(PowerMode::Powerdown).latency,
            SimDuration::from_ns(6000)
        );
    }

    #[test]
    fn mode_ordering_and_deeper() {
        assert!(PowerMode::Active < PowerMode::Standby);
        assert_eq!(PowerMode::Active.deeper(), Some(PowerMode::Standby));
        assert_eq!(PowerMode::Standby.deeper(), Some(PowerMode::Nap));
        assert_eq!(PowerMode::Nap.deeper(), Some(PowerMode::Powerdown));
        assert_eq!(PowerMode::Powerdown.deeper(), None);
        assert!(!PowerMode::Active.is_low_power());
        assert!(PowerMode::Powerdown.is_low_power());
    }

    #[test]
    fn service_time_8_bytes_is_4_cycles() {
        let m = PowerModel::rdram();
        assert_eq!(m.service_time(8), SimDuration::from_ps(2500));
    }

    #[test]
    fn ddr_variant_is_slower() {
        let m = PowerModel::ddr_sdram_like();
        assert_eq!(m.bandwidth_bytes_per_sec(), 2.1e9);
        assert!(m.service_time(8) > PowerModel::rdram().service_time(8));
    }

    #[test]
    fn break_even_monotone_in_depth() {
        let m = PowerModel::rdram();
        let s = m.break_even(PowerMode::Standby);
        let n = m.break_even(PowerMode::Nap);
        let p = m.break_even(PowerMode::Powerdown);
        assert!(s < n && n < p, "{s} {n} {p}");
        // Powerdown break-even is dominated by the 6 us wake.
        assert!(p > SimDuration::from_us(6));
    }

    #[test]
    fn builder_setters() {
        let m = PowerModel::rdram()
            .with_bandwidth(1.0e9)
            .with_chip_bytes(1024)
            .with_mode_power(PowerMode::Nap, 42.0);
        assert_eq!(m.bandwidth_bytes_per_sec(), 1.0e9);
        assert_eq!(m.chip_bytes(), 1024);
        assert_eq!(m.mode_power_mw(PowerMode::Nap), 42.0);
    }

    #[test]
    #[should_panic(expected = "no transition entry")]
    fn down_to_active_panics() {
        let _ = PowerModel::rdram().down(PowerMode::Active);
    }

    #[test]
    fn display_names() {
        assert_eq!(PowerMode::Active.to_string(), "active");
        assert_eq!(PowerMode::Powerdown.to_string(), "powerdown");
    }
}
