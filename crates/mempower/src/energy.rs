//! Energy accounting in the paper's Figure 2(b) / Figure 6 categories.

use std::fmt;
use std::ops::{Add, AddAssign};

use simcore::SimDuration;

/// Where a joule went. These are exactly the stacked-bar components of the
/// paper's Figures 2(b) and 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyCategory {
    /// Active mode, actually moving data for a DMA-memory request or a
    /// processor access.
    ActiveServing,
    /// Active mode, idle *between successive DMA-memory requests* of
    /// in-flight transfers — the waste the paper's techniques attack.
    ActiveIdleDma,
    /// Active mode, idle waiting for the low-level policy's idleness
    /// threshold to expire.
    ActiveIdleThreshold,
    /// Power-mode transitions (both directions).
    Transition,
    /// Steady time in standby/nap/powerdown.
    LowPower,
    /// Page-migration traffic of the popularity-based layout (Figure 6 adds
    /// this category for DMA-TA-PL).
    Migration,
}

impl EnergyCategory {
    /// All categories in Figure 2(b)/6 display order.
    pub const ALL: [EnergyCategory; 6] = [
        EnergyCategory::ActiveServing,
        EnergyCategory::ActiveIdleDma,
        EnergyCategory::ActiveIdleThreshold,
        EnergyCategory::Transition,
        EnergyCategory::LowPower,
        EnergyCategory::Migration,
    ];

    fn index(self) -> usize {
        match self {
            EnergyCategory::ActiveServing => 0,
            EnergyCategory::ActiveIdleDma => 1,
            EnergyCategory::ActiveIdleThreshold => 2,
            EnergyCategory::Transition => 3,
            EnergyCategory::LowPower => 4,
            EnergyCategory::Migration => 5,
        }
    }

    /// The legend label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::ActiveServing => "Active Serving",
            EnergyCategory::ActiveIdleDma => "Active Idle DMA",
            EnergyCategory::ActiveIdleThreshold => "Active Idle Threshold",
            EnergyCategory::Transition => "Transition",
            EnergyCategory::LowPower => "Low Power Modes",
            EnergyCategory::Migration => "Migration",
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated energy (millijoules) and time per [`EnergyCategory`].
///
/// # Example
///
/// ```
/// use mempower::{EnergyBreakdown, EnergyCategory};
/// use simcore::SimDuration;
///
/// let mut e = EnergyBreakdown::new();
/// e.accrue(EnergyCategory::ActiveServing, 300.0, SimDuration::from_us(1));
/// e.accrue(EnergyCategory::LowPower, 3.0, SimDuration::from_us(1));
/// assert!((e.total_mj() - 0.000303).abs() < 1e-9);
/// assert!(e.fraction(EnergyCategory::ActiveServing) > 0.98);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyBreakdown {
    energy_mj: [f64; 6],
    time: [SimDuration; 6],
}

impl EnergyBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        EnergyBreakdown::default()
    }

    /// Accrues `duration` of time at `power_mw` into `category`.
    ///
    /// # Panics
    ///
    /// Panics if `power_mw` is negative or not finite.
    pub fn accrue(&mut self, category: EnergyCategory, power_mw: f64, duration: SimDuration) {
        assert!(
            power_mw >= 0.0 && power_mw.is_finite(),
            "invalid power: {power_mw}"
        );
        let i = category.index();
        self.energy_mj[i] += power_mw * duration.as_secs_f64();
        self.time[i] += duration;
    }

    /// Energy accumulated in `category`, in millijoules.
    pub fn energy_mj(&self, category: EnergyCategory) -> f64 {
        self.energy_mj[category.index()]
    }

    /// Time accumulated in `category`.
    pub fn time(&self, category: EnergyCategory) -> SimDuration {
        self.time[category.index()]
    }

    /// Total energy across categories, in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.energy_mj.iter().sum()
    }

    /// Fraction of total energy in `category` (0 when empty).
    pub fn fraction(&self, category: EnergyCategory) -> f64 {
        let total = self.total_mj();
        if total == 0.0 {
            0.0
        } else {
            self.energy_mj(category) / total
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        for i in 0..6 {
            self.energy_mj[i] += other.energy_mj[i];
            self.time[i] += other.time[i];
        }
    }

    /// Energy saved relative to `baseline`, as a fraction of the baseline
    /// total (the y-axis of the paper's Figures 5, 8, 9, 10). Negative when
    /// this breakdown consumes *more* than the baseline.
    ///
    /// # Panics
    ///
    /// Panics if the baseline total is zero.
    pub fn savings_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        let base = baseline.total_mj();
        assert!(base > 0.0, "baseline consumed no energy");
        (base - self.total_mj()) / base
    }

    /// The utilization factor `uf = T_useful / T_tot` of Section 5.3:
    /// time actively serving divided by total active time attributable to
    /// DMA activity (serving + idle-between-requests).
    ///
    /// Returns 1.0 when no DMA activity was recorded.
    pub fn utilization_factor(&self) -> f64 {
        let useful = self.time(EnergyCategory::ActiveServing);
        let tot = useful + self.time(EnergyCategory::ActiveIdleDma);
        if tot.is_zero() {
            1.0
        } else {
            useful.ratio(tot)
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(mut self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        self.merge(&rhs);
        self
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        self.merge(&rhs);
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<24}{:>12}  {:>7}", "category", "energy (mJ)", "share")?;
        for cat in EnergyCategory::ALL {
            writeln!(
                f,
                "{:<24}{:>12.4}  {:>6.1}%",
                cat.label(),
                self.energy_mj(cat),
                self.fraction(cat) * 100.0
            )?;
        }
        write!(f, "{:<24}{:>12.4}", "TOTAL", self.total_mj())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_energy_and_time() {
        let mut e = EnergyBreakdown::new();
        // 300 mW for 1 ms = 0.3 mJ.
        e.accrue(
            EnergyCategory::ActiveServing,
            300.0,
            SimDuration::from_ms(1),
        );
        assert!((e.energy_mj(EnergyCategory::ActiveServing) - 0.3).abs() < 1e-12);
        assert_eq!(
            e.time(EnergyCategory::ActiveServing),
            SimDuration::from_ms(1)
        );
        assert_eq!(e.energy_mj(EnergyCategory::LowPower), 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut e = EnergyBreakdown::new();
        for (i, cat) in EnergyCategory::ALL.into_iter().enumerate() {
            e.accrue(cat, (i + 1) as f64 * 10.0, SimDuration::from_us(7));
        }
        let sum: f64 = EnergyCategory::ALL.iter().map(|&c| e.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        let e = EnergyBreakdown::new();
        assert_eq!(e.total_mj(), 0.0);
        assert_eq!(e.fraction(EnergyCategory::Transition), 0.0);
        assert_eq!(e.utilization_factor(), 1.0);
    }

    #[test]
    fn savings_vs_baseline() {
        let mut base = EnergyBreakdown::new();
        base.accrue(
            EnergyCategory::ActiveIdleDma,
            100.0,
            SimDuration::from_ms(1),
        );
        let mut better = EnergyBreakdown::new();
        better.accrue(EnergyCategory::ActiveIdleDma, 60.0, SimDuration::from_ms(1));
        assert!((better.savings_vs(&base) - 0.4).abs() < 1e-12);
        let mut worse = EnergyBreakdown::new();
        worse.accrue(
            EnergyCategory::ActiveIdleDma,
            150.0,
            SimDuration::from_ms(1),
        );
        assert!(worse.savings_vs(&base) < 0.0);
    }

    #[test]
    fn utilization_factor_one_third() {
        // Figure 2(a): serving 4 of every 12 cycles => uf = 1/3.
        let mut e = EnergyBreakdown::new();
        e.accrue(
            EnergyCategory::ActiveServing,
            300.0,
            SimDuration::from_ns(4),
        );
        e.accrue(
            EnergyCategory::ActiveIdleDma,
            300.0,
            SimDuration::from_ns(8),
        );
        assert!((e.utilization_factor() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_add_agree() {
        let mut a = EnergyBreakdown::new();
        a.accrue(EnergyCategory::Transition, 15.0, SimDuration::from_us(2));
        let mut b = EnergyBreakdown::new();
        b.accrue(EnergyCategory::Transition, 15.0, SimDuration::from_us(3));
        let mut merged = a.clone();
        merged.merge(&b);
        let added = a + b;
        assert_eq!(merged, added);
        assert_eq!(
            merged.time(EnergyCategory::Transition),
            SimDuration::from_us(5)
        );
    }

    #[test]
    fn display_contains_labels_and_total() {
        let mut e = EnergyBreakdown::new();
        e.accrue(EnergyCategory::Migration, 300.0, SimDuration::from_us(1));
        let s = e.to_string();
        assert!(s.contains("Migration"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("Active Idle DMA"));
    }
}
