//! The per-chip power/energy state machine.
//!
//! A [`Chip`] is a *passive* model: the discrete-event simulator driving it
//! calls state-changing methods ([`Chip::begin_service`],
//! [`Chip::begin_sleep`], [`Chip::begin_wake`],
//! [`Chip::complete_transition`]) and the chip lazily accrues energy between
//! calls, classifying active-idle time as *DMA idle* versus *threshold idle*
//! from the number of in-flight DMA transfers the controller has registered
//! against it (paper Figure 2).

use crate::energy::{EnergyBreakdown, EnergyCategory};
use crate::model::{PowerMode, PowerModel};
use simcore::{SimDuration, SimTime};

/// Index of a memory chip in the system.
pub type ChipId = usize;

/// What a chip is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipPhase {
    /// Settled in a power mode.
    Steady(PowerMode),
    /// Transitioning from `Active` down to `to`; completes at `until`.
    GoingDown {
        /// Target low-power mode.
        to: PowerMode,
        /// Completion instant.
        until: SimTime,
    },
    /// Waking from `from` back to `Active`; completes at `until`.
    Waking {
        /// The low-power mode being left.
        from: PowerMode,
        /// Completion instant.
        until: SimTime,
    },
}

/// Time a chip spent settled in each power mode, plus time spent
/// transitioning between modes — the per-state residency view that DRAM
/// power studies report alongside energy (e.g. Jagtap et al.'s gem5
/// power-down integration). Sums to the simulated horizon for a chip
/// synced through the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeResidency {
    settled: [SimDuration; 4],
    transitioning: SimDuration,
}

impl ModeResidency {
    /// An empty residency ledger.
    pub fn new() -> Self {
        ModeResidency::default()
    }

    fn mode_slot(mode: PowerMode) -> usize {
        match mode {
            PowerMode::Active => 0,
            PowerMode::Standby => 1,
            PowerMode::Nap => 2,
            PowerMode::Powerdown => 3,
        }
    }

    fn note(&mut self, phase: ChipPhase, duration: SimDuration) {
        match phase {
            ChipPhase::Steady(mode) => self.settled[Self::mode_slot(mode)] += duration,
            ChipPhase::GoingDown { .. } | ChipPhase::Waking { .. } => {
                self.transitioning += duration;
            }
        }
    }

    /// Time settled in `mode`.
    pub fn in_mode(&self, mode: PowerMode) -> SimDuration {
        self.settled[Self::mode_slot(mode)]
    }

    /// Time spent in mode transitions (either direction).
    pub fn transitioning(&self) -> SimDuration {
        self.transitioning
    }

    /// Total accounted time (the simulated horizon for a fully-synced chip).
    pub fn total(&self) -> SimDuration {
        self.settled.iter().copied().sum::<SimDuration>() + self.transitioning
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &ModeResidency) {
        for i in 0..4 {
            self.settled[i] += other.settled[i];
        }
        self.transitioning += other.transitioning;
    }
}

/// One recorded power-mode transition (see
/// [`Chip::enable_transition_log`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionEvent {
    /// When the transition began.
    pub at: SimTime,
    /// Mode being left.
    pub from: PowerMode,
    /// Mode being entered.
    pub to: PowerMode,
    /// Transition latency.
    pub latency: SimDuration,
}

/// One memory chip: power mode, service occupancy, and energy ledger.
///
/// # Example
///
/// ```
/// use mempower::{Chip, EnergyCategory, PowerMode, PowerModel};
/// use simcore::{SimDuration, SimTime};
///
/// let mut chip = Chip::new(0, PowerModel::rdram());
/// let t0 = SimTime::ZERO;
/// let done = chip.begin_sleep(t0, PowerMode::Nap);
/// chip.complete_transition(done);
/// assert_eq!(chip.mode(), Some(PowerMode::Nap));
/// ```
#[derive(Debug, Clone)]
pub struct Chip {
    id: ChipId,
    model: PowerModel,
    phase: ChipPhase,
    last_accrual: SimTime,
    busy_until: SimTime,
    serve_category: EnergyCategory,
    inflight_dma: u32,
    energy: EnergyBreakdown,
    residency: ModeResidency,
    last_activity: SimTime,
    services: u64,
    wakes: u64,
    transition_log: Option<Vec<TransitionEvent>>,
}

impl Chip {
    /// Creates a chip in `Active` mode at simulation start.
    pub fn new(id: ChipId, model: PowerModel) -> Self {
        Chip {
            id,
            model,
            phase: ChipPhase::Steady(PowerMode::Active),
            last_accrual: SimTime::ZERO,
            busy_until: SimTime::ZERO,
            serve_category: EnergyCategory::ActiveServing,
            inflight_dma: 0,
            energy: EnergyBreakdown::new(),
            residency: ModeResidency::new(),
            last_activity: SimTime::ZERO,
            services: 0,
            wakes: 0,
            transition_log: None,
        }
    }

    /// Starts recording every power-mode transition this chip begins; the
    /// driver drains them with [`Chip::take_transition_events`]. Off by
    /// default (the log grows unboundedly if never drained).
    pub fn enable_transition_log(&mut self) {
        self.transition_log = Some(Vec::new());
    }

    /// Drains the recorded transitions (empty unless
    /// [`Chip::enable_transition_log`] was called).
    pub fn take_transition_events(&mut self) -> Vec<TransitionEvent> {
        match &mut self.transition_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    fn log_transition(
        &mut self,
        at: SimTime,
        from: PowerMode,
        to: PowerMode,
        latency: SimDuration,
    ) {
        if let Some(log) = &mut self.transition_log {
            log.push(TransitionEvent {
                at,
                from,
                to,
                latency,
            });
        }
    }

    /// This chip's index.
    pub fn id(&self) -> ChipId {
        self.id
    }

    /// The power model in force.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Current phase.
    pub fn phase(&self) -> ChipPhase {
        self.phase
    }

    /// The settled power mode, or `None` while transitioning.
    pub fn mode(&self) -> Option<PowerMode> {
        match self.phase {
            ChipPhase::Steady(m) => Some(m),
            _ => None,
        }
    }

    /// True if the chip is settled in `Active` mode (it may still be busy
    /// serving; see [`Chip::is_free`]).
    pub fn is_active(&self) -> bool {
        self.phase == ChipPhase::Steady(PowerMode::Active)
    }

    /// True if the chip can start a new service at `now`: active and not
    /// currently serving.
    pub fn is_free(&self, now: SimTime) -> bool {
        self.is_active() && self.busy_until <= now
    }

    /// End of the in-progress service (equals or precedes "now" when idle).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Instant of the most recent service completion or wake-up — the
    /// reference point for the low-level policy's idleness thresholds.
    pub fn last_activity(&self) -> SimTime {
        self.last_activity
    }

    /// Number of DMA transfers currently registered as in flight to this
    /// chip (controls idle-time classification).
    pub fn inflight_dma(&self) -> u32 {
        self.inflight_dma
    }

    /// Number of services performed.
    pub fn services(&self) -> u64 {
        self.services
    }

    /// Number of wake-ups performed.
    pub fn wakes(&self) -> u64 {
        self.wakes
    }

    /// The energy ledger so far (accrued up to the last state change; call
    /// [`Chip::sync`] first for an up-to-the-instant view).
    pub fn energy(&self) -> &EnergyBreakdown {
        &self.energy
    }

    /// The per-mode residency ledger so far (accrued up to the last state
    /// change; call [`Chip::sync`] first for an up-to-the-instant view).
    pub fn residency(&self) -> &ModeResidency {
        &self.residency
    }

    /// Accrues energy up to `now` without changing state.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last accrual instant.
    pub fn sync(&mut self, now: SimTime) {
        assert!(
            now >= self.last_accrual,
            "chip {} time went backwards: {} < {}",
            self.id,
            now,
            self.last_accrual
        );
        let mut t = self.last_accrual;
        while t < now {
            let (seg_end, category, power) = self.segment_after(t, now);
            self.energy.accrue(category, power, seg_end - t);
            self.residency.note(self.phase, seg_end - t);
            t = seg_end;
        }
        self.last_accrual = now;
    }

    /// Classifies the accrual segment starting at `t` (capped at `limit`):
    /// returns (segment end, category, power in mW).
    fn segment_after(&self, t: SimTime, limit: SimTime) -> (SimTime, EnergyCategory, f64) {
        match self.phase {
            ChipPhase::GoingDown { to, until } => {
                debug_assert!(t < until || limit <= until, "down transition overran");
                (
                    limit.min(until.max(t)),
                    EnergyCategory::Transition,
                    self.model.down(to).power_mw,
                )
            }
            ChipPhase::Waking { from, until } => (
                limit.min(until.max(t)),
                EnergyCategory::Transition,
                self.model.wake(from).power_mw,
            ),
            ChipPhase::Steady(PowerMode::Active) => {
                let active = self.model.mode_power_mw(PowerMode::Active);
                if t < self.busy_until {
                    (limit.min(self.busy_until), self.serve_category, active)
                } else if self.inflight_dma > 0 {
                    (limit, EnergyCategory::ActiveIdleDma, active)
                } else {
                    (limit, EnergyCategory::ActiveIdleThreshold, active)
                }
            }
            ChipPhase::Steady(mode) => (
                limit,
                EnergyCategory::LowPower,
                self.model.mode_power_mw(mode),
            ),
        }
    }

    /// Starts serving one request (or one migration chunk) at `now`, lasting
    /// `duration` and billed to `category`.
    ///
    /// # Panics
    ///
    /// Panics if the chip is not free at `now`, or if `category` is not a
    /// serving category (`ActiveServing` or `Migration`).
    pub fn begin_service(&mut self, now: SimTime, duration: SimDuration, category: EnergyCategory) {
        assert!(
            matches!(
                category,
                EnergyCategory::ActiveServing | EnergyCategory::Migration
            ),
            "not a serving category: {category:?}"
        );
        self.sync(now);
        assert!(
            self.is_free(now),
            "chip {} cannot serve at {now}: phase {:?}, busy until {}",
            self.id,
            self.phase,
            self.busy_until
        );
        self.busy_until = now + duration;
        self.serve_category = category;
        self.last_activity = self.busy_until;
        self.services += 1;
    }

    /// Begins a transition into the deeper low-power mode `to` at `now`,
    /// from `Active` (which must be idle) or from a shallower low-power
    /// mode (the dynamic policy's standby -> nap -> powerdown descent; the
    /// transition is billed with the `Active -> to` spec, the deepest cost
    /// in the RDRAM tables). Returns the completion instant; the caller
    /// must invoke [`Chip::complete_transition`] exactly then.
    ///
    /// # Panics
    ///
    /// Panics if `to` is `Active`, the chip is mid-transition or busy
    /// serving, or `to` is not deeper than the current mode.
    pub fn begin_sleep(&mut self, now: SimTime, to: PowerMode) -> SimTime {
        assert!(to.is_low_power(), "cannot sleep into active mode");
        self.sync(now);
        let current = match self.phase {
            ChipPhase::Steady(m) => m,
            // simlint::allow(panic-path, "documented API contract: begin_sleep panics on a mid-transition chip; MemSystem gates on phase() before calling")
            _ => panic!("chip {} cannot sleep mid-transition at {now}", self.id),
        };
        assert!(
            current < to,
            "chip {} cannot sleep from {current} into {to}",
            self.id
        );
        assert!(
            current != PowerMode::Active || self.busy_until <= now,
            "chip {} cannot sleep while serving (busy until {})",
            self.id,
            self.busy_until
        );
        let latency = self.model.down(to).latency;
        let until = now + latency;
        self.phase = ChipPhase::GoingDown { to, until };
        self.log_transition(now, current, to, latency);
        until
    }

    /// Begins waking to `Active` at `now`. Returns the completion instant;
    /// the caller must invoke [`Chip::complete_transition`] exactly then.
    ///
    /// # Panics
    ///
    /// Panics if the chip is not settled in a low-power mode.
    pub fn begin_wake(&mut self, now: SimTime) -> SimTime {
        self.sync(now);
        let from = match self.phase {
            ChipPhase::Steady(m) if m.is_low_power() => m,
            // simlint::allow(panic-path, "documented API contract: begin_wake requires a settled low-power chip; callers gate on phase()")
            _ => panic!(
                "chip {} cannot wake at {now}: phase {:?}",
                self.id, self.phase
            ),
        };
        let latency = self.model.wake(from).latency;
        let until = now + latency;
        self.phase = ChipPhase::Waking { from, until };
        self.wakes += 1;
        self.log_transition(now, from, PowerMode::Active, latency);
        until
    }

    /// Completes an in-progress transition. `now` must match the instant
    /// returned by [`Chip::begin_sleep`]/[`Chip::begin_wake`].
    ///
    /// # Panics
    ///
    /// Panics if no transition is in progress or `now` mismatches.
    pub fn complete_transition(&mut self, now: SimTime) {
        self.sync(now);
        match self.phase {
            ChipPhase::GoingDown { to, until } => {
                assert_eq!(until, now, "chip {} down-transition time mismatch", self.id);
                self.phase = ChipPhase::Steady(to);
            }
            ChipPhase::Waking { until, .. } => {
                assert_eq!(until, now, "chip {} wake time mismatch", self.id);
                self.phase = ChipPhase::Steady(PowerMode::Active);
                self.last_activity = now;
            }
            // simlint::allow(panic-path, "documented API contract: complete_transition pairs 1:1 with a begin_* call; a steady chip here is a scheduler bug")
            ChipPhase::Steady(_) => panic!("chip {} has no transition to complete", self.id),
        }
    }

    /// Registers the start of a DMA transfer targeting this chip (idle time
    /// now classifies as [`EnergyCategory::ActiveIdleDma`]).
    pub fn dma_transfer_started(&mut self, now: SimTime) {
        self.sync(now);
        self.inflight_dma += 1;
    }

    /// Registers the completion of a DMA transfer targeting this chip.
    ///
    /// # Panics
    ///
    /// Panics if no transfer is in flight.
    pub fn dma_transfer_ended(&mut self, now: SimTime) {
        self.sync(now);
        assert!(
            self.inflight_dma > 0,
            "chip {} had no in-flight DMA",
            self.id
        );
        self.inflight_dma -= 1;
        if self.inflight_dma == 0 {
            // End of DMA activity: idleness (for threshold purposes) starts
            // no earlier than the end of the last service.
            self.last_activity = self.last_activity.max(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimDuration {
        SimDuration::from_ns(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::ZERO + ns(n)
    }

    #[test]
    fn serving_energy_is_active_power_times_time() {
        let mut c = Chip::new(0, PowerModel::rdram());
        c.begin_service(at(0), ns(100), EnergyCategory::ActiveServing);
        c.sync(at(100));
        let e = c.energy();
        // 300 mW * 100 ns = 3e-5 mJ.
        assert!((e.energy_mj(EnergyCategory::ActiveServing) - 3e-5).abs() < 1e-12);
        assert_eq!(e.time(EnergyCategory::ActiveServing), ns(100));
    }

    #[test]
    fn idle_classification_follows_inflight_dma() {
        let mut c = Chip::new(0, PowerModel::rdram());
        // 0-50 ns: no DMA in flight => threshold idle.
        c.dma_transfer_started(at(50));
        // 50-150 ns: DMA in flight, not serving => DMA idle.
        c.dma_transfer_ended(at(150));
        c.sync(at(200));
        let e = c.energy();
        assert_eq!(e.time(EnergyCategory::ActiveIdleThreshold), ns(100));
        assert_eq!(e.time(EnergyCategory::ActiveIdleDma), ns(100));
    }

    #[test]
    fn serving_splits_segments() {
        let mut c = Chip::new(0, PowerModel::rdram());
        c.dma_transfer_started(at(0));
        c.begin_service(at(0), ns(4), EnergyCategory::ActiveServing);
        // Accrue straight past the service end: 4 ns serving + 8 ns DMA idle.
        c.sync(at(12));
        let e = c.energy();
        assert_eq!(e.time(EnergyCategory::ActiveServing), ns(4));
        assert_eq!(e.time(EnergyCategory::ActiveIdleDma), ns(8));
        // Figure 2(a) shape: uf = 1/3.
        assert!((e.utilization_factor() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sleep_wake_cycle_accrues_transition_and_low_power() {
        let model = PowerModel::rdram();
        let mut c = Chip::new(0, model.clone());
        let down_done = c.begin_sleep(at(0), PowerMode::Nap);
        assert_eq!(
            down_done,
            SimTime::ZERO + model.down(PowerMode::Nap).latency
        );
        c.complete_transition(down_done);
        assert_eq!(c.mode(), Some(PowerMode::Nap));

        let wake_start = at(1000);
        let wake_done = c.begin_wake(wake_start);
        assert_eq!(wake_done, wake_start + ns(60));
        c.complete_transition(wake_done);
        assert!(c.is_active());
        assert_eq!(c.wakes(), 1);

        let e = c.energy();
        let down = model.down(PowerMode::Nap);
        let wake = model.wake(PowerMode::Nap);
        let expect_transition_mj =
            down.power_mw * down.latency.as_secs_f64() + wake.power_mw * wake.latency.as_secs_f64();
        assert!((e.energy_mj(EnergyCategory::Transition) - expect_transition_mj).abs() < 1e-15);
        assert!(e.time(EnergyCategory::LowPower) > SimDuration::ZERO);
        // Low-power span = 1000 ns - 5 ns down latency.
        assert_eq!(e.time(EnergyCategory::LowPower), ns(1000) - down.latency);
    }

    #[test]
    fn migration_service_bills_migration_category() {
        let mut c = Chip::new(0, PowerModel::rdram());
        c.begin_service(at(0), ns(10), EnergyCategory::Migration);
        c.sync(at(10));
        assert_eq!(c.energy().time(EnergyCategory::Migration), ns(10));
        assert_eq!(
            c.energy().time(EnergyCategory::ActiveServing),
            SimDuration::ZERO
        );
    }

    #[test]
    fn is_free_tracks_busy_and_mode() {
        let mut c = Chip::new(3, PowerModel::rdram());
        assert!(c.is_free(at(0)));
        c.begin_service(at(0), ns(10), EnergyCategory::ActiveServing);
        assert!(!c.is_free(at(5)));
        assert!(c.is_free(at(10)));
        let done = c.begin_sleep(at(10), PowerMode::Standby);
        assert!(!c.is_free(at(10)));
        c.complete_transition(done);
        assert!(!c.is_free(done));
        assert_eq!(c.mode(), Some(PowerMode::Standby));
    }

    #[test]
    fn last_activity_tracks_service_end_and_wake() {
        let mut c = Chip::new(0, PowerModel::rdram());
        c.begin_service(at(0), ns(7), EnergyCategory::ActiveServing);
        assert_eq!(c.last_activity(), at(7));
        c.sync(at(20));
        let done = c.begin_sleep(at(20), PowerMode::Nap);
        c.complete_transition(done);
        let wake_done = c.begin_wake(at(100));
        c.complete_transition(wake_done);
        assert_eq!(c.last_activity(), wake_done);
    }

    #[test]
    #[should_panic(expected = "cannot serve")]
    fn serving_while_asleep_panics() {
        let mut c = Chip::new(0, PowerModel::rdram());
        let done = c.begin_sleep(at(0), PowerMode::Nap);
        c.complete_transition(done);
        c.begin_service(at(100), ns(1), EnergyCategory::ActiveServing);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn sync_backwards_panics() {
        let mut c = Chip::new(0, PowerModel::rdram());
        c.sync(at(10));
        c.sync(at(5));
    }

    #[test]
    #[should_panic(expected = "no in-flight DMA")]
    fn unbalanced_dma_end_panics() {
        let mut c = Chip::new(0, PowerModel::rdram());
        c.dma_transfer_ended(at(0));
    }

    #[test]
    fn transition_log_records_sleep_and_wake() {
        let model = PowerModel::rdram();
        let mut c = Chip::new(0, model.clone());
        assert!(c.take_transition_events().is_empty());
        c.enable_transition_log();
        let down = c.begin_sleep(at(0), PowerMode::Nap);
        c.complete_transition(down);
        let wake = c.begin_wake(at(1000));
        c.complete_transition(wake);
        let events = c.take_transition_events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            TransitionEvent {
                at: at(0),
                from: PowerMode::Active,
                to: PowerMode::Nap,
                latency: model.down(PowerMode::Nap).latency,
            }
        );
        assert_eq!(events[1].to, PowerMode::Active);
        assert_eq!(events[1].latency, model.wake(PowerMode::Nap).latency);
        // Draining empties the log.
        assert!(c.take_transition_events().is_empty());
    }

    #[test]
    fn residency_partitions_the_synced_horizon() {
        let model = PowerModel::rdram();
        let mut c = Chip::new(0, model.clone());
        c.begin_service(at(0), ns(100), EnergyCategory::ActiveServing);
        c.sync(at(200));
        let down_done = c.begin_sleep(at(200), PowerMode::Nap);
        c.complete_transition(down_done);
        let wake_done = c.begin_wake(at(1000));
        c.complete_transition(wake_done);
        c.sync(at(2000));
        let r = *c.residency();
        let down = model.down(PowerMode::Nap).latency;
        let wake = model.wake(PowerMode::Nap).latency;
        assert_eq!(r.transitioning(), down + wake);
        assert_eq!(r.in_mode(PowerMode::Nap), ns(800) - down);
        assert_eq!(r.in_mode(PowerMode::Powerdown), SimDuration::ZERO);
        // Active time is everything else; the whole horizon is accounted.
        assert_eq!(r.total(), ns(2000));
        assert_eq!(
            r.in_mode(PowerMode::Active),
            ns(2000) - r.transitioning() - r.in_mode(PowerMode::Nap)
        );
    }

    #[test]
    fn residency_merge_adds_ledgers() {
        let mut a = ModeResidency::new();
        a.note(ChipPhase::Steady(PowerMode::Active), ns(10));
        let mut b = ModeResidency::new();
        b.note(ChipPhase::Steady(PowerMode::Active), ns(5));
        b.note(
            ChipPhase::Waking {
                from: PowerMode::Nap,
                until: at(1),
            },
            ns(3),
        );
        a.merge(&b);
        assert_eq!(a.in_mode(PowerMode::Active), ns(15));
        assert_eq!(a.transitioning(), ns(3));
        assert_eq!(a.total(), ns(18));
    }

    #[test]
    fn total_energy_is_conserved_across_classification() {
        // However idle time is classified, total energy must equal the sum
        // of per-mode power times time.
        let mut c = Chip::new(0, PowerModel::rdram());
        c.dma_transfer_started(at(10));
        c.begin_service(at(10), ns(4), EnergyCategory::ActiveServing);
        c.dma_transfer_ended(at(30));
        let down_done = c.begin_sleep(at(40), PowerMode::Powerdown);
        c.complete_transition(down_done);
        c.sync(at(100_000));
        let e = c.energy();
        let active_span = ns(40);
        let trans_span = PowerModel::rdram().down(PowerMode::Powerdown).latency;
        let low_span = at(100_000) - down_done;
        let expect = 300.0 * active_span.as_secs_f64()
            + 15.0 * trans_span.as_secs_f64()
            + 3.0 * low_span.as_secs_f64();
        assert!((e.total_mj() - expect).abs() < 1e-12);
    }
}
