//! RDRAM-style multi-power-mode DRAM energy model.
//!
//! This crate implements the memory power model of the paper's Section 2.2:
//! chips that independently operate in one of four power modes (active,
//! standby, nap, powerdown), with the mode powers and transition costs of the
//! paper's **Table 1** (512-Mb 1600 MHz RDRAM), plus:
//!
//! * [`EnergyBreakdown`] — energy accounting in exactly the categories of the
//!   paper's Figures 2(b) and 6 (`ActiveServing`, `ActiveIdleDma`,
//!   `ActiveIdleThreshold`, `Transition`, `LowPower`, `Migration`).
//! * [`Chip`] — a lazily-accruing per-chip power/energy state machine driven
//!   by a discrete-event simulator.
//! * [`policy`] — the low-level power-management policies the paper layers
//!   its DMA-aware techniques on: the dynamic threshold policy of Lebeck et
//!   al. (the evaluation baseline), static policies, and a self-tuning
//!   variant in the spirit of Li et al.
//!
//! # Example
//!
//! ```
//! use mempower::{Chip, EnergyCategory, PowerModel};
//! use simcore::{SimDuration, SimTime};
//!
//! let model = PowerModel::rdram();
//! let mut chip = Chip::new(0, model);
//! let t0 = SimTime::ZERO;
//! // Serve a request for 2.5 ns (4 memory cycles), then idle.
//! chip.begin_service(t0, SimDuration::from_ps(2500), EnergyCategory::ActiveServing);
//! chip.sync(t0 + SimDuration::from_ns(10));
//! let e = chip.energy();
//! assert!(e.energy_mj(EnergyCategory::ActiveServing) > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Engine code must not panic on recoverable conditions; test code may
// unwrap freely (CI runs clippy with -D warnings, so this stays a
// lib-only gate).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod chip;
mod energy;
mod model;
pub mod policy;

pub use chip::{Chip, ChipId, ChipPhase, ModeResidency, TransitionEvent};
pub use energy::{EnergyBreakdown, EnergyCategory};
pub use model::{PowerMode, PowerModel, TransitionSpec};
