//! Low-level memory power-management policies.
//!
//! The paper's DMA-aware techniques sit *on top of* a conventional policy
//! that decides when an idle chip descends into which low-power mode
//! (Section 2.2). This module provides:
//!
//! * [`DynamicThresholdPolicy`] — the dynamic scheme of Lebeck et al.
//!   (ASPLOS 2000), the paper's evaluation **baseline**: step down to the
//!   next lower mode after a per-mode idleness threshold.
//! * [`StaticPolicy`] — always drop to one fixed mode as soon as idle.
//! * [`AlwaysActive`] — no power management (used to measure the
//!   unconstrained request service time `T` and calibrate CP-Limit).
//! * [`SelfTuningPolicy`] — an adaptive-threshold extension in the spirit of
//!   Li et al. (ASPLOS 2004), used for the threshold-insensitivity ablation.

use crate::model::{PowerMode, PowerModel};
use simcore::{SimDuration, SimTime};

/// Decides when an idle chip transitions into which low-power mode.
///
/// The simulator calls [`PowerPolicy::next_step`] whenever a chip settles
/// into a mode while idle; the policy answers "begin transitioning to mode
/// `M` at instant `t`" (the simulator re-checks that the chip is still idle
/// when `t` arrives). Implementations must be deterministic.
pub trait PowerPolicy: std::fmt::Debug + Send {
    /// Given a chip settled in `current` and continuously idle since
    /// `idle_start`, returns the next down-transition as
    /// `(target mode, instant to begin)`, or `None` to stay put.
    fn next_step(
        &mut self,
        current: PowerMode,
        idle_start: SimTime,
    ) -> Option<(PowerMode, SimTime)>;

    /// Feedback hook: reports the length of a completed idle period (from
    /// idle start to the wake-triggering request). Adaptive policies use
    /// this; the default ignores it.
    fn observe_idle_period(&mut self, idle: SimDuration) {
        let _ = idle;
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// No power management: the chip never leaves `Active`.
///
/// # Example
///
/// ```
/// use mempower::policy::{AlwaysActive, PowerPolicy};
/// use mempower::PowerMode;
/// use simcore::SimTime;
///
/// let mut p = AlwaysActive;
/// assert_eq!(p.next_step(PowerMode::Active, SimTime::ZERO), None);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysActive;

impl PowerPolicy for AlwaysActive {
    fn next_step(
        &mut self,
        _current: PowerMode,
        _idle_start: SimTime,
    ) -> Option<(PowerMode, SimTime)> {
        None
    }

    fn name(&self) -> &'static str {
        "always-active"
    }
}

/// Static policy: as soon as the chip is idle, drop straight to a fixed
/// low-power mode; return to it after every service.
#[derive(Debug, Clone, Copy)]
pub struct StaticPolicy {
    mode: PowerMode,
}

impl StaticPolicy {
    /// Creates a static policy parked in `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is `Active` (use [`AlwaysActive`] for that).
    pub fn new(mode: PowerMode) -> Self {
        assert!(mode.is_low_power(), "static policy needs a low-power mode");
        StaticPolicy { mode }
    }

    /// The parking mode.
    pub fn mode(&self) -> PowerMode {
        self.mode
    }
}

impl PowerPolicy for StaticPolicy {
    fn next_step(
        &mut self,
        current: PowerMode,
        idle_start: SimTime,
    ) -> Option<(PowerMode, SimTime)> {
        if current == PowerMode::Active {
            Some((self.mode, idle_start))
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        match self.mode {
            PowerMode::Active => unreachable!(),
            PowerMode::Standby => "static-standby",
            PowerMode::Nap => "static-nap",
            PowerMode::Powerdown => "static-powerdown",
        }
    }
}

/// The dynamic threshold policy of Lebeck et al. — the paper's baseline.
///
/// The chip steps `Active -> Standby -> Nap -> Powerdown`, entering each
/// deeper mode once *cumulative* idleness (measured from the start of the
/// idle period) passes that mode's threshold. A `None` threshold disables
/// the mode.
///
/// # Example
///
/// ```
/// use mempower::policy::{DynamicThresholdPolicy, PowerPolicy};
/// use mempower::{PowerMode, PowerModel};
/// use simcore::{SimDuration, SimTime};
///
/// let mut p = DynamicThresholdPolicy::lebeck(&PowerModel::rdram());
/// let (mode, when) = p.next_step(PowerMode::Active, SimTime::ZERO).unwrap();
/// assert_eq!(mode, PowerMode::Standby);
/// assert!(when > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DynamicThresholdPolicy {
    to_standby: Option<SimDuration>,
    to_nap: Option<SimDuration>,
    to_powerdown: Option<SimDuration>,
}

impl DynamicThresholdPolicy {
    /// Creates a policy with explicit cumulative-idleness thresholds.
    ///
    /// # Panics
    ///
    /// Panics if the enabled thresholds are not strictly increasing.
    pub fn new(
        to_standby: Option<SimDuration>,
        to_nap: Option<SimDuration>,
        to_powerdown: Option<SimDuration>,
    ) -> Self {
        let mut prev = SimDuration::ZERO;
        for th in [to_standby, to_nap, to_powerdown].into_iter().flatten() {
            assert!(th >= prev, "thresholds must be nondecreasing");
            prev = th;
        }
        DynamicThresholdPolicy {
            to_standby,
            to_nap,
            to_powerdown,
        }
    }

    /// Default thresholds in the spirit of Lebeck et al., derived from the
    /// power model's break-even times: ~30 memory cycles to standby (the
    /// paper notes the best active-to-low threshold is around 20-30 cycles),
    /// then break-even-scaled steps to nap and powerdown.
    pub fn lebeck(model: &PowerModel) -> Self {
        let standby = SimDuration::from_ps(625 * 30);
        let nap = model.break_even(PowerMode::Nap).mul_f64(2.0);
        let powerdown = model.break_even(PowerMode::Powerdown).mul_f64(1.5);
        DynamicThresholdPolicy::new(
            Some(standby.max(SimDuration::from_ps(1))),
            Some(nap.max(standby)),
            Some(powerdown.max(nap)),
        )
    }

    /// Threshold (cumulative idleness) for entering `mode`, if enabled.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is `Active`.
    pub fn threshold(&self, mode: PowerMode) -> Option<SimDuration> {
        match mode {
            // simlint::allow(panic-path, "documented contract (see # Panics): thresholds exist only for low-power modes")
            PowerMode::Active => panic!("active mode has no threshold"),
            PowerMode::Standby => self.to_standby,
            PowerMode::Nap => self.to_nap,
            PowerMode::Powerdown => self.to_powerdown,
        }
    }

    /// Returns a copy with every threshold scaled by `factor` (used by the
    /// threshold-sensitivity ablation).
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |t: Option<SimDuration>| t.map(|d| d.mul_f64(factor));
        DynamicThresholdPolicy {
            to_standby: scale(self.to_standby),
            to_nap: scale(self.to_nap),
            to_powerdown: scale(self.to_powerdown),
        }
    }

    fn step_from(&self, current: PowerMode) -> Option<(PowerMode, SimDuration)> {
        let mut mode = current;
        while let Some(next) = mode.deeper() {
            if let Some(th) = self.threshold(next) {
                return Some((next, th));
            }
            mode = next;
        }
        None
    }
}

impl PowerPolicy for DynamicThresholdPolicy {
    fn next_step(
        &mut self,
        current: PowerMode,
        idle_start: SimTime,
    ) -> Option<(PowerMode, SimTime)> {
        self.step_from(current)
            .map(|(mode, th)| (mode, idle_start + th))
    }

    fn name(&self) -> &'static str {
        "dynamic-threshold"
    }
}

/// An adaptive-threshold policy in the spirit of Li et al. (ASPLOS 2004):
/// thresholds double when idle periods turn out too short to pay for the
/// sleep (a mispredict) and decay multiplicatively when idle periods are
/// long, within `[base/4, base*8]`.
#[derive(Debug, Clone)]
pub struct SelfTuningPolicy {
    base: DynamicThresholdPolicy,
    factor: f64,
    reference: SimDuration,
}

impl SelfTuningPolicy {
    /// Creates a self-tuning policy around Lebeck-style base thresholds for
    /// `model`.
    pub fn new(model: &PowerModel) -> Self {
        SelfTuningPolicy {
            base: DynamicThresholdPolicy::lebeck(model),
            factor: 1.0,
            reference: model.break_even(PowerMode::Powerdown),
        }
    }

    /// Current threshold multiplier (starts at 1.0).
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl PowerPolicy for SelfTuningPolicy {
    fn next_step(
        &mut self,
        current: PowerMode,
        idle_start: SimTime,
    ) -> Option<(PowerMode, SimTime)> {
        self.base.scaled(self.factor).next_step(current, idle_start)
    }

    fn observe_idle_period(&mut self, idle: SimDuration) {
        if idle < self.reference {
            // Slept too eagerly: back off.
            self.factor = (self.factor * 2.0).min(8.0);
        } else {
            self.factor = (self.factor * 0.95).max(0.25);
        }
    }

    fn name(&self) -> &'static str {
        "self-tuning"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn dynamic_steps_down_in_order() {
        let mut p = DynamicThresholdPolicy::new(
            Some(SimDuration::from_ns(10)),
            Some(SimDuration::from_ns(100)),
            Some(SimDuration::from_ns(1000)),
        );
        let idle0 = at(500);
        let (m1, t1) = p.next_step(PowerMode::Active, idle0).unwrap();
        assert_eq!((m1, t1), (PowerMode::Standby, at(510)));
        let (m2, t2) = p.next_step(PowerMode::Standby, idle0).unwrap();
        assert_eq!((m2, t2), (PowerMode::Nap, at(600)));
        let (m3, t3) = p.next_step(PowerMode::Nap, idle0).unwrap();
        assert_eq!((m3, t3), (PowerMode::Powerdown, at(1500)));
        assert_eq!(p.next_step(PowerMode::Powerdown, idle0), None);
    }

    #[test]
    fn dynamic_skips_disabled_modes() {
        let mut p = DynamicThresholdPolicy::new(None, Some(SimDuration::from_ns(50)), None);
        let (m, t) = p.next_step(PowerMode::Active, at(0)).unwrap();
        assert_eq!((m, t), (PowerMode::Nap, at(50)));
        assert_eq!(p.next_step(PowerMode::Nap, at(0)), None);
    }

    #[test]
    fn lebeck_defaults_are_ordered_and_standby_is_30_cycles() {
        let model = PowerModel::rdram();
        let p = DynamicThresholdPolicy::lebeck(&model);
        let s = p.threshold(PowerMode::Standby).unwrap();
        let n = p.threshold(PowerMode::Nap).unwrap();
        let d = p.threshold(PowerMode::Powerdown).unwrap();
        assert_eq!(s, SimDuration::from_ps(625 * 30));
        assert!(s <= n && n <= d);
        // Powerdown threshold is microseconds (dominated by the 6 us wake).
        assert!(d > SimDuration::from_us(5));
    }

    #[test]
    fn static_policy_drops_immediately() {
        let mut p = StaticPolicy::new(PowerMode::Nap);
        let (m, t) = p.next_step(PowerMode::Active, at(42)).unwrap();
        assert_eq!((m, t), (PowerMode::Nap, at(42)));
        assert_eq!(p.next_step(PowerMode::Nap, at(42)), None);
        assert_eq!(p.name(), "static-nap");
    }

    #[test]
    #[should_panic(expected = "low-power mode")]
    fn static_active_panics() {
        let _ = StaticPolicy::new(PowerMode::Active);
    }

    #[test]
    fn always_active_never_sleeps() {
        let mut p = AlwaysActive;
        assert_eq!(p.next_step(PowerMode::Active, at(0)), None);
        assert_eq!(p.name(), "always-active");
    }

    #[test]
    fn self_tuning_backs_off_on_short_idle() {
        let model = PowerModel::rdram();
        let mut p = SelfTuningPolicy::new(&model);
        let base_t = p.next_step(PowerMode::Active, at(0)).unwrap().1;
        for _ in 0..3 {
            p.observe_idle_period(SimDuration::from_ns(10)); // way below break-even
        }
        assert!(p.factor() > 1.0);
        let tuned_t = p.next_step(PowerMode::Active, at(0)).unwrap().1;
        assert!(tuned_t > base_t);
        for _ in 0..200 {
            p.observe_idle_period(SimDuration::from_ms(10));
        }
        assert!(p.factor() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn unordered_thresholds_panic() {
        let _ = DynamicThresholdPolicy::new(
            Some(SimDuration::from_ns(100)),
            Some(SimDuration::from_ns(10)),
            None,
        );
    }

    #[test]
    fn scaled_multiplies_thresholds() {
        let p = DynamicThresholdPolicy::new(
            Some(SimDuration::from_ns(10)),
            Some(SimDuration::from_ns(20)),
            Some(SimDuration::from_ns(40)),
        )
        .scaled(3.0);
        assert_eq!(
            p.threshold(PowerMode::Standby),
            Some(SimDuration::from_ns(30))
        );
        assert_eq!(
            p.threshold(PowerMode::Powerdown),
            Some(SimDuration::from_ns(120))
        );
    }

    #[test]
    fn policies_are_object_safe() {
        let model = PowerModel::rdram();
        let mut policies: Vec<Box<dyn PowerPolicy>> = vec![
            Box::new(AlwaysActive),
            Box::new(StaticPolicy::new(PowerMode::Powerdown)),
            Box::new(DynamicThresholdPolicy::lebeck(&model)),
            Box::new(SelfTuningPolicy::new(&model)),
        ];
        for p in &mut policies {
            let _ = p.next_step(PowerMode::Active, at(0));
            p.observe_idle_period(SimDuration::from_us(1));
            assert!(!p.name().is_empty());
        }
    }
}
