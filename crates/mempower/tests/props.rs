//! Property tests for the chip energy state machine.

use mempower::policy::{DynamicThresholdPolicy, PowerPolicy};
use mempower::{Chip, EnergyCategory, PowerMode, PowerModel};
use proptest::prelude::*;
use simcore::{SimDuration, SimTime};

proptest! {
    /// Whatever sequence of serve / sleep / wake / idle operations a chip
    /// goes through, total energy equals the sum over phases of
    /// power x time, and total accounted time equals wall time.
    #[test]
    fn energy_and_time_are_conserved(ops in prop::collection::vec(0u8..4, 1..60)) {
        let model = PowerModel::rdram();
        let mut chip = Chip::new(0, model.clone());
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                // Serve for 4 cycles if possible.
                0 => {
                    if chip.is_free(now) {
                        chip.begin_service(now, SimDuration::from_ps(2500), EnergyCategory::ActiveServing);
                        now = chip.busy_until();
                    }
                }
                // Sleep one step deeper if possible.
                1 => {
                    if let Some(mode) = chip.mode() {
                        if let Some(deeper) = mode.deeper() {
                            if chip.is_free(now) || mode.is_low_power() {
                                let done = chip.begin_sleep(now, deeper);
                                chip.complete_transition(done);
                                now = done;
                            }
                        }
                    }
                }
                // Wake if sleeping.
                2 => {
                    if matches!(chip.mode(), Some(m) if m.is_low_power()) {
                        let done = chip.begin_wake(now);
                        chip.complete_transition(done);
                        now = done;
                    }
                }
                // Idle for a while.
                _ => {
                    now += SimDuration::from_ns(100);
                    chip.sync(now);
                }
            }
        }
        chip.sync(now);
        let e = chip.energy();
        let total_time: SimDuration = EnergyCategory::ALL.iter().map(|&c| e.time(c)).sum();
        prop_assert_eq!(total_time, now.elapsed_since(SimTime::ZERO), "time not conserved");
        // Energy bounded by active power x wall time and at least
        // powerdown x wall time.
        let wall = now.elapsed_since(SimTime::ZERO).as_secs_f64();
        prop_assert!(e.total_mj() <= 300.0 * wall + 1e-12);
        prop_assert!(e.total_mj() >= 3.0 * wall - 1e-12);
    }

    /// The dynamic policy's schedule is monotone: deeper modes fire later,
    /// and scaling thresholds scales fire times.
    #[test]
    fn dynamic_policy_schedule_monotone(scale in 0.1f64..8.0, idle_ns in 0u64..100_000) {
        let model = PowerModel::rdram();
        let mut p = DynamicThresholdPolicy::lebeck(&model).scaled(scale);
        let idle_start = SimTime::ZERO + SimDuration::from_ns(idle_ns);
        let mut mode = PowerMode::Active;
        let mut prev = idle_start;
        while let Some((next, when)) = p.next_step(mode, idle_start) {
            prop_assert!(next > mode, "policy went shallower");
            prop_assert!(when >= prev, "schedule went backwards");
            prev = when;
            mode = next;
        }
        prop_assert_eq!(mode, PowerMode::Powerdown);
    }

    /// Break-even times grow with wake latency and are positive.
    #[test]
    fn break_even_positive_for_any_bandwidth(bw in 5e8f64..1e10) {
        let model = PowerModel::rdram().with_bandwidth(bw);
        for mode in [PowerMode::Standby, PowerMode::Nap, PowerMode::Powerdown] {
            prop_assert!(model.break_even(mode) > SimDuration::ZERO);
        }
    }

    /// Idle classification: with no in-flight DMA, active idle time is all
    /// threshold idle; with in-flight DMA it is all DMA idle.
    #[test]
    fn idle_classification_is_exclusive(toggle in any::<bool>(), span_ns in 1u64..10_000) {
        let mut chip = Chip::new(0, PowerModel::rdram());
        let span = SimDuration::from_ns(span_ns);
        if toggle {
            chip.dma_transfer_started(SimTime::ZERO);
        }
        chip.sync(SimTime::ZERO + span);
        let e = chip.energy();
        if toggle {
            prop_assert_eq!(e.time(EnergyCategory::ActiveIdleDma), span);
            prop_assert_eq!(e.time(EnergyCategory::ActiveIdleThreshold), SimDuration::ZERO);
        } else {
            prop_assert_eq!(e.time(EnergyCategory::ActiveIdleThreshold), span);
            prop_assert_eq!(e.time(EnergyCategory::ActiveIdleDma), SimDuration::ZERO);
        }
    }
}
