//! Golden-file snapshot of the Prometheus text exposition.
//!
//! The rendered `/metrics` payload must be byte-stable for a fixed
//! metric population: dashboards and the CI smoke scrape both parse it,
//! and any accidental reordering or format drift should fail loudly
//! here rather than in a downstream consumer.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p simcore --test prometheus
//! ```

use simcore::obs::{render_prometheus, MetricsRegistry};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");

/// A deliberately generic metric population (no `dmamem.*` keys — this
/// exercises the renderer, not the simulator's key tables): mixed
/// registration order, a name needing sanitization, a help string
/// needing escaping, and a histogram spanning several log₂ buckets.
fn sample() -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    reg.counter("zz.last").add(3);
    reg.counter("probe.requests_total").add(42);
    reg.counter("9starts.with_digit").inc();
    reg.gauge("probe.level").set(0.5);
    reg.gauge("probe.back\\slash\nnewline").set(-2.0);
    let h = reg.histogram("probe.latency_ns");
    for v in [0u64, 1, 3, 3, 900, 1024] {
        h.record(v);
    }
    reg
}

#[test]
fn prometheus_rendering_matches_golden_file() {
    let rendered = render_prometheus(&sample().snapshot());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("read golden file (run with UPDATE_GOLDEN=1 to create it)");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from tests/golden/metrics.prom; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn rendered_exposition_is_structurally_valid() {
    let rendered = render_prometheus(&sample().snapshot());
    // Every non-comment line is `name{labels} value` or `name value`, and
    // every sample name was announced by a preceding # TYPE line.
    let mut announced: Vec<String> = Vec::new();
    for line in rendered.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().unwrap();
            announced.push(name.to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let name = line
            .split(['{', ' '])
            .next()
            .expect("sample name");
        let known = announced.iter().any(|a| {
            name == a
                || name
                    .strip_prefix(a.as_str())
                    .is_some_and(|s| s.is_empty() || s == "_bucket" || s == "_sum" || s == "_count")
        });
        assert!(known, "sample {name:?} lacks a # TYPE announcement: {line}");
        assert!(
            line.rsplit(' ').next().unwrap().parse::<f64>().is_ok(),
            "sample value is not numeric: {line}"
        );
    }
    // Histogram buckets are cumulative and end at +Inf == _count.
    let buckets: Vec<u64> = rendered
        .lines()
        .filter(|l| l.starts_with("probe_latency_ns_bucket{le=") && !l.contains("+Inf"))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    let inf: u64 = rendered
        .lines()
        .find(|l| l.contains(r#"le="+Inf""#))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("+Inf bucket");
    let count: u64 = rendered
        .lines()
        .find(|l| l.starts_with("probe_latency_ns_count "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("_count sample");
    assert_eq!(inf, count, "+Inf bucket must equal _count");
    assert_eq!(count, 6);
}
