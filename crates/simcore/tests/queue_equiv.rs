//! Heap/wheel equivalence: the calendar-wheel [`EventQueue`] and the
//! reference [`HeapQueue`] are driven with identical random
//! schedule/pop interleavings — including same-time bursts, past-time
//! schedules, and far-future (overflow-horizon) times — and must
//! produce identical pop sequences, peek keys, and lifetime stats.
//!
//! This is the load-bearing test for the queue swap: `(time, seq)` is a
//! total order, so any correct priority structure pops the same
//! sequence; here we check the wheel actually is one.

use proptest::prelude::*;
use simcore::{EventQueue, HeapQueue, SimDuration, SimTime};

/// One step of a driver script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule `count` events at `now + offset_ps` (a burst shares one
    /// timestamp, exercising FIFO tie-breaks).
    Schedule { offset_ps: u64, count: u8 },
    /// Schedule one event `back_ps` before the last popped time (a
    /// past-time schedule once anything has popped).
    SchedulePast { back_ps: u64 },
    /// Pop up to `count` events.
    Pop { count: u8 },
    /// Compare peeked keys without popping.
    Peek,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, 0u64..100_000_000, 1u8..6).prop_map(|(kind, raw, count)| match kind {
        // Offsets span sub-bucket (ps) to beyond the wheel horizon
        // (the wheel's window is ~8.4 us; 100ms >> horizon).
        0 => Op::Schedule {
            offset_ps: raw,
            count,
        },
        1 => Op::SchedulePast {
            back_ps: raw % 1_000_000,
        },
        2 => Op::Pop { count },
        _ => Op::Peek,
    })
}

/// Drives both queues with the same script; panics (via prop_assert in
/// the caller) on the first divergence, returning the pop log length.
fn drive(ops: &[Op]) -> Result<usize, TestCaseError> {
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut heap: HeapQueue<u32> = HeapQueue::new();
    let mut now = SimTime::ZERO;
    let mut payload = 0u32;
    let mut pops = 0usize;
    for op in ops {
        match *op {
            Op::Schedule { offset_ps, count } => {
                let t = now + SimDuration::from_ps(offset_ps);
                for _ in 0..count {
                    wheel.schedule(t, payload);
                    heap.schedule(t, payload);
                    payload += 1;
                }
            }
            Op::SchedulePast { back_ps } => {
                let t = SimTime::ZERO + SimDuration::from_ps(now.as_ps().saturating_sub(back_ps));
                wheel.schedule(t, payload);
                heap.schedule(t, payload);
                payload += 1;
            }
            Op::Pop { count } => {
                for _ in 0..count {
                    let w = wheel.pop();
                    let h = heap.pop();
                    prop_assert_eq!(w, h, "pop #{} diverged", pops);
                    match w {
                        Some((t, _)) => {
                            // Popped times must never go backwards past
                            // the true minimum: the heap is the oracle,
                            // equality above already guarantees this.
                            now = now.max(t);
                            pops += 1;
                        }
                        None => break,
                    }
                }
            }
            Op::Peek => {
                prop_assert_eq!(wheel.peek_key(), heap.peek_key());
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            }
        }
        prop_assert_eq!(wheel.len(), heap.len());
        prop_assert_eq!(wheel.is_empty(), heap.is_empty());
    }
    // Drain both to the end: full pop sequences must match.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        prop_assert_eq!(w, h, "drain pop #{} diverged", pops);
        if w.is_none() {
            break;
        }
        pops += 1;
    }
    prop_assert_eq!(wheel.stats(), heap.stats(), "lifetime stats diverged");
    prop_assert_eq!(wheel.window_max_depth(), heap.window_max_depth());
    Ok(pops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary interleavings of schedules (bursts, past times,
    /// overflow-horizon offsets), pops, and peeks behave identically.
    #[test]
    fn wheel_matches_heap_on_random_interleavings(ops in prop::collection::vec(op_strategy(), 1..120)) {
        drive(&ops)?;
    }

    /// A pure same-time burst pops in exact scheduling (FIFO) order on
    /// both queues.
    #[test]
    fn same_time_bursts_stay_fifo(count in 1usize..400, offset_ps in 0u64..10_000_000) {
        let mut wheel: EventQueue<usize> = EventQueue::new();
        let mut heap: HeapQueue<usize> = HeapQueue::new();
        let t = SimTime::ZERO + SimDuration::from_ps(offset_ps);
        for i in 0..count {
            wheel.schedule(t, i);
            heap.schedule(t, i);
        }
        for i in 0..count {
            let w = wheel.pop().unwrap();
            prop_assert_eq!(w, heap.pop().unwrap());
            prop_assert_eq!(w.1, i, "burst must pop in schedule order");
        }
        prop_assert!(wheel.pop().is_none() && heap.pop().is_none());
    }

    /// Clearing mid-script keeps the two queues in lockstep (lifetime
    /// stats kept, depth window reset — on both).
    #[test]
    fn clear_keeps_queues_in_lockstep(
        before in prop::collection::vec(op_strategy(), 1..40),
        after in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapQueue<u32> = HeapQueue::new();
        let mut payload = 0u32;
        let mut run = |ops: &[Op], wheel: &mut EventQueue<u32>, heap: &mut HeapQueue<u32>| -> Result<(), TestCaseError> {
            let mut now = SimTime::ZERO;
            for op in ops {
                match *op {
                    Op::Schedule { offset_ps, count } => {
                        let t = now + SimDuration::from_ps(offset_ps);
                        for _ in 0..count {
                            wheel.schedule(t, payload);
                            heap.schedule(t, payload);
                            payload += 1;
                        }
                    }
                    Op::SchedulePast { .. } | Op::Peek => {
                        prop_assert_eq!(wheel.peek_key(), heap.peek_key());
                    }
                    Op::Pop { count } => {
                        for _ in 0..count {
                            let w = wheel.pop();
                            prop_assert_eq!(w, heap.pop());
                            if let Some((t, _)) = w {
                                now = now.max(t);
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
            Ok(())
        };
        run(&before, &mut wheel, &mut heap)?;
        wheel.clear();
        heap.clear();
        prop_assert_eq!(wheel.len(), 0);
        prop_assert_eq!(wheel.window_max_depth(), 0);
        prop_assert_eq!(heap.window_max_depth(), 0);
        prop_assert_eq!(wheel.stats(), heap.stats());
        run(&after, &mut wheel, &mut heap)?;
        prop_assert_eq!(wheel.stats(), heap.stats());
        prop_assert_eq!(wheel.window_max_depth(), heap.window_max_depth());
    }
}
