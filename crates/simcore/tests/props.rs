//! Property tests for the simulation substrate.

use proptest::prelude::*;
use simcore::dist::{Empirical, PoissonProcess, Zipf};
use simcore::rng::DetRng;
use simcore::stats::{OnlineStats, SampleSet};
use simcore::{EventQueue, SimDuration, SimTime};

proptest! {
    /// Events always pop in nondecreasing time order, FIFO among ties.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ps(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(id > lid, "FIFO violated among ties");
                }
            }
            last = Some((t, id));
        }
    }

    /// Duration arithmetic is consistent: (a + b) - b == a; ratio inverts
    /// multiplication.
    #[test]
    fn duration_arithmetic_roundtrips(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = SimDuration::from_ps(a);
        let db = SimDuration::from_ps(b);
        prop_assert_eq!((da + db) - db, da);
        prop_assert_eq!(da.saturating_sub(db) + db.saturating_sub(da), if a > b { SimDuration::from_ps(a - b) } else { SimDuration::from_ps(b - a) });
    }

    /// Zipf CDF is monotone, ends at 1, and pmf sums to the CDF.
    #[test]
    fn zipf_cdf_is_a_distribution(n in 1usize..500, alpha in 0.0f64..2.0) {
        let z = Zipf::new(n, alpha);
        let mut acc = 0.0;
        let mut prev = 0.0;
        for rank in 0..n {
            let c = z.cdf(rank);
            prop_assert!(c >= prev - 1e-12);
            acc += z.pmf(rank);
            prop_assert!((acc - c).abs() < 1e-9);
            prev = c;
        }
        prop_assert!((z.cdf(n - 1) - 1.0).abs() < 1e-9);
    }

    /// Zipf samples are valid ranks and deterministic per seed.
    #[test]
    fn zipf_samples_in_range(n in 1usize..1000, seed in 0u64..500) {
        let z = Zipf::new(n, 1.0);
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..100 {
            let s = z.sample(&mut a);
            prop_assert!(s < n);
            prop_assert_eq!(s, z.sample(&mut b));
        }
    }

    /// Poisson arrivals are strictly nondecreasing for any rate.
    #[test]
    fn poisson_monotone(rate in 1.0f64..1e7, seed in 0u64..500) {
        let mut p = PoissonProcess::new(rate);
        let mut rng = DetRng::new(seed);
        let mut prev = SimTime::ZERO;
        for _ in 0..200 {
            let t = p.next_arrival(&mut rng);
            prop_assert!(t >= prev);
            prev = t;
        }
    }

    /// Empirical sampling never returns a zero-weight outcome.
    #[test]
    fn empirical_respects_zero_weights(
        weights in prop::collection::vec(0.0f64..10.0, 2..20),
        seed in 0u64..100,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = Empirical::from_weights(&weights);
        let mut rng = DetRng::new(seed);
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            prop_assert!(weights[s] > 0.0, "sampled zero-weight outcome {s}");
        }
    }

    /// Welford matches the naive two-pass computation.
    #[test]
    fn online_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.population_variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    /// SampleSet quantiles are actual elements and ordered in q.
    #[test]
    fn quantiles_are_order_statistics(xs in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut s = SampleSet::new();
        for &x in &xs {
            s.record(x);
        }
        let q25 = s.quantile(0.25).unwrap();
        let q75 = s.quantile(0.75).unwrap();
        prop_assert!(q25 <= q75);
        prop_assert!(xs.contains(&q25) && xs.contains(&q75));
    }

    /// Shuffle is always a permutation.
    #[test]
    fn shuffle_permutes(n in 0usize..200, seed in 0u64..500) {
        let mut v: Vec<usize> = (0..n).collect();
        DetRng::new(seed).shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
