//! Samplers for the distributions the paper's workloads use.
//!
//! * [`Zipf`] — page-popularity skew (the paper's synthetic traces use
//!   Zipf with alpha = 1).
//! * [`PoissonProcess`] — DMA-transfer and processor-access arrival streams.
//! * [`Empirical`] — sampling from an arbitrary weight table, used by the
//!   OLTP generators to match a measured popularity CDF such as Figure 4.

use crate::rng::DetRng;
use crate::{SimDuration, SimTime};

/// A Zipf(alpha) distribution over ranks `0..n` (rank 0 most popular).
///
/// Sampling is O(log n) via a precomputed cumulative table; construction is
/// O(n). For the working-set sizes in this workspace (≤ a few hundred
/// thousand pages) this is exact and fast.
///
/// # Example
///
/// ```
/// use simcore::dist::Zipf;
/// use simcore::rng::DetRng;
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = DetRng::new(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or not finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid alpha: {alpha}");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(alpha);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.uniform();
        // partition_point returns the first index whose cumulative >= u.
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }

    /// Probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn pmf(&self, rank: usize) -> f64 {
        let hi = self.cumulative[rank];
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        hi - lo
    }

    /// Cumulative probability of ranks `0..=rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn cdf(&self, rank: usize) -> f64 {
        self.cumulative[rank]
    }
}

/// A Poisson arrival process generating successive event times.
///
/// # Example
///
/// ```
/// use simcore::dist::PoissonProcess;
/// use simcore::rng::DetRng;
/// use simcore::SimTime;
///
/// // 100 arrivals per millisecond on average.
/// let mut p = PoissonProcess::new(100.0e3);
/// let mut rng = DetRng::new(5);
/// let t1 = p.next_arrival(&mut rng);
/// let t2 = p.next_arrival(&mut rng);
/// assert!(t2 > t1 && t1 > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    mean_gap_secs: f64,
    now: SimTime,
}

impl PoissonProcess {
    /// Creates a process with the given average rate in events per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not strictly positive and finite.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "invalid rate: {rate_per_sec}"
        );
        PoissonProcess {
            mean_gap_secs: 1.0 / rate_per_sec,
            now: SimTime::ZERO,
        }
    }

    /// Average event rate in events per second.
    pub fn rate_per_sec(&self) -> f64 {
        1.0 / self.mean_gap_secs
    }

    /// Advances the process and returns the next arrival instant.
    pub fn next_arrival(&mut self, rng: &mut DetRng) -> SimTime {
        let gap = rng.exponential(self.mean_gap_secs);
        self.now += SimDuration::from_secs_f64(gap);
        self.now
    }

    /// The time of the most recent arrival (simulation start if none yet).
    pub fn last_arrival(&self) -> SimTime {
        self.now
    }
}

/// An empirical discrete distribution over `0..n`, built from arbitrary
/// nonnegative weights.
///
/// # Example
///
/// ```
/// use simcore::dist::Empirical;
/// use simcore::rng::DetRng;
///
/// let d = Empirical::from_weights(&[3.0, 1.0]);
/// let mut rng = DetRng::new(9);
/// let zeros = (0..1000).filter(|_| d.sample(&mut rng) == 0).count();
/// assert!(zeros > 650 && zeros < 850);
/// ```
#[derive(Debug, Clone)]
pub struct Empirical {
    cumulative: Vec<f64>,
}

impl Empirical {
    /// Builds the distribution from weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight table");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "invalid weight: {w}");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "weights sum to zero");
        for c in &mut cumulative {
            *c /= total;
        }
        Empirical { cumulative }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there are no outcomes (never; construction forbids it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws an outcome index.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.uniform();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_alpha1_is_skewed() {
        let zipf = Zipf::new(10_000, 1.0);
        // With alpha=1 over 10k ranks, the top 1% of ranks should hold a
        // disproportionate share (harmonic sums: H(100)/H(10000) ~ 0.53).
        let share = zipf.cdf(99);
        assert!(share > 0.45 && share < 0.60, "share {share}");
    }

    #[test]
    fn zipf_alpha0_is_uniform() {
        let zipf = Zipf::new(100, 0.0);
        for rank in 0..100 {
            assert!((zipf.pmf(rank) - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let zipf = Zipf::new(50, 1.0);
        let mut rng = DetRng::new(42);
        let n = 100_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let observed0 = counts[0] as f64 / n as f64;
        assert!((observed0 - zipf.pmf(0)).abs() < 0.01);
        // Monotone nonincreasing in expectation: rank 0 >> rank 49.
        assert!(counts[0] > counts[49] * 5);
    }

    #[test]
    fn zipf_cdf_ends_at_one() {
        let zipf = Zipf::new(7, 1.0);
        assert!((zipf.cdf(6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_rate_is_close() {
        let mut p = PoissonProcess::new(1000.0); // 1000/s
        let mut rng = DetRng::new(8);
        let mut last = SimTime::ZERO;
        let n = 10_000;
        for _ in 0..n {
            last = p.next_arrival(&mut rng);
        }
        let elapsed = last.as_secs_f64();
        let rate = n as f64 / elapsed;
        assert!((rate - 1000.0).abs() < 50.0, "rate {rate}");
    }

    #[test]
    fn poisson_arrivals_strictly_ordered() {
        let mut p = PoissonProcess::new(1e6);
        let mut rng = DetRng::new(3);
        let mut prev = SimTime::ZERO;
        for _ in 0..1000 {
            let t = p.next_arrival(&mut rng);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn empirical_respects_weights() {
        let d = Empirical::from_weights(&[0.0, 2.0, 0.0, 2.0]);
        let mut rng = DetRng::new(4);
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn empirical_zero_weights_panic() {
        let _ = Empirical::from_weights(&[0.0, 0.0]);
    }
}
