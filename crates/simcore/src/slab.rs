//! Index-stable arena with free-list reuse.
//!
//! Long simulations allocate and retire millions of short-lived records
//! (DMA transfers, in-flight requests). A [`Slab`] keeps them in one
//! growable vector: [`Slab::insert`] returns a dense `u32` key that stays
//! valid until [`Slab::remove`], and removed slots go on a free list so
//! steady-state churn allocates nothing. Keys are plain indices — cheap
//! to store inside event payloads and to hand across module boundaries
//! (e.g. the bus model stamps each transfer's slab slot into the requests
//! it emits, so the engine resolves request → transfer record with one
//! vector index instead of a map lookup).
//!
//! Invariants:
//!
//! * A key returned by `insert` refers to the same value until `remove`d.
//! * `remove` is the only way to free a slot; freed slots are reused in
//!   LIFO order (newest-freed first), keeping the occupied prefix dense
//!   under steady-state churn.
//! * Indexing a vacant slot is a logic error and panics — the slab never
//!   silently resurrects freed records. (The workspace's simulators only
//!   index with live keys they minted; stale-key *detection* — e.g.
//!   generation counters — is deliberately out of scope because keys are
//!   engine-internal and never cross a trust boundary.)
//!
//! Determinism: key assignment depends only on the insert/remove call
//! sequence, so slab keys are as replay-stable as the event order that
//! produced them.
//!
//! # Example
//!
//! ```
//! use simcore::Slab;
//!
//! let mut slab: Slab<&'static str> = Slab::new();
//! let a = slab.insert("alpha");
//! let b = slab.insert("beta");
//! assert_eq!(slab[a], "alpha");
//! assert_eq!(slab.remove(b), "beta");
//! let c = slab.insert("gamma"); // reuses beta's slot
//! assert_eq!(c, b);
//! assert_eq!(slab.len(), 2);
//! ```

use std::ops::{Index, IndexMut};

enum Slot<T> {
    /// Occupied slot holding a live record.
    Full(T),
    /// Vacant slot; the payload is the next free slot index, or
    /// `u32::MAX` for the end of the free list.
    Free(u32),
}

/// End-of-free-list sentinel.
const NIL: u32 = u32::MAX;

/// A growable arena of `T` with stable `u32` keys and free-list reuse.
///
/// See the [module docs](self) for invariants and an example.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: u32,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Creates an empty slab with room for `cap` records before growing.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            len: 0,
        }
    }

    /// Stores `value` and returns its key. Reuses the most recently
    /// freed slot if one exists; otherwise appends.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if self.free_head != NIL {
            let key = self.free_head;
            let slot = &mut self.slots[key as usize];
            match *slot {
                Slot::Free(next) => {
                    self.free_head = next;
                    *slot = Slot::Full(value);
                    key
                }
                // simlint::allow(panic-path, "free-list links are only ever written to point at vacant slots; corruption here is memory-unsafe to continue from")
                Slot::Full(_) => unreachable!("free list points at an occupied slot"),
            }
        } else {
            let key = self.slots.len() as u32;
            assert!(key != NIL, "slab exceeded u32 key space");
            self.slots.push(Slot::Full(value));
            key
        }
    }

    /// Removes and returns the record at `key`, freeing its slot.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range or already vacant.
    pub fn remove(&mut self, key: u32) -> T {
        let slot = &mut self.slots[key as usize];
        match std::mem::replace(slot, Slot::Free(self.free_head)) {
            Slot::Full(value) => {
                self.free_head = key;
                self.len -= 1;
                value
            }
            Slot::Free(next) => {
                // Undo the replace so a caught panic leaves the slab intact.
                *slot = Slot::Free(next);
                // simlint::allow(panic-path, "double-remove is a use-after-free analogue; continuing would silently corrupt the arena")
                panic!("slab remove of vacant key {key}");
            }
        }
    }

    /// A shared reference to the record at `key`, or `None` if vacant or
    /// out of range.
    pub fn get(&self, key: u32) -> Option<&T> {
        match self.slots.get(key as usize) {
            Some(Slot::Full(value)) => Some(value),
            _ => None,
        }
    }

    /// A mutable reference to the record at `key`, or `None` if vacant
    /// or out of range.
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        match self.slots.get_mut(key as usize) {
            Some(Slot::Full(value)) => Some(value),
            _ => None,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (live + free): the arena's footprint.
    pub fn capacity_used(&self) -> usize {
        self.slots.len()
    }

    /// Drops all records and resets the free list. Slot storage is kept,
    /// so a cleared slab re-fills without allocating — but previously
    /// issued keys are invalidated and key assignment restarts from 0.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
        self.len = 0;
    }
}

impl<T> Index<u32> for Slab<T> {
    type Output = T;

    fn index(&self, key: u32) -> &T {
        match &self.slots[key as usize] {
            Slot::Full(value) => value,
            // simlint::allow(panic-path, "Index contract mirrors Vec: a vacant key is a dangling handle, aborting beats aliasing")
            Slot::Free(_) => panic!("slab index of vacant key {key}"),
        }
    }
}

impl<T> IndexMut<u32> for Slab<T> {
    fn index_mut(&mut self, key: u32) -> &mut T {
        match &mut self.slots[key as usize] {
            Slot::Full(value) => value,
            // simlint::allow(panic-path, "Index contract mirrors Vec: a vacant key is a dangling handle, aborting beats aliasing")
            Slot::Free(_) => panic!("slab index of vacant key {key}"),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len)
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab[a], 10);
        assert_eq!(*slab.get(b).unwrap(), 20);
        slab[a] = 11;
        assert_eq!(slab.remove(a), 11);
        assert_eq!(slab.len(), 1);
        assert!(slab.get(a).is_none());
        assert_eq!(slab[b], 20);
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut slab = Slab::new();
        let keys: Vec<u32> = (0..4).map(|i| slab.insert(i)).collect();
        assert_eq!(keys, [0, 1, 2, 3]);
        slab.remove(keys[1]);
        slab.remove(keys[2]);
        assert_eq!(slab.insert(92), keys[2], "newest-freed slot first");
        assert_eq!(slab.insert(91), keys[1]);
        assert_eq!(slab.insert(94), 4, "free list empty: append");
        assert_eq!(slab.capacity_used(), 5);
    }

    #[test]
    fn churn_does_not_grow_the_arena() {
        let mut slab = Slab::with_capacity(2);
        for round in 0..1000u32 {
            let k = slab.insert(round);
            assert_eq!(slab.remove(k), round);
        }
        assert_eq!(slab.capacity_used(), 1, "steady churn reuses one slot");
        assert!(slab.is_empty());
    }

    #[test]
    fn keys_are_deterministic_for_a_call_sequence() {
        let run = || {
            let mut slab = Slab::new();
            let a = slab.insert("a");
            let b = slab.insert("b");
            slab.remove(a);
            let c = slab.insert("c");
            (a, b, c)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_resets_keys() {
        let mut slab = Slab::new();
        slab.insert(1);
        slab.insert(2);
        slab.clear();
        assert!(slab.is_empty());
        assert_eq!(slab.insert(3), 0);
    }

    #[test]
    #[should_panic(expected = "vacant key")]
    fn indexing_a_freed_key_panics() {
        let mut slab = Slab::new();
        let k = slab.insert(5);
        slab.remove(k);
        let _ = slab[k];
    }

    #[test]
    #[should_panic(expected = "vacant key")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let k = slab.insert(5);
        slab.remove(k);
        slab.remove(k);
    }
}
