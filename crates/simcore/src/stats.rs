//! Online statistics for energy and response-time accounting.

use std::fmt;

use crate::SimDuration;

/// Numerically stable online mean / variance (Welford's algorithm).
///
/// # Example
///
/// ```
/// use simcore::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation; 0 when empty.
    pub fn stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4}",
            self.count,
            self.mean(),
            self.stddev()
        )
    }
}

/// Accumulates [`SimDuration`] observations (thin wrapper over
/// [`OnlineStats`] in nanoseconds).
///
/// # Example
///
/// ```
/// use simcore::stats::DurationStats;
/// use simcore::SimDuration;
///
/// let mut s = DurationStats::new();
/// s.record(SimDuration::from_ns(10));
/// s.record(SimDuration::from_ns(20));
/// assert_eq!(s.mean(), SimDuration::from_ns(15));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DurationStats {
    inner: OnlineStats,
}

impl DurationStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        DurationStats {
            inner: OnlineStats::new(),
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.inner.record(d.as_ns_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Mean duration (rounded to a picosecond).
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_ps((self.inner.mean() * 1e3).round() as u64)
    }

    /// Mean in nanoseconds as a float.
    pub fn mean_ns(&self) -> f64 {
        self.inner.mean()
    }

    /// Largest observation.
    pub fn max(&self) -> Option<SimDuration> {
        self.inner
            .max()
            .map(|ns| SimDuration::from_ps((ns * 1e3).round() as u64))
    }

    /// Access to the raw accumulator (nanosecond units).
    pub fn raw(&self) -> &OnlineStats {
        &self.inner
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
///
/// # Example
///
/// ```
/// use simcore::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.record(0.5);
/// h.record(9.5);
/// h.record(42.0); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(9), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n` equal buckets.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "zero buckets");
        assert!(lo < hi, "empty range");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Approximate quantile (0..=1) using linear interpolation inside the
    /// containing bucket. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if seen + c >= target {
                let inside = (target - seen) as f64 / c.max(1) as f64;
                return Some(self.lo + w * (i as f64 + inside));
            }
            seen += c;
        }
        Some(self.hi)
    }
}

/// An exact-quantile reservoir that keeps every sample (the experiments in
/// this workspace record at most a few million response times; exactness is
/// worth the memory).
///
/// # Example
///
/// ```
/// use simcore::stats::SampleSet;
///
/// let mut s = SampleSet::new();
/// for x in 1..=100 {
///     s.record(x as f64);
/// }
/// assert_eq!(s.quantile(0.5), Some(50.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        SampleSet {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Exact empirical quantile (nearest-rank); `None` when empty.
    ///
    /// A stray NaN sample must not abort a multi-hour sweep, so ordering
    /// uses [`f64::total_cmp`] (NaNs sort after every number and surface
    /// in the top quantiles instead of panicking).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_variance() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.population_variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn duration_stats_mean() {
        let mut s = DurationStats::new();
        s.record(SimDuration::from_ns(10));
        s.record(SimDuration::from_ns(30));
        assert_eq!(s.mean(), SimDuration::from_ns(20));
        assert_eq!(s.max(), Some(SimDuration::from_ns(30)));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for x in 0..100 {
            h.record(x as f64);
        }
        for i in 0..10 {
            assert_eq!(h.bucket_count(i), 10);
        }
        h.record(-1.0);
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 102);
    }

    #[test]
    fn histogram_quantile_approx() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for x in 0..1000 {
            h.record((x % 100) as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 2.0, "median {median}");
        assert!(Histogram::new(0.0, 1.0, 1).quantile(0.5).is_none());
    }

    #[test]
    fn sampleset_exact_quantiles() {
        let mut s = SampleSet::new();
        for x in (1..=1000).rev() {
            s.record(x as f64);
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(1000.0));
        assert_eq!(s.quantile(0.9), Some(900.0));
        assert_eq!(s.mean(), Some(500.5));
    }

    #[test]
    fn sampleset_interleaved_record_quantile() {
        let mut s = SampleSet::new();
        s.record(5.0);
        assert_eq!(s.quantile(0.5), Some(5.0));
        s.record(1.0);
        assert_eq!(s.quantile(0.0), Some(1.0));
    }

    #[test]
    fn sampleset_tolerates_nan_samples() {
        // A stray NaN must not panic the sort; it sorts last (total order)
        // and the finite quantiles stay exact.
        let mut s = SampleSet::new();
        for x in [3.0, f64::NAN, 1.0, 2.0] {
            s.record(x);
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(0.5), Some(2.0));
        assert!(s.quantile(1.0).unwrap().is_nan());
    }
}
