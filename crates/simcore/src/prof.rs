//! Engine self-profiling: deterministic hot-path counters and optional
//! wall-clock phase timers.
//!
//! The obs/tracing stack watches the *simulated* system; this module
//! watches the *simulator*. It separates two kinds of measurement:
//!
//! * **Deterministic counters** — events dispatched, calendar heap
//!   pushes/pops, max heap depth, per-phase call counts, allocation
//!   totals. These derive purely from simulated behavior, so they are
//!   bit-identical across thread counts, seeds-replayed runs, and hosts;
//!   a perf-regression gate can fail hard on any drift.
//! * **Wall-clock timings** — per-phase elapsed nanoseconds from
//!   [`Stopwatch`]. These vary by host and load; reports may only warn
//!   on them.
//!
//! The counters are plain integer bumps on paths that already touch the
//! same cache lines, so they stay on unconditionally; only the
//! wall-clock reads are gated (branch-on-`None`) behind an explicit
//! opt-in, and engines prove neutrality with byte-identical-output
//! tests (see `dmamem/tests/prof_determinism.rs`).

use std::time::Instant;

/// Hot-path phases of one simulation run, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Plain event dispatch: traffic arrival, bus ticks, service
    /// completions, CPU-gap wakeups.
    Dispatch,
    /// Controller policy work: per-chip policy timers, epoch ticks, and
    /// layout (PL) intervals.
    Policy,
    /// Chip power-mode transition completions.
    Transition,
    /// End-of-run stat collection and result assembly.
    Stats,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 4] = [
        Phase::Dispatch,
        Phase::Policy,
        Phase::Transition,
        Phase::Stats,
    ];

    /// Stable lowercase label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::Policy => "policy",
            Phase::Transition => "transition",
            Phase::Stats => "stats",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Accounting for one phase: a deterministic call count plus optional
/// wall-clock nanoseconds (zero unless timing was armed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Times the phase ran (deterministic).
    pub calls: u64,
    /// Total wall-clock nanoseconds spent in the phase (host-dependent;
    /// zero when timing is disabled).
    pub ns: u64,
}

/// Per-[`Phase`] accounting for one run (or a merged aggregate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    stats: [PhaseStat; 4],
}

impl PhaseProfile {
    /// Counts one call of `phase` (deterministic side).
    pub fn note(&mut self, phase: Phase) {
        self.stats[phase.index()].calls += 1;
    }

    /// Counts `n` calls of `phase` at once (deterministic side).
    ///
    /// Engines that process a run of identical events analytically (for
    /// example a virtual-time fast-forward across an idle gap covering
    /// `n` periodic ticks) use this so their call counts stay identical
    /// to an engine that dispatched every tick individually.
    pub fn note_n(&mut self, phase: Phase, n: u64) {
        self.stats[phase.index()].calls += n;
    }

    /// Adds wall-clock nanoseconds to `phase` (timing side).
    pub fn add_ns(&mut self, phase: Phase, ns: u64) {
        self.stats[phase.index()].ns += ns;
    }

    /// The accumulated stat for `phase`.
    pub fn get(&self, phase: Phase) -> PhaseStat {
        self.stats[phase.index()]
    }

    /// Total calls across all phases.
    pub fn total_calls(&self) -> u64 {
        self.stats.iter().map(|s| s.calls).sum()
    }

    /// Total wall-clock nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.stats.iter().map(|s| s.ns).sum()
    }

    /// Accumulates another profile into this one.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (mine, theirs) in self.stats.iter_mut().zip(other.stats.iter()) {
            mine.calls += theirs.calls;
            mine.ns += theirs.ns;
        }
    }
}

/// A wall-clock stopwatch for phase timing — the only wall-clock read
/// in the profiling layer, so engines can keep the read behind a
/// branch-on-`None` and stay byte-identical when profiling is off.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch.
    pub fn start() -> Stopwatch {
        Stopwatch {
            // simlint::allow(wall-clock, "host-side profiling stopwatch: feeds only EngineProfile phase ns, which reports mark nondeterministic and gates never fail on")
            started: Instant::now(),
        }
    }

    /// Elapsed wall-clock nanoseconds since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// Lifetime counters maintained by [`crate::EventQueue`] (always on —
/// they are integer bumps on lines that already touch the heap).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events scheduled over the queue's lifetime.
    pub pushes: u64,
    /// Events popped over the queue's lifetime.
    pub pops: u64,
    /// High-water mark of pending events (calendar depth).
    pub max_depth: u64,
}

/// One run's engine self-profile; also the unit of aggregation across
/// a sweep (see [`EngineProfile::merge`]).
///
/// Everything except [`phases`](Self::phases) `ns` totals and
/// [`timed`](Self::timed) is deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Events dispatched by the run loop (excludes a final popped event
    /// cut off by the horizon check — see `heap_pops` for raw pops).
    pub events: u64,
    /// Calendar heap pushes.
    pub heap_pushes: u64,
    /// Calendar heap pops.
    pub heap_pops: u64,
    /// Max calendar depth reached (max over runs when merged).
    pub max_heap_depth: u64,
    /// DMA transfers allocated.
    pub transfers: u64,
    /// Chip-level DMA-memory requests allocated.
    pub requests: u64,
    /// Whether wall-clock phase timing was armed for this run (any run,
    /// when merged).
    pub timed: bool,
    /// Per-phase call counts and (if `timed`) wall-clock ns.
    pub phases: PhaseProfile,
}

impl EngineProfile {
    /// Accumulates another run's profile into this aggregate: counters
    /// sum, `max_heap_depth` takes the max, `timed` ORs.
    pub fn merge(&mut self, other: &EngineProfile) {
        self.events += other.events;
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        self.max_heap_depth = self.max_heap_depth.max(other.max_heap_depth);
        self.transfers += other.transfers;
        self.requests += other.requests;
        self.timed |= other.timed;
        self.phases.merge(&other.phases);
    }

    /// Dispatch throughput over a measured wall-clock interval.
    pub fn events_per_sec(&self, wall_secs: f64) -> f64 {
        if wall_secs > 0.0 {
            self.events as f64 / wall_secs
        } else {
            0.0
        }
    }

    /// True when the *deterministic* fields match — ignores wall-clock
    /// phase ns and the `timed` flag, so a profiled run compares equal
    /// to an unprofiled one.
    pub fn deterministic_eq(&self, other: &EngineProfile) -> bool {
        self.events == other.events
            && self.heap_pushes == other.heap_pushes
            && self.heap_pops == other.heap_pops
            && self.max_heap_depth == other.max_heap_depth
            && self.transfers == other.transfers
            && self.requests == other.requests
            && Phase::ALL
                .iter()
                .all(|&p| self.phases.get(p).calls == other.phases.get(p).calls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_profile_counts_and_merges() {
        let mut a = PhaseProfile::default();
        a.note(Phase::Dispatch);
        a.note(Phase::Dispatch);
        a.note(Phase::Policy);
        a.add_ns(Phase::Policy, 40);
        let mut b = PhaseProfile::default();
        b.note(Phase::Policy);
        b.add_ns(Phase::Policy, 2);
        a.merge(&b);
        assert_eq!(a.get(Phase::Dispatch).calls, 2);
        assert_eq!(a.get(Phase::Policy), PhaseStat { calls: 2, ns: 42 });
        assert_eq!(a.total_calls(), 4);
        assert_eq!(a.total_ns(), 42);
    }

    #[test]
    fn phase_labels_are_stable() {
        let labels: Vec<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["dispatch", "policy", "transition", "stats"]);
    }

    #[test]
    fn stopwatch_measures_nonzero_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(sw.elapsed_ns() > 0);
    }

    #[test]
    fn engine_profile_merge_sums_and_maxes() {
        let mut total = EngineProfile::default();
        let a = EngineProfile {
            events: 10,
            heap_pushes: 12,
            heap_pops: 11,
            max_heap_depth: 5,
            transfers: 3,
            requests: 24,
            timed: false,
            phases: PhaseProfile::default(),
        };
        let b = EngineProfile {
            max_heap_depth: 2,
            timed: true,
            ..a
        };
        total.merge(&a);
        total.merge(&b);
        assert_eq!(total.events, 20);
        assert_eq!(total.heap_pushes, 24);
        assert_eq!(total.max_heap_depth, 5);
        assert_eq!(total.requests, 48);
        assert!(total.timed);
    }

    #[test]
    fn deterministic_eq_ignores_wall_clock() {
        let mut a = EngineProfile {
            events: 7,
            ..EngineProfile::default()
        };
        a.phases.note(Phase::Dispatch);
        let mut b = a;
        b.timed = true;
        b.phases.add_ns(Phase::Dispatch, 999);
        assert!(a.deterministic_eq(&b));
        assert_ne!(a, b);
        b.phases.note(Phase::Dispatch);
        assert!(!a.deterministic_eq(&b));
    }

    #[test]
    fn events_per_sec_guards_zero_interval() {
        let p = EngineProfile {
            events: 500,
            ..EngineProfile::default()
        };
        assert_eq!(p.events_per_sec(0.0), 0.0);
        assert!((p.events_per_sec(0.5) - 1000.0).abs() < 1e-9);
    }
}
