//! Integer picosecond time types.
//!
//! All simulators in this workspace share a single clock domain expressed in
//! picoseconds. A 1600 MHz RDRAM cycle is exactly 625 ps; a 133.3 MHz PCI-X
//! slot is 7500 ps; disk seeks are milliseconds. `u64` picoseconds cover
//! ~213 days of simulated time, far beyond any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A span of simulated time in picoseconds.
///
/// # Example
///
/// ```
/// use simcore::SimDuration;
///
/// let cycle = SimDuration::from_ps(625);
/// assert_eq!(cycle * 4, SimDuration::from_ns(2) + SimDuration::from_ps(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration from seconds expressed as a float.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or does not fit in `u64`
    /// picoseconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite() && secs <= u64::MAX as f64 / 1e12,
            "duration out of range: {secs}"
        );
        SimDuration((secs * 1e12).round() as u64)
    }

    /// The time to move `bytes` bytes at `bytes_per_sec` (rounded to ps).
    ///
    /// This is how bus slot periods and chip service times are derived.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn from_bytes_at_rate(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "invalid transfer rate: {bytes_per_sec}"
        );
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// `cycles` periods of a clock running at `hz`.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn from_cycles(cycles: u64, hz: f64) -> Self {
        assert!(hz > 0.0 && hz.is_finite(), "invalid frequency: {hz}");
        SimDuration::from_secs_f64(cycles as f64 / hz)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The duration in nanoseconds (floating point).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in microseconds (floating point).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a float factor, rounding to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "invalid factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The ratio of `self` to `other` as a float.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        assert!(!other.is_zero(), "division by zero duration");
        self.0 as f64 / other.0 as f64
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps.is_multiple_of(1_000_000_000) {
            write!(f, "{}ms", ps / 1_000_000_000)
        } else if ps.is_multiple_of(1_000_000) {
            write!(f, "{}us", ps / 1_000_000)
        } else if ps.is_multiple_of(1_000) {
            write!(f, "{}ns", ps / 1_000)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// An absolute instant of simulated time (picoseconds since simulation
/// start).
///
/// # Example
///
/// ```
/// use simcore::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_us(3);
/// assert_eq!(t.elapsed_since(SimTime::ZERO), SimDuration::from_us(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A time representing "never"; later than every reachable instant.
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Creates an instant at `ps` picoseconds since simulation start.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The duration from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn elapsed_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                // simlint::allow(panic-path, "documented contract (see # Panics): a negative duration means causality broke, which determinism tests treat as fatal")
                .expect("SimTime::elapsed_since with a later instant"),
        )
    }

    /// The duration from `earlier` to `self`, zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.elapsed_since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimDuration::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimDuration::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimDuration::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_ns(1));
    }

    #[test]
    fn rdram_cycle_is_625ps() {
        let cycle = SimDuration::from_cycles(1, 1.6e9);
        assert_eq!(cycle.as_ps(), 625);
    }

    #[test]
    fn pcix_8byte_slot_period() {
        // 1.064 GB/s, 8 bytes => ~7.5188 ns.
        let slot = SimDuration::from_bytes_at_rate(8, 1.064e9);
        assert!(slot.as_ns_f64() > 7.51 && slot.as_ns_f64() < 7.53);
    }

    #[test]
    fn memory_8byte_service_is_4_cycles() {
        // Figure 2(a): 3.2 GB/s memory serves an 8-byte request in 4 cycles.
        let service = SimDuration::from_bytes_at_rate(8, 3.2e9);
        assert_eq!(service.as_ps(), 4 * 625);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_ns(10);
        let b = SimDuration::from_ns(4);
        assert_eq!(a + b, SimDuration::from_ns(14));
        assert_eq!(a - b, SimDuration::from_ns(6));
        assert_eq!(a * 3, SimDuration::from_ns(30));
        assert_eq!(a / 2, SimDuration::from_ns(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.ratio(b), 2.5);
        assert_eq!(a.mul_f64(0.5), SimDuration::from_ns(5));
    }

    #[test]
    fn time_ordering_and_ops() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_ns(5);
        assert!(t1 > t0);
        assert_eq!(t1 - t0, SimDuration::from_ns(5));
        assert_eq!(
            t1.saturating_since(t1 + SimDuration::from_ns(1)),
            SimDuration::ZERO
        );
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
        assert!(SimTime::NEVER > t1);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_ns(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_us(2).to_string(), "2us");
        assert_eq!(SimDuration::from_ms(7).to_string(), "7ms");
        assert_eq!(SimDuration::from_ps(3).to_string(), "3ps");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimDuration::from_ns(1) - SimDuration::from_ns(2);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }
}
