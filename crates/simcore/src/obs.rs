//! Observability layer: metrics registry, structured event tracing, and
//! span timers.
//!
//! Everything here is std-only and single-threaded by design (the
//! simulator event loop is single-threaded, and cheap `Rc`-based handles
//! keep instrumentation off the hot path's allocator).
//!
//! The layer has three pillars:
//!
//! * [`metrics`] — a [`MetricsRegistry`](metrics::MetricsRegistry) that
//!   components register **counters**, **gauges**, and log₂-bucketed
//!   streaming **histograms** into by dotted name
//!   (`"<subsystem>.<quantity>[_<unit>]"`, e.g. `dmamem.wakes` or
//!   `sim.dispatch_ns`). Snapshots are mergeable across runs and export
//!   as JSON.
//! * [`events`] — a ring-buffered [`EventSink`](events::EventSink) of
//!   typed simulation events with sim-timestamps, exportable as JSONL
//!   (one JSON object per line: `seq`, `t_ps`, `kind`, then
//!   event-specific fields).
//! * [`span`] — scoped wall-clock [`SpanTimer`](span::SpanTimer)s for
//!   profiling simulator hot paths; samples land in a registry histogram
//!   named `span.<name>_ns`.
//! * [`trace`] — a causal [`TraceBuffer`](trace::TraceBuffer) of
//!   begin/end/instant/counter records over simulated time, exportable as
//!   Chrome/Perfetto `trace_event` JSON.
//! * [`serve`] — the live telemetry layer: a shared
//!   [`LiveState`](serve::LiveState) of sweep progress plus a std-only
//!   HTTP server exposing `/metrics` (Prometheus text exposition),
//!   `/status` (JSON progress), and `/events` (JSONL tail).
//!
//! A tiny dependency-free JSON writer (and the matching minimal parser the
//! trace tooling uses to re-read its own exports) lives in [`json`]; all
//! exporters use it.
//!
//! # Example
//!
//! ```
//! use simcore::obs::metrics::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let wakes = registry.counter("dmamem.wakes");
//! wakes.inc();
//! wakes.add(2);
//! assert_eq!(registry.snapshot().counter("dmamem.wakes"), Some(3));
//! ```

pub mod events;
pub mod json;
pub mod metrics;
pub mod serve;
pub mod span;
pub mod trace;

pub use events::{EventSink, ObsEvent};
pub use json::JsonObject;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use serve::{render_prometheus, LiveState, ServerHandle};
pub use span::SpanTimer;
pub use trace::{SpanId, SpillSink, TraceBuffer, TraceStats, TrackId, TrackKind};
