//! Deterministic random numbers for workload generation.
//!
//! Every simulator entry point takes an explicit `u64` seed; this module
//! wraps [`rand::rngs::SmallRng`] so no other part of the workspace depends
//! on `rand`'s API surface directly, and so samplers the paper's workloads
//! need (exponential inter-arrival times for Poisson processes) live in one
//! audited place.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random-number generator.
///
/// # Example
///
/// ```
/// use simcore::rng::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a seed. The same seed always produces the
    /// same stream.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each workload
    /// source (network DMA, disk DMA, processor) its own stream so adding
    /// one source does not perturb the others.
    pub fn fork(&mut self, stream: u64) -> DetRng {
        // Mix the stream id with fresh state so forks are decorrelated.
        let seed = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// A uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.gen_range(lo..hi)
    }

    /// An exponentially distributed value with the given mean (for Poisson
    /// process inter-arrival times).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "invalid mean: {mean}");
        // Inverse CDF; 1 - u avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.uniform() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::new(11);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.15, "observed {observed}");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(13);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn forks_are_decorrelated_and_deterministic() {
        let mut parent1 = DetRng::new(99);
        let mut parent2 = DetRng::new(99);
        let mut f1 = parent1.fork(1);
        let mut f2 = parent2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut parent = DetRng::new(99);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..50).collect();
        assert_eq!(sorted, expect);
        assert_ne!(v, expect, "50-element shuffle left input unchanged");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
