//! Deterministic random numbers for workload generation.
//!
//! Every simulator entry point takes an explicit `u64` seed; this module
//! implements a self-contained xoshiro256++ generator (seeded through
//! splitmix64) so no part of the workspace depends on an external RNG
//! crate, and so samplers the paper's workloads need (exponential
//! inter-arrival times for Poisson processes) live in one audited place.

/// A deterministic random-number generator.
///
/// The core is xoshiro256++ (Blackman & Vigna), a 256-bit-state
/// generator with period 2^256 − 1; the state is expanded from the
/// `u64` seed with splitmix64 so that nearby seeds yield decorrelated
/// streams.
///
/// # Example
///
/// ```
/// use simcore::rng::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

/// splitmix64 step: advances `x` and returns the next output.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a seed. The same seed always produces the
    /// same stream.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = splitmix64(&mut x);
        }
        // xoshiro's all-zero state is absorbing; splitmix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if state == [0; 4] {
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { state }
    }

    /// Derives an independent child generator; used to give each workload
    /// source (network DMA, disk DMA, processor) its own stream so adding
    /// one source does not perturb the others.
    pub fn fork(&mut self, stream: u64) -> DetRng {
        // Mix the stream id with fresh state so forks are decorrelated.
        let seed = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(seed)
    }

    /// The next raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform float in `[0, 1)`, built from the top 53 bits.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection sampling over the widest multiple of `n`, so the
        // result is exactly uniform.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// An exponentially distributed value with the given mean (for Poisson
    /// process inter-arrival times).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "invalid mean: {mean}");
        // Inverse CDF; 1 - u avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.uniform() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::new(11);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.15, "observed {observed}");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(13);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = DetRng::new(29);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn forks_are_decorrelated_and_deterministic() {
        let mut parent1 = DetRng::new(99);
        let mut parent2 = DetRng::new(99);
        let mut f1 = parent1.fork(1);
        let mut f2 = parent2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut parent = DetRng::new(99);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..50).collect();
        assert_eq!(sorted, expect);
        assert_ne!(v, expect, "50-element shuffle left input unchanged");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
