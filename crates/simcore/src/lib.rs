//! Discrete-event simulation substrate for the `dma-aware-mem` workspace.
//!
//! This crate provides the building blocks every simulator crate in the
//! workspace shares:
//!
//! * [`SimTime`] / [`SimDuration`] — integer picosecond time types, so every
//!   model (1600 MHz memory cycles, 133 MHz bus slots, microsecond disk
//!   seeks) composes without rounding surprises.
//! * [`EventQueue`] — a deterministic future-event list with stable FIFO
//!   ordering among simultaneous events (a calendar/timing-wheel queue;
//!   [`HeapQueue`] is the binary-heap reference it is proven against).
//! * [`Slab`] — an index-stable arena with free-list reuse for the
//!   record churn of long simulations (transfers, requests).
//! * [`rng::DetRng`] — a seedable, deterministic random-number generator with
//!   the samplers the workload generators need (exponential inter-arrivals,
//!   Zipf page popularity).
//! * [`stats`] — online statistics (mean/variance, histograms, quantiles)
//!   used for energy and response-time accounting.
//! * [`obs`] — the observability layer: a named-metric registry (counters,
//!   gauges, log-scale histograms), a ring-buffered typed-event sink with
//!   JSONL export, and scoped wall-clock span timers.
//! * [`prof`] — engine self-profiling: deterministic hot-path counters
//!   ([`EngineProfile`]) plus opt-in wall-clock phase timers, so the
//!   simulator itself is as observable as the systems it models.
//! * [`par`] — a std-only scoped-thread work-stealing pool with
//!   input-order results and per-job panic isolation, used by the
//!   experiment sweep engine.
//!
//! # Example
//!
//! ```
//! use simcore::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_ns(5), "later");
//! q.schedule(SimTime::ZERO, "now");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::ZERO, "now"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
mod event;
pub mod obs;
pub mod par;
pub mod prof;
pub mod rng;
pub mod slab;
pub mod stats;
mod time;

pub use event::{EventQueue, HeapQueue, HEAP_QUEUE_KIND, QUEUE_KIND};
pub use prof::EngineProfile;
pub use slab::Slab;
pub use time::{SimDuration, SimTime};
