//! A std-only scoped-thread work-stealing pool for independent jobs.
//!
//! The experiment sweeps in this workspace are embarrassingly parallel —
//! hundreds of independent `ServerSimulator::run` calls — but the build
//! environment has no crates.io access, so this module provides the small
//! slice of `rayon` the workspace needs on top of `std::thread::scope`:
//!
//! * [`map`] / [`try_map`] run one closure over a batch of items on up to
//!   `threads` workers and return the results **in input order**, so a
//!   parallel sweep is a drop-in replacement for a serial loop.
//! * Work is distributed into per-worker deques; an idle worker steals
//!   from the back of its neighbours' deques, so a few long jobs (full
//!   50-ms figure simulations) do not strand the short ones behind them.
//! * Panics are isolated per job: [`try_map`] reports them as values and
//!   keeps every other job running; [`map`] completes the batch, then
//!   resumes the panic of the **lowest-indexed** failed job, so a crashing
//!   sweep behaves identically at any thread count.
//!
//! Determinism: scheduling order is nondeterministic, but each job sees
//! only its own item and returns its slot by index, so the output vector —
//! and anything derived from it — is bit-identical across thread counts.
//!
//! # Example
//!
//! ```
//! let squares = simcore::par::map(4, (0u64..100).collect(), |x| x * x);
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A job that panicked: its input index and the stringified payload.
#[derive(Debug)]
pub struct JobPanic {
    /// Index of the input item whose job panicked.
    pub index: usize,
    /// The panic payload (message for `&str`/`String` payloads, a
    /// placeholder otherwise), kept so [`map`] can resume it.
    payload: Box<dyn std::any::Any + Send + 'static>,
}

impl JobPanic {
    /// The panic message, when the payload was a string.
    pub fn message(&self) -> &str {
        if let Some(s) = self.payload.downcast_ref::<&'static str>() {
            s
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s
        } else {
            "<non-string panic payload>"
        }
    }
}

/// Number of hardware threads available, with a floor of one.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a requested thread count: `0` means "all available".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

struct WorkQueues {
    /// One deque of item indices per worker; stealing pops the back.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Jobs taken so far; lets workers exit without a full rescan.
    taken: AtomicUsize,
    total: usize,
}

impl WorkQueues {
    fn new(workers: usize, total: usize) -> Self {
        // Block distribution: worker w owns a contiguous chunk, so a
        // serial-ish sweep keeps cache-friendly locality and stealing
        // moves whole tail ranges.
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        let per = total.div_ceil(workers.max(1));
        for i in 0..total {
            queues[(i / per.max(1)).min(workers - 1)].push_back(i);
        }
        WorkQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
            taken: AtomicUsize::new(0),
            total,
        }
    }

    /// Takes the next job for `worker`: own queue front first, then steal
    /// from the back of the other queues, scanning round-robin.
    fn take(&self, worker: usize) -> Option<usize> {
        if self.taken.load(Ordering::Relaxed) >= self.total {
            return None;
        }
        if let Some(i) = self.queues[worker].lock().unwrap().pop_front() {
            self.taken.fetch_add(1, Ordering::Relaxed);
            return Some(i);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            if let Some(i) = self.queues[victim].lock().unwrap().pop_back() {
                self.taken.fetch_add(1, Ordering::Relaxed);
                return Some(i);
            }
        }
        None
    }
}

/// Runs `f` over every item on up to `threads` workers (`0` = all
/// available), returning per-job results **in input order**. A panicking
/// job is reported as `Err(JobPanic)` in its slot; every other job still
/// runs to completion.
pub fn try_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<Result<R, JobPanic>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let total = items.len();
    let workers = resolve_threads(threads).min(total.max(1));
    let run_one = |index: usize, item: T| -> Result<R, JobPanic> {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| JobPanic { index, payload })
    };

    if workers <= 1 {
        // Serial fast path: no threads spawned, identical job semantics.
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run_one(i, item))
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let work = WorkQueues::new(workers, total);
    let mut results: Vec<Option<Result<R, JobPanic>>> = Vec::new();
    results.resize_with(total, || None);
    let out: Vec<Mutex<&mut Option<Result<R, JobPanic>>>> =
        results.iter_mut().map(Mutex::new).collect();

    std::thread::scope(|scope| {
        let work = &work;
        let slots = &slots;
        let out = &out;
        let run_one = &run_one;
        for w in 0..workers {
            scope.spawn(move || {
                while let Some(i) = work.take(w) {
                    let item = slots[i].lock().unwrap().take().expect("job taken twice");
                    let r = run_one(i, item);
                    **out[i].lock().unwrap() = Some(r);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("job never ran"))
        .collect()
}

/// Runs `f` over every item on up to `threads` workers (`0` = all
/// available), returning results in input order.
///
/// # Panics
///
/// If any job panics, the whole batch still runs, then the panic of the
/// **lowest-indexed** failed job is resumed on the caller — the same
/// panic a serial loop would have surfaced first.
pub fn map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    let mut first_panic: Option<JobPanic> = None;
    for r in try_map(threads, items, f) {
        match r {
            Ok(v) => out.push(v),
            Err(p) if first_panic.is_none() => first_panic = Some(p),
            Err(_) => {}
        }
    }
    if let Some(p) = first_panic {
        resume_unwind(p.payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_keep_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 0] {
            let got = map(threads, items.clone(), |x| x * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn uneven_jobs_all_complete() {
        // A few long jobs up front force the other workers to steal.
        let done = AtomicU64::new(0);
        let items: Vec<usize> = (0..64).collect();
        let got = map(4, items, |i| {
            if i < 2 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            done.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(done.load(Ordering::Relaxed), 64);
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_batches() {
        let empty: Vec<u32> = map(8, Vec::new(), |x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(map(8, vec![9u32], |x| x + 1), vec![10]);
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let items: Vec<u32> = (0..16).collect();
        let results = try_map(4, items, |x| {
            if x % 5 == 3 {
                panic!("job {x} failed");
            }
            x * 2
        });
        let mut ok = 0;
        for (i, r) in results.iter().enumerate() {
            match r {
                Ok(v) => {
                    assert_eq!(*v, i as u32 * 2);
                    ok += 1;
                }
                Err(p) => {
                    assert_eq!(p.index, i);
                    assert!(p.message().contains("failed"), "{}", p.message());
                }
            }
        }
        assert_eq!(ok, 13); // 3, 8, 13 panic
    }

    #[test]
    fn map_resumes_lowest_indexed_panic() {
        for threads in [1, 4] {
            let err = catch_unwind(AssertUnwindSafe(|| {
                map(threads, (0u32..10).collect(), |x| {
                    if x == 7 || x == 2 {
                        panic!("boom {x}");
                    }
                    x
                })
            }))
            .unwrap_err();
            let msg = err.downcast_ref::<String>().expect("string payload");
            assert_eq!(msg, "boom 2", "threads={threads}");
        }
    }

    #[test]
    fn thread_count_resolution() {
        assert!(available_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(0), available_threads());
    }
}
