//! Structured sim-event tracing: a ring-buffered sink with JSONL export.

use std::collections::VecDeque;
use std::io::{self, Write};

use super::json::JsonObject;

/// A typed simulation event that knows how to describe itself.
///
/// Implementors provide a stable `kind` tag, the simulation timestamp in
/// picoseconds, and their payload fields; the sink supplies the envelope
/// (`seq`, `t_ps`, `kind`).
pub trait ObsEvent {
    /// Stable event-type tag (snake_case, e.g. `"mode_transition"`).
    fn kind(&self) -> &'static str;

    /// Simulation timestamp in picoseconds.
    fn timestamp_ps(&self) -> u64;

    /// Appends the event's payload fields to `obj`.
    fn write_fields(&self, obj: &mut JsonObject);
}

/// A bounded, ring-buffered sink of typed events.
///
/// When the buffer is full the **oldest** events are dropped (and
/// counted), so a long run keeps its most recent history — sequence
/// numbers stay globally consistent either way.
///
/// # Example
///
/// ```
/// use simcore::obs::{EventSink, JsonObject, ObsEvent};
///
/// struct Tick(u64);
/// impl ObsEvent for Tick {
///     fn kind(&self) -> &'static str { "tick" }
///     fn timestamp_ps(&self) -> u64 { self.0 }
///     fn write_fields(&self, _obj: &mut JsonObject) {}
/// }
///
/// let mut sink = EventSink::new(16);
/// sink.record(Tick(1_000));
/// assert_eq!(sink.to_jsonl(), "{\"seq\":0,\"t_ps\":1000,\"kind\":\"tick\"}\n");
/// ```
#[derive(Debug, Clone)]
pub struct EventSink<E> {
    buf: VecDeque<(u64, E)>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl<E: ObsEvent> EventSink<E> {
    /// Creates a sink holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity event sink");
        EventSink {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends one event, evicting the oldest if the sink is full.
    pub fn record(&mut self, event: E) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((self.next_seq, event));
        self.next_seq += 1;
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The sink's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (buffered + dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Iterates the buffered events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.buf.iter().map(|(_, e)| e)
    }

    /// Renders one event as its JSONL line (no trailing newline).
    fn line(seq: u64, event: &E) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("seq", seq)
            .field_u64("t_ps", event.timestamp_ps())
            .field_str("kind", event.kind());
        event.write_fields(&mut obj);
        obj.finish()
    }

    /// Iterates the buffered events with sequence number `>= since`,
    /// oldest first, as `(seq, jsonl-line)` pairs (no trailing
    /// newlines). This is the cursor-carrying accessor the live
    /// telemetry tail uses: callers remember the last `seq + 1` they saw
    /// and pass it back to read only newer events.
    pub fn lines_since(&self, since: u64) -> impl Iterator<Item = (u64, String)> + '_ {
        self.buf
            .iter()
            .filter(move |(seq, _)| *seq >= since)
            .map(|(seq, e)| (*seq, Self::line(*seq, e)))
    }

    /// Writes the buffered events as JSONL (one JSON object per line).
    pub fn export_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (seq, e) in &self.buf {
            writeln!(w, "{}", Self::line(*seq, e))?;
        }
        Ok(())
    }

    /// The buffered events as a JSONL string.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, e) in &self.buf {
            out.push_str(&Self::line(*seq, e));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        t: u64,
        label: &'static str,
    }

    impl ObsEvent for Probe {
        fn kind(&self) -> &'static str {
            "probe"
        }
        fn timestamp_ps(&self) -> u64 {
            self.t
        }
        fn write_fields(&self, obj: &mut JsonObject) {
            obj.field_str("label", self.label);
        }
    }

    #[test]
    fn ring_drops_oldest_and_keeps_seq() {
        let mut sink = EventSink::new(2);
        for (i, label) in ["a", "b", "c"].iter().enumerate() {
            sink.record(Probe { t: i as u64, label });
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 1);
        assert_eq!(sink.recorded(), 3);
        let jsonl = sink.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""seq":1"#) && lines[0].contains(r#""label":"b""#));
        assert!(lines[1].contains(r#""seq":2"#) && lines[1].contains(r#""label":"c""#));
    }

    #[test]
    fn lines_since_carries_cursors() {
        let mut sink = EventSink::new(2);
        for (i, label) in ["a", "b", "c"].iter().enumerate() {
            sink.record(Probe { t: i as u64, label });
        }
        // seq 0 was evicted; the cursor view starts at the retained tail.
        let all: Vec<(u64, String)> = sink.lines_since(0).collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, 1);
        assert!(all[0].1.contains(r#""label":"b""#));
        let newer: Vec<(u64, String)> = sink.lines_since(2).collect();
        assert_eq!(newer.len(), 1);
        assert_eq!(newer[0].0, 2);
        // Lines match the JSONL export byte for byte.
        let joined: String = all.iter().map(|(_, l)| format!("{l}\n")).collect();
        assert_eq!(joined, sink.to_jsonl());
    }

    #[test]
    fn export_matches_to_jsonl() {
        let mut sink = EventSink::new(8);
        sink.record(Probe { t: 5, label: "x" });
        let mut bytes = Vec::new();
        sink.export_jsonl(&mut bytes).unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), sink.to_jsonl());
    }
}
