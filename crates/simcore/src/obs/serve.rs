//! Live telemetry: shared sweep progress, Prometheus text exposition,
//! and a std-only HTTP/1.1 scrape server.
//!
//! Everything observable so far is post-mortem — artifacts appear only
//! after a run finishes. This module adds the *live* layer:
//!
//! * [`LiveState`] — a thread-safe bag of progress the sweep driver
//!   publishes into while jobs run: current figure, wave and job
//!   counters, a wall-clock heartbeat, a coarse sim-clock watermark, an
//!   aggregate [`MetricsSnapshot`], and a bounded ring of pre-rendered
//!   JSONL event lines with monotonic cursors.
//! * [`render_prometheus`] — renders a [`MetricsSnapshot`] as Prometheus
//!   text exposition (version 0.0.4): counters and gauges directly,
//!   log2 histograms as cumulative `_bucket`/`_sum`/`_count` families.
//! * [`serve`] — binds a TCP listener and answers `GET /metrics`,
//!   `GET /status`, and `GET /events?since=N` on a background thread
//!   until the returned [`ServerHandle`] is shut down.
//!
//! The iron rule of the repo holds here by construction: nothing in
//! this module feeds back into simulation state. Wall-clock time enters
//! only to timestamp the heartbeat and compute uptime for `/status`;
//! simulated results flow one way, into the live snapshot.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use std::time::Instant;

use super::json::JsonObject;
use super::metrics::{MetricsSnapshot, HISTOGRAM_BUCKETS};

/// Default capacity of the live event-line ring.
const EVENT_RING_CAPACITY: usize = 4096;

/// Ring of pre-rendered JSONL event lines with global sequence numbers.
#[derive(Debug, Default)]
struct EventRing {
    buf: VecDeque<(u64, String)>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

/// The tail of the live event stream returned by
/// [`LiveState::events_since`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTail {
    /// JSONL body: the retained lines with `seq >= since`, each
    /// newline-terminated (empty when nothing new).
    pub body: String,
    /// The cursor to pass as `since` next time to see only newer lines.
    pub next_seq: u64,
    /// Lines evicted from the ring over its lifetime. If this grew
    /// between polls, the tail has a gap.
    pub dropped: u64,
}

/// Shared live-progress state published by a sweep driver and read by
/// the scrape server.
///
/// All methods take `&self`; the state is internally synchronized and
/// meant to sit behind an [`Arc`], with the sweep/engine side writing
/// and the HTTP side reading. Writers use plain atomic stores or short
/// mutex sections, so publishing progress never blocks on a scrape.
#[derive(Debug)]
pub struct LiveState {
    start: Instant,
    figure: Mutex<String>,
    wave: AtomicU64,
    jobs_done: AtomicU64,
    jobs_total: AtomicU64,
    sim_ps: AtomicU64,
    engine_events: AtomicU64,
    /// Nanoseconds after `start` of the latest heartbeat; 0 = never.
    heartbeat_ns: AtomicU64,
    metrics: Mutex<MetricsSnapshot>,
    events: Mutex<EventRing>,
}

impl Default for LiveState {
    fn default() -> Self {
        LiveState::new()
    }
}

impl LiveState {
    /// Fresh state with zeroed progress and an empty event ring.
    pub fn new() -> Self {
        LiveState {
            // simlint::allow(wall-clock, "live-telemetry epoch: anchors uptime and heartbeat age for /status only; never read by simulation code")
            start: Instant::now(),
            figure: Mutex::new(String::new()),
            wave: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_total: AtomicU64::new(0),
            sim_ps: AtomicU64::new(0),
            engine_events: AtomicU64::new(0),
            heartbeat_ns: AtomicU64::new(0),
            metrics: Mutex::new(MetricsSnapshot::default()),
            events: Mutex::new(EventRing {
                capacity: EVENT_RING_CAPACITY,
                ..EventRing::default()
            }),
        }
    }

    /// Publishes the figure (or phase) currently being produced.
    pub fn set_figure(&self, name: &str) {
        let mut f = self.figure.lock().expect("live figure lock poisoned");
        f.clear();
        f.push_str(name);
    }

    /// The figure most recently published via [`LiveState::set_figure`].
    pub fn figure(&self) -> String {
        self.figure
            .lock()
            .expect("live figure lock poisoned")
            .clone()
    }

    /// Starts a new sweep wave of `jobs` simulation jobs: bumps the wave
    /// counter and grows the job total.
    pub fn begin_wave(&self, jobs: u64) {
        self.wave.fetch_add(1, Ordering::Relaxed);
        self.jobs_total.fetch_add(jobs, Ordering::Relaxed);
        self.heartbeat();
    }

    /// Records one finished simulation job and returns the new
    /// done-count.
    pub fn job_done(&self) -> u64 {
        self.heartbeat();
        self.jobs_done.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// `(wave, jobs_done, jobs_total)` as last published.
    pub fn progress(&self) -> (u64, u64, u64) {
        (
            self.wave.load(Ordering::Relaxed),
            self.jobs_done.load(Ordering::Relaxed),
            self.jobs_total.load(Ordering::Relaxed),
        )
    }

    /// Stamps the liveness heartbeat with the current wall-clock time.
    pub fn heartbeat(&self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        // `0` means "never beaten"; a beat in the first nanosecond still
        // counts.
        self.heartbeat_ns.store(ns.max(1), Ordering::Relaxed);
    }

    /// Seconds since the last heartbeat, or `None` before the first one.
    pub fn heartbeat_age_secs(&self) -> Option<f64> {
        let beat = self.heartbeat_ns.load(Ordering::Relaxed);
        if beat == 0 {
            return None;
        }
        let now_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        Some(now_ns.saturating_sub(beat) as f64 / 1e9)
    }

    /// Seconds since this state was created.
    pub fn uptime_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Publishes the engine's coarse sim-clock watermark (picoseconds).
    ///
    /// A plain atomic store: this is called from inside the engine run
    /// loop, so it must never lock, allocate, or panic.
    pub fn watermark_ps(&self, ps: u64) {
        self.sim_ps.store(ps, Ordering::Relaxed);
    }

    /// The last published sim-clock watermark, in picoseconds.
    pub fn sim_time_ps(&self) -> u64 {
        self.sim_ps.load(Ordering::Relaxed)
    }

    /// Adds `n` dispatched engine events to the lifetime total backing
    /// the `/status` events-per-second rate.
    pub fn add_engine_events(&self, n: u64) {
        self.engine_events.fetch_add(n, Ordering::Relaxed);
    }

    /// Engine events accumulated so far.
    pub fn engine_events(&self) -> u64 {
        self.engine_events.load(Ordering::Relaxed)
    }

    /// Sets one counter in the aggregate metrics snapshot (used for
    /// progress-style keys that have no per-run registry registration).
    pub fn counter_set(&self, name: &str, value: u64) {
        let mut m = self.metrics.lock().expect("live metrics lock poisoned");
        m.counters.insert(Arc::from(name), value);
    }

    /// Merges one finished run's metrics snapshot into the aggregate
    /// (counters add, gauges last-wins, histograms merge).
    pub fn merge_metrics(&self, snap: &MetricsSnapshot) {
        let mut m = self.metrics.lock().expect("live metrics lock poisoned");
        m.merge(snap);
    }

    /// A clone of the aggregate metrics snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .lock()
            .expect("live metrics lock poisoned")
            .clone()
    }

    /// Appends one pre-rendered JSONL event line to the live ring,
    /// evicting the oldest line when full.
    pub fn push_event_line(&self, line: String) {
        let mut ring = self.events.lock().expect("live event ring poisoned");
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.buf.push_back((seq, line));
    }

    /// The retained event lines with sequence number `>= since`.
    pub fn events_since(&self, since: u64) -> EventTail {
        let ring = self.events.lock().expect("live event ring poisoned");
        let mut body = String::new();
        for (seq, line) in &ring.buf {
            if *seq >= since {
                body.push_str(line);
                body.push('\n');
            }
        }
        EventTail {
            body,
            next_seq: ring.next_seq,
            dropped: ring.dropped,
        }
    }

    /// The `/status` JSON document.
    pub fn status_json(&self) -> String {
        let (wave, done, total) = self.progress();
        let uptime = self.uptime_secs();
        let events = self.engine_events();
        let rate = if uptime > 0.0 {
            events as f64 / uptime
        } else {
            0.0
        };
        let mut obj = JsonObject::new();
        obj.field_str("figure", &self.figure())
            .field_u64("wave", wave)
            .field_u64("jobs_done", done)
            .field_u64("jobs_total", total)
            .field_u64("engine_events", events)
            .field_f64("events_per_sec", rate)
            .field_f64("uptime_secs", uptime)
            .field_u64("sim_time_ps", self.sim_time_ps());
        match self.heartbeat_age_secs() {
            Some(age) => obj.field_f64("heartbeat_age_secs", age),
            None => obj.field_raw("heartbeat_age_secs", "null"),
        };
        obj.finish()
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Escapes a HELP-line string per the Prometheus text format:
/// backslash and newline.
pub fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote, and newline.
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Maps a registry key to a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, with every other character folded to `_`.
pub fn metric_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for (i, c) in key.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if ok && !(i == 0 && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
            if c.is_ascii_digit() {
                out.push(c);
            }
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Inclusive upper bound of log2 histogram bucket `i` (the `le` label
/// value): bucket 0 holds only zeros, bucket `i >= 1` holds
/// `[2^(i-1), 2^i - 1]`.
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Renders `snap` as Prometheus text exposition (format version 0.0.4).
///
/// Counters and gauges emit one sample each; histograms emit cumulative
/// `_bucket{le="…"}` samples up to the highest non-empty log2 bucket,
/// then `le="+Inf"`, `_sum`, and `_count`. Families appear in sorted
/// key order (the snapshot's maps are ordered), so the exposition is
/// byte-stable for equal snapshots.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (key, value) in &snap.counters {
        let name = metric_name(key);
        out.push_str(&format!(
            "# HELP {name} simulation counter \"{}\"\n# TYPE {name} counter\n{name} {value}\n",
            escape_help(key)
        ));
    }
    for (key, value) in &snap.gauges {
        let name = metric_name(key);
        out.push_str(&format!(
            "# HELP {name} simulation gauge \"{}\"\n# TYPE {name} gauge\n{name} {value}\n",
            escape_help(key)
        ));
    }
    for (key, h) in &snap.histograms {
        let name = metric_name(key);
        out.push_str(&format!(
            "# HELP {name} simulation log2 histogram \"{}\"\n# TYPE {name} histogram\n",
            escape_help(key)
        ));
        let top = (0..HISTOGRAM_BUCKETS)
            .rev()
            .find(|&i| h.buckets[i] > 0)
            .unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, &count) in h.buckets.iter().enumerate().take(top + 1) {
            cumulative += count;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_upper_bound(i)
            ));
        }
        out.push_str(&format!(
            "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
            h.count, h.sum, h.count
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// HTTP server
// ---------------------------------------------------------------------------

/// Handle to a running telemetry server; dropping it shuts the server
/// down and joins the background thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(join) = self.join.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks; a throwaway connection unblocks it so
        // it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = join.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Starts the telemetry server on `addr` (e.g. `127.0.0.1:9091`, or
/// port `0` for an ephemeral port) serving `state` on a background
/// thread. Endpoints:
///
/// * `GET /metrics` — Prometheus text exposition of the aggregate
///   metrics snapshot;
/// * `GET /status` — JSON progress document (figure, wave, job counts,
///   engine events/sec, uptime, heartbeat age, sim-clock watermark);
/// * `GET /events?since=N` — JSONL tail of the live event ring, with
///   `X-Next-Seq` and `X-Dropped` cursor headers.
///
/// Responses are `HTTP/1.1` with `Connection: close`; anything else is
/// a 404.
pub fn serve(addr: &str, state: Arc<LiveState>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("telemetry-serve".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                handle_connection(stream, &state);
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        join: Some(join),
    })
}

/// Reads one request, routes it, writes one response. Any I/O error
/// just drops the connection — a scraper retry is cheaper than server
/// state.
fn handle_connection(mut stream: TcpStream, state: &LiveState) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2_000)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(2_000)));
    let mut buf = [0u8; 4096];
    let mut req = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request_line = match std::str::from_utf8(&req) {
        Ok(text) => text.lines().next().unwrap_or("").to_string(),
        Err(_) => return,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let response = if method != "GET" {
        respond(
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
            &[],
        )
    } else {
        match path {
            "/metrics" => respond(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &render_prometheus(&state.metrics_snapshot()),
                &[],
            ),
            "/status" => {
                let mut body = state.status_json();
                body.push('\n');
                respond(200, "application/json; charset=utf-8", &body, &[])
            }
            "/events" => {
                let since = query
                    .split('&')
                    .find_map(|kv| kv.strip_prefix("since="))
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0);
                let tail = state.events_since(since);
                let cursors = [
                    ("X-Next-Seq", tail.next_seq.to_string()),
                    ("X-Dropped", tail.dropped.to_string()),
                ];
                respond(200, "application/x-ndjson", &tail.body, &cursors)
            }
            _ => respond(404, "text/plain; charset=utf-8", "not found\n", &[]),
        }
    };
    let _ = stream.write_all(response.as_bytes());
}

/// Formats one `HTTP/1.1` response with `Content-Length` and
/// `Connection: close`.
fn respond(code: u16, content_type: &str, body: &str, extra: &[(&str, String)]) -> String {
    let reason = match code {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let mut head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in extra {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    head.push_str(body);
    head
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::MetricsRegistry;

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to test server");
        write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    #[test]
    fn escaping_follows_text_format() {
        assert_eq!(escape_help(r"a\b"), r"a\\b");
        assert_eq!(escape_help("a\nb"), r"a\nb");
        assert_eq!(escape_help(r#"quote " kept"#), r#"quote " kept"#);
        assert_eq!(escape_label(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label("a\\\nb"), "a\\\\\\nb");
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(metric_name("dmamem.trace.spilled"), "dmamem_trace_spilled");
        assert_eq!(metric_name("weird key-v2"), "weird_key_v2");
        assert_eq!(metric_name("9lives"), "_9lives");
        assert_eq!(metric_name(""), "_");
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("probe.lat");
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(3);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE probe_lat histogram"));
        assert!(text.contains("probe_lat_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("probe_lat_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("probe_lat_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("probe_lat_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("probe_lat_sum 7\n"));
        assert!(text.contains("probe_lat_count 4\n"));
        // No empty buckets beyond the highest populated one.
        assert!(!text.contains("le=\"7\""));
    }

    #[test]
    fn live_state_tracks_progress_and_events() {
        let live = LiveState::new();
        assert_eq!(live.heartbeat_age_secs(), None);
        live.set_figure("fig5");
        live.begin_wave(3);
        live.job_done();
        assert_eq!(live.progress(), (1, 1, 3));
        assert!(live.heartbeat_age_secs().is_some());
        live.watermark_ps(42_000);
        live.add_engine_events(10);
        for i in 0..5 {
            live.push_event_line(format!("{{\"seq\":{i}}}"));
        }
        let tail = live.events_since(3);
        assert_eq!(tail.body, "{\"seq\":3}\n{\"seq\":4}\n");
        assert_eq!(tail.next_seq, 5);
        assert_eq!(tail.dropped, 0);
        let status = live.status_json();
        assert!(status.contains("\"figure\":\"fig5\""));
        assert!(status.contains("\"jobs_total\":3"));
        assert!(status.contains("\"sim_time_ps\":42000"));
    }

    #[test]
    fn event_ring_drops_oldest_and_reports_gap() {
        let live = LiveState::new();
        for i in 0..(EVENT_RING_CAPACITY as u64 + 10) {
            live.push_event_line(format!("line {i}"));
        }
        let tail = live.events_since(0);
        assert_eq!(tail.dropped, 10);
        assert_eq!(tail.next_seq, EVENT_RING_CAPACITY as u64 + 10);
        assert!(tail.body.starts_with("line 10\n"));
    }

    #[test]
    fn server_round_trips_all_endpoints() {
        let live = Arc::new(LiveState::new());
        live.set_figure("table2");
        live.begin_wave(2);
        live.counter_set("probe.jobs", 7);
        // simlint::allow(obs-key, "synthetic probe line exercising the tail endpoint, not a real event stream")
        live.push_event_line("{\"kind\":\"probe\"}".to_string());
        let handle = serve("127.0.0.1:0", Arc::clone(&live)).expect("bind test server");
        let addr = handle.addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("probe_jobs 7"));

        let status = get(addr, "/status");
        assert!(status.contains("application/json"));
        assert!(status.contains("\"figure\":\"table2\""));

        let events = get(addr, "/events?since=0");
        assert!(events.contains("X-Next-Seq: 1"));
        assert!(events.contains("X-Dropped: 0"));
        // simlint::allow(obs-key, "synthetic probe line exercising the tail endpoint, not a real event stream")
        assert!(events.contains("{\"kind\":\"probe\"}"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        handle.shutdown();
        // The port is released: a fresh bind to the same address works.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok());
    }
}
