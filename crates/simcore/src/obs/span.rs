//! Scoped wall-clock span timers for profiling simulator hot paths.
//!
//! A [`SpanTimer`] wraps a registry histogram named `span.<name>_ns`;
//! each completed span records its elapsed wall-clock nanoseconds. Use
//! the RAII guard from [`SpanTimer::start`] or the closure form
//! [`SpanTimer::time`].

use std::time::Instant;

use super::metrics::{Histogram, MetricsRegistry};

/// A named wall-clock timer backed by a registry histogram.
///
/// # Example
///
/// ```
/// use simcore::obs::metrics::MetricsRegistry;
/// use simcore::obs::span::SpanTimer;
///
/// let registry = MetricsRegistry::new();
/// let timer = SpanTimer::new(&registry, "event_loop");
/// {
///     let _guard = timer.start();
///     // ... hot path work ...
/// }
/// assert_eq!(timer.samples(), 1);
/// assert!(registry.snapshot().histograms.contains_key("span.event_loop_ns"));
/// ```
#[derive(Debug, Clone)]
pub struct SpanTimer {
    hist: Histogram,
}

impl SpanTimer {
    /// Creates (or reattaches to) the timer named `name` in `registry`.
    pub fn new(registry: &MetricsRegistry, name: &str) -> Self {
        SpanTimer {
            hist: registry.histogram(&format!("span.{name}_ns")),
        }
    }

    /// Starts a span; the elapsed time records when the guard drops.
    pub fn start(&self) -> SpanGuard<'_> {
        SpanGuard {
            timer: self,
            // simlint::allow(wall-clock, "host-side profiling span: measures real elapsed time of the harness itself and only feeds span.* histograms, never sim state")
            started: Instant::now(),
        }
    }

    /// Times a closure and returns its result.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.start();
        f()
    }

    /// Number of completed spans.
    pub fn samples(&self) -> u64 {
        self.hist.count()
    }

    /// Total nanoseconds across completed spans.
    pub fn total_ns(&self) -> u64 {
        self.hist.sum()
    }

    fn record(&self, started: Instant) {
        let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.hist.record(ns);
    }
}

/// RAII guard recording the span duration on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    timer: &'a SpanTimer,
    started: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.timer.record(self.started);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let reg = MetricsRegistry::new();
        let t = SpanTimer::new(&reg, "unit");
        {
            let _g = t.start();
        }
        assert_eq!(t.samples(), 1);
    }

    #[test]
    fn closure_form_returns_value() {
        let reg = MetricsRegistry::new();
        let t = SpanTimer::new(&reg, "closure");
        let v = t.time(|| 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(t.samples(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["span.closure_ns"].count, 1);
    }

    #[test]
    fn timers_with_same_name_share_history() {
        let reg = MetricsRegistry::new();
        let a = SpanTimer::new(&reg, "shared");
        let b = SpanTimer::new(&reg, "shared");
        a.time(|| ());
        b.time(|| ());
        assert_eq!(a.samples(), 2);
    }
}
