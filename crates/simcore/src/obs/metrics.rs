//! Named metrics: counters, gauges, and log₂-bucketed histograms.
//!
//! Components obtain cheap clonable handles from a shared
//! [`MetricsRegistry`] by dotted name; the registry produces mergeable
//! [`MetricsSnapshot`]s and JSON exports. Naming convention:
//! `"<subsystem>.<quantity>[_<unit>]"` — e.g. `dmamem.wakes`,
//! `dmamem.slack.debit_epoch_ps`, `span.event_loop_ns`.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use super::json::JsonObject;

/// Number of log₂ histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, and the last bucket tops out at
/// `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter handle.
///
/// Clones share the same underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().saturating_add(n));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A point-in-time gauge handle (last written value wins).
///
/// Clones share the same underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Adjusts the value by `delta`.
    pub fn adjust(&self, delta: f64) {
        self.0.set(self.0.get() + delta);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

#[derive(Debug, Clone)]
struct HistState {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistState {
    fn default() -> Self {
        HistState {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// A streaming histogram handle with fixed log₂ buckets.
///
/// Values are `u64` in whatever unit the metric name declares
/// (picoseconds, nanoseconds, bytes, ...). Clones share state.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<RefCell<HistState>>);

/// Index of the log₂ bucket holding `value`.
///
/// Bucket 0 holds only zero; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` (0 for buckets 0 and 1).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i <= 1 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        let mut s = self.0.borrow_mut();
        s.buckets[bucket_index(value)] += 1;
        s.count += 1;
        s.sum = s.sum.saturating_add(value);
        s.min = s.min.min(value);
        s.max = s.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.0.borrow().sum
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let s = self.0.borrow();
        if s.count == 0 {
            0.0
        } else {
            s.sum as f64 / s.count as f64
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let s = self.0.borrow();
        HistogramSnapshot {
            buckets: s.buckets,
            count: s.count,
            sum: s.sum,
            min: if s.count == 0 { 0 } else { s.min },
            max: s.max,
        }
    }
}

/// A frozen view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (saturating).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Approximate quantile (`0.0 ..= 1.0`) from the bucket counts, using
    /// each bucket's lower bound (a conservative estimate).
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_lower_bound(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("count", self.count)
            .field_u64("sum", self.sum)
            .field_u64("min", self.min)
            .field_u64("max", self.max)
            .field_f64(
                "mean",
                if self.count == 0 {
                    0.0
                } else {
                    self.sum as f64 / self.count as f64
                },
            )
            .field_u64("p50", self.quantile(0.50))
            .field_u64("p99", self.quantile(0.99));
        // Sparse bucket dump: only non-empty buckets, as [lower_bound, count].
        let mut buckets = String::from("[");
        let mut first = true;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                if !first {
                    buckets.push(',');
                }
                first = false;
                buckets.push_str(&format!("[{},{}]", bucket_lower_bound(i), c));
            }
        }
        buckets.push(']');
        obj.field_raw("buckets", &buckets);
        obj.finish()
    }
}

// Metric names are `Arc<str>` so a snapshot shares them with the registry
// instead of reallocating every key — snapshots can be taken inside the
// parallel sweep's hot loop without per-key heap traffic (`Arc<str>` also
// keeps [`MetricsSnapshot`] `Send` for cross-thread aggregation, which
// `Rc`-based handles could not).
#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<Arc<str>, Counter>,
    gauges: BTreeMap<Arc<str>, Gauge>,
    histograms: BTreeMap<Arc<str>, Histogram>,
}

/// A registry of named metrics.
///
/// Cloning is cheap and shares the underlying metric set, so a registry
/// can be threaded through subsystems while the caller keeps a handle for
/// the final snapshot.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .borrow_mut()
            .counters
            .entry(Arc::from(name))
            .or_default()
            .clone()
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .borrow_mut()
            .gauges
            .entry(Arc::from(name))
            .or_default()
            .clone()
    }

    /// Gets or creates the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .borrow_mut()
            .histograms
            .entry(Arc::from(name))
            .or_default()
            .clone()
    }

    /// Freezes the current values of every registered metric. Key strings
    /// are shared with the registry (`Arc` bumps), not reallocated.
    ///
    /// Iteration order is part of the contract: every map in the returned
    /// [`MetricsSnapshot`] yields keys in ascending lexicographic order,
    /// independent of registration order. Exporters (JSON dumps, the
    /// Prometheus endpoint, golden-file tests) rely on this for
    /// byte-stable output, so it is pinned by a regression test.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (Arc::clone(k), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (Arc::clone(k), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (Arc::clone(k), v.snapshot()))
                .collect(),
        }
    }
}

/// A frozen, mergeable view of a [`MetricsRegistry`].
///
/// Names are `Arc<str>` shared with the originating registry; lookups
/// still take plain `&str` (`Arc<str>: Borrow<str>`).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<Arc<str>, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<Arc<str>, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<Arc<str>, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Convenience counter lookup.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Convenience gauge lookup.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Merges `other` into this snapshot: counters and histograms add;
    /// gauges are point-in-time, so `other`'s value wins on collision.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(Arc::clone(k)).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(Arc::clone(k), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms
                .entry(Arc::clone(k))
                .and_modify(|h| h.merge(v))
                .or_insert_with(|| v.clone());
        }
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..}}`.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (k, v) in &self.counters {
            counters.field_u64(k, *v);
        }
        let mut gauges = JsonObject::new();
        for (k, v) in &self.gauges {
            gauges.field_f64(k, *v);
        }
        let mut histograms = JsonObject::new();
        for (k, v) in &self.histograms {
            histograms.field_raw(k, &v.to_json());
        }
        let mut root = JsonObject::new();
        root.field_raw("counters", &counters.finish())
            .field_raw("gauges", &gauges.finish())
            .field_raw("histograms", &histograms.finish());
        root.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.total");
        let b = reg.counter("x.total");
        a.inc();
        b.add(4);
        assert_eq!(reg.snapshot().counter("x.total"), Some(5));
    }

    #[test]
    fn gauge_set_and_adjust() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("x.level");
        g.set(2.5);
        g.adjust(-1.0);
        assert_eq!(reg.snapshot().gauge("x.level"), Some(1.5));
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0: zero only. Bucket i >= 1: [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 0);
        assert_eq!(bucket_lower_bound(2), 2);
        assert_eq!(bucket_lower_bound(11), 1024);
        // Every value lands in the bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(v >= bucket_lower_bound(i), "v={v} i={i}");
            if i < 64 {
                assert!(v < bucket_lower_bound(i + 1).max(1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("x.lat_ns");
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1015);
        assert!((h.mean() - 203.0).abs() < 1e-9);
        let snap = &reg.snapshot().histograms["x.lat_ns"];
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.quantile(0.0), 1);
        // Bucket-resolution estimate: within the max's bucket.
        let p100 = snap.quantile(1.0);
        assert!((512..=1000).contains(&p100), "p100 {p100}");
        assert!(snap.quantile(0.5) >= 2);
    }

    #[test]
    fn snapshot_merge_semantics() {
        let a = MetricsRegistry::new();
        a.counter("c").add(2);
        a.gauge("g").set(1.0);
        a.histogram("h").record(4);
        let b = MetricsRegistry::new();
        b.counter("c").add(3);
        b.counter("only_b").inc();
        b.gauge("g").set(9.0);
        b.histogram("h").record(5);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("c"), Some(5));
        assert_eq!(merged.counter("only_b"), Some(1));
        assert_eq!(merged.gauge("g"), Some(9.0)); // gauges: last wins
        let h = &merged.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 9);
        assert_eq!((h.min, h.max), (4, 5));
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").inc();
        reg.gauge("c").set(0.5);
        reg.histogram("d").record(3);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""counters":{"a.b":1}"#), "{json}");
        assert!(json.contains(r#""gauges":{"c":0.5}"#), "{json}");
        assert!(json.contains(r#""buckets":[[2,1]]"#), "{json}");
    }

    #[test]
    fn snapshot_iterates_keys_in_sorted_order() {
        // Registration order is deliberately shuffled; the snapshot (and
        // therefore every exporter downstream of it) must still iterate
        // lexicographically. This pins the documented ordering contract.
        let reg = MetricsRegistry::new();
        for name in ["zeta.c", "alpha.c", "mid.c", "alpha.a"] {
            reg.counter(name).inc();
        }
        for name in ["z.g", "a.g"] {
            reg.gauge(name).set(1.0);
        }
        for name in ["z.h", "a.h"] {
            reg.histogram(name).record(1);
        }
        let snap = reg.snapshot();
        let counters: Vec<&str> = snap.counters.keys().map(|k| k.as_ref()).collect();
        assert_eq!(counters, ["alpha.a", "alpha.c", "mid.c", "zeta.c"]);
        let gauges: Vec<&str> = snap.gauges.keys().map(|k| k.as_ref()).collect();
        assert_eq!(gauges, ["a.g", "z.g"]);
        let hists: Vec<&str> = snap.histograms.keys().map(|k| k.as_ref()).collect();
        assert_eq!(hists, ["a.h", "z.h"]);
        // Merging preserves the invariant (BTreeMap insertion re-sorts).
        let other = MetricsRegistry::new();
        other.counter("beta.c").inc();
        let mut merged = snap;
        merged.merge(&other.snapshot());
        let counters: Vec<&str> = merged.counters.keys().map(|k| k.as_ref()).collect();
        assert_eq!(
            counters,
            ["alpha.a", "alpha.c", "beta.c", "mid.c", "zeta.c"]
        );
    }

    #[test]
    fn empty_histogram_snapshot() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("empty");
        let snap = &reg.snapshot().histograms["empty"];
        assert_eq!((snap.count, snap.min, snap.max), (0, 0, 0));
        assert_eq!(snap.quantile(0.5), 0);
    }
}
