//! Causal span tracing with Chrome/Perfetto `trace_event` export.
//!
//! A [`TraceBuffer`] records a span tree over simulated time: `begin`/`end`
//! pairs (optionally parented to an enclosing span), point-in-time
//! instants, and counter samples. Records live in a bounded ring (oldest
//! dropped first) and carry monotonic [`SimTime`] stamps, so a buffer can
//! run for the whole simulation at a fixed memory cost.
//!
//! Tracks give records a home row in the exported view: the simulator
//! registers one track per memory chip and one per I/O bus. Export
//! ([`TraceBuffer::to_chrome_json`]) emits the Chrome `trace_event` JSON
//! dialect that Perfetto and `chrome://tracing` open directly:
//!
//! * each track becomes its own process (`pid` = track index + 1) named by
//!   a `process_name` metadata event;
//! * spans on [`TrackKind::Chip`] tracks are synchronous duration events
//!   (`ph: "B"/"E"`) — chip activity phases strictly nest;
//! * spans on [`TrackKind::Bus`] tracks are nestable async events
//!   (`ph: "b"/"e"`) keyed by the *root* span's id, so a transfer and its
//!   phase children share one async row even while transfers overlap;
//! * counter samples become `ph: "C"` events and instants `ph: "i"`.
//!
//! The buffer is deterministic: identical call sequences produce
//! byte-identical JSON, which the golden-file tests rely on.
//!
//! # Bounded-memory spill mode
//!
//! A fixed ring silently truncates long runs: once full, the oldest
//! records vanish and the exported trace starts mid-story. Arming a
//! [`SpillSink`] ([`TraceBuffer::arm_spill`]) turns eviction into
//! *streaming*: displaced records are rendered and appended to the sink
//! incrementally (the Chrome JSON header goes out at arm time, the
//! footer at [`TraceBuffer::finalize_spill`]), so the file grows while
//! memory stays bounded. Only records of still-open spans stay resident
//! — a displaced `begin` whose span has not ended yet is *pinned* in a
//! side list and written immediately before its `end`, keeping every
//! span complete in the output. Loss is never silent: streamed records
//! count in [`TraceBuffer::spilled`] and failed writes count in
//! [`TraceBuffer::dropped`].

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::time::SimTime;

use super::json::JsonObject;

/// What a track represents; decides the span encoding on export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackKind {
    /// A memory chip: spans strictly nest (duration events).
    Chip,
    /// An I/O bus: spans overlap (nestable async events).
    Bus,
}

/// Identifies a registered track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(u32);

/// Identifies a span within one buffer (ids are never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId(u64);

#[derive(Debug, Clone)]
struct Track {
    name: String,
    kind: TrackKind,
}

#[derive(Debug, Clone)]
enum Record {
    Begin {
        id: SpanId,
        parent: Option<SpanId>,
        track: TrackId,
        name: &'static str,
        at: SimTime,
    },
    End {
        id: SpanId,
        at: SimTime,
    },
    Instant {
        track: TrackId,
        name: &'static str,
        at: SimTime,
    },
    Counter {
        track: TrackId,
        name: &'static str,
        at: SimTime,
        value: f64,
    },
}

impl Record {
    fn at(&self) -> SimTime {
        match *self {
            Record::Begin { at, .. }
            | Record::End { at, .. }
            | Record::Instant { at, .. }
            | Record::Counter { at, .. } => at,
        }
    }
}

/// Summary statistics from [`TraceBuffer::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Records currently held in the ring.
    pub records: usize,
    /// `begin` records seen during validation.
    pub spans: usize,
    /// Spans begun but not ended within the retained records.
    pub open: usize,
    /// Records evicted by the ring since the buffer was created.
    pub dropped: u64,
}

/// Where spilled trace records stream to (see
/// [`TraceBuffer::arm_spill`]). Clones share the underlying sink, so a
/// cloned buffer keeps appending to the same file.
#[derive(Debug, Clone)]
pub enum SpillSink {
    /// An open file, typically the `--trace-out` target.
    File(Arc<Mutex<fs::File>>),
    /// An in-memory byte buffer, for tests and tooling.
    Memory(Arc<Mutex<Vec<u8>>>),
}

impl SpillSink {
    /// Creates (truncating) `path` and returns a sink writing to it.
    pub fn file(path: &Path) -> io::Result<SpillSink> {
        Ok(SpillSink::File(Arc::new(Mutex::new(fs::File::create(
            path,
        )?))))
    }

    /// An in-memory sink plus the shared buffer to read it back from.
    pub fn memory() -> (SpillSink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (SpillSink::Memory(Arc::clone(&buf)), buf)
    }

    fn write(&self, bytes: &[u8]) -> io::Result<()> {
        match self {
            SpillSink::File(f) => f.lock().expect("spill file lock poisoned").write_all(bytes),
            SpillSink::Memory(m) => {
                m.lock()
                    .expect("spill buffer lock poisoned")
                    .extend_from_slice(bytes);
                Ok(())
            }
        }
    }
}

/// Incremental-export state for an armed spill sink.
#[derive(Debug, Clone)]
struct Spill {
    sink: SpillSink,
    /// Displaced `begin` records whose spans are still open: kept
    /// resident (bounded by the open-span count) and written right
    /// before their `end`.
    pinned: Vec<Record>,
    /// Persistent span id -> (track, name, root) map for rendering
    /// `end` records after their `begin` left the ring.
    info: BTreeMap<u64, (TrackId, &'static str, u64)>,
    /// Whether any event line (metadata or record) has been written,
    /// for `",\n"` separator placement.
    any: bool,
    /// Records streamed to the sink.
    spilled: u64,
    /// Whether the closing `]}` has been written.
    finalized: bool,
}

/// A bounded ring of span/instant/counter records over simulated time.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    tracks: Vec<Track>,
    records: VecDeque<Record>,
    capacity: usize,
    dropped: u64,
    next_span: u64,
    /// Open spans: id -> (track, name, parent).
    open: BTreeMap<u64, (TrackId, &'static str, Option<SpanId>)>,
    spill: Option<Spill>,
}

impl TraceBuffer {
    /// Creates a buffer retaining at most `capacity` records (minimum 16).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            tracks: Vec::new(),
            records: VecDeque::new(),
            capacity: capacity.max(16),
            dropped: 0,
            next_span: 0,
            open: BTreeMap::new(),
            spill: None,
        }
    }

    /// Registers a track and returns its id.
    pub fn add_track(&mut self, name: impl Into<String>, kind: TrackKind) -> TrackId {
        let id = TrackId(self.tracks.len() as u32);
        self.tracks.push(Track {
            name: name.into(),
            kind,
        });
        id
    }

    /// Number of registered tracks.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Records retained in the ring right now.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans currently open (begun, not yet ended).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// Records streamed to the armed spill sink so far.
    pub fn spilled(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.spilled)
    }

    /// True when a spill sink is armed and not yet finalized.
    pub fn spill_armed(&self) -> bool {
        self.spill.as_ref().is_some_and(|s| !s.finalized)
    }

    fn push(&mut self, record: Record) {
        if self.records.len() == self.capacity {
            if let Some(oldest) = self.records.pop_front() {
                if self.spill_armed() {
                    self.spill_record(oldest);
                } else {
                    self.dropped += 1;
                }
            }
        }
        self.records.push_back(record);
    }

    /// Streams one displaced record to the armed sink. A `begin` whose
    /// span is still open is pinned instead (written right before its
    /// `end`), so every span in the output stays complete.
    fn spill_record(&mut self, rec: Record) {
        match rec {
            Record::Begin { id, .. } if self.open.contains_key(&id.0) => {
                if let Some(sp) = &mut self.spill {
                    sp.pinned.push(rec);
                }
            }
            Record::End { id, .. } => {
                let begin = self.spill.as_mut().and_then(|sp| {
                    sp.pinned
                        .iter()
                        .position(|p| matches!(p, Record::Begin { id: pid, .. } if pid.0 == id.0))
                        .map(|pos| sp.pinned.remove(pos))
                });
                if let Some(b) = begin {
                    self.spill_line(&b);
                }
                self.spill_line(&rec);
                // The span is fully written; its render info can go.
                if let Some(sp) = &mut self.spill {
                    sp.info.remove(&id.0);
                }
            }
            _ => self.spill_line(&rec),
        }
    }

    /// Renders and appends one record line to the sink; failed writes
    /// and unrenderable ends count in `dropped` so loss is observable.
    fn spill_line(&mut self, rec: &Record) {
        let line = match &self.spill {
            Some(sp) => self.record_line(rec, &sp.info),
            None => return,
        };
        let Some(line) = line else {
            // An end whose begin predates arming: nothing to render.
            self.dropped += 1;
            return;
        };
        let Some(sp) = &mut self.spill else { return };
        let mut payload = String::new();
        if sp.any {
            payload.push_str(",\n");
        }
        sp.any = true;
        payload.push_str(&line);
        let ok = sp.sink.write(payload.as_bytes()).is_ok();
        if ok {
            sp.spilled += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Arms bounded-memory spill mode: the Chrome JSON header and track
    /// metadata go to `sink` immediately, and every record later
    /// displaced from the ring streams there instead of being dropped.
    /// Arm *after* registering all tracks (the header names them), and
    /// close the file with [`TraceBuffer::finalize_spill`].
    pub fn arm_spill(&mut self, sink: SpillSink) {
        // Seed render info from anything already retained, so arming
        // mid-run still renders those spans' ends.
        let mut info = BTreeMap::new();
        for rec in &self.records {
            if let Record::Begin {
                id,
                parent,
                track,
                name,
                ..
            } = *rec
            {
                let root = parent
                    .and_then(|p| info.get(&p.0).map(|&(_, _, root)| root))
                    .unwrap_or(id.0);
                info.insert(id.0, (track, name, root));
            }
        }
        let mut header = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut any = false;
        for (i, track) in self.tracks.iter().enumerate() {
            let mut args = JsonObject::new();
            args.field_str("name", &track.name);
            let mut obj = JsonObject::new();
            obj.field_str("name", "process_name")
                .field_str("ph", "M")
                .field_u64("pid", i as u64 + 1)
                .field_raw("args", &args.finish());
            if any {
                header.push_str(",\n");
            }
            any = true;
            header.push_str(&obj.finish());
        }
        if sink.write(header.as_bytes()).is_err() {
            self.dropped += 1;
        }
        self.spill = Some(Spill {
            sink,
            pinned: Vec::new(),
            info,
            any,
            spilled: 0,
            finalized: false,
        });
    }

    /// Flushes every retained record to the armed sink (pinned `begin`s
    /// ahead of their `end`s), appends the Chrome JSON footer, and
    /// returns the total records streamed. The ring itself is left
    /// intact. Idempotent: a second call (or a call with no sink armed)
    /// does nothing and returns the prior total.
    pub fn finalize_spill(&mut self) -> u64 {
        match &self.spill {
            Some(sp) if !sp.finalized => {}
            _ => return self.spilled(),
        }
        let retained: Vec<Record> = self.records.iter().cloned().collect();
        for rec in retained {
            self.spill_record(rec);
        }
        // Spans that never ended: write their pinned begins so the sink
        // holds every record the buffer ever saw.
        let leftover = match &mut self.spill {
            Some(sp) => std::mem::take(&mut sp.pinned),
            None => Vec::new(),
        };
        for rec in leftover {
            self.spill_line(&rec);
        }
        if let Some(sp) = &mut self.spill {
            if sp.sink.write(b"\n]}\n").is_err() {
                self.dropped += 1;
            }
            sp.finalized = true;
        }
        self.spilled()
    }

    /// Opens a span on `track` at `at`, optionally nested under `parent`.
    pub fn begin(
        &mut self,
        track: TrackId,
        name: &'static str,
        at: SimTime,
        parent: Option<SpanId>,
    ) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.open.insert(id.0, (track, name, parent));
        if let Some(sp) = &mut self.spill {
            let root = parent
                .and_then(|p| sp.info.get(&p.0).map(|&(_, _, root)| root))
                .unwrap_or(id.0);
            sp.info.insert(id.0, (track, name, root));
        }
        self.push(Record::Begin {
            id,
            parent,
            track,
            name,
            at,
        });
        id
    }

    /// Closes the span `id` at `at`. Closing an unknown or already-closed
    /// span still records the end (the ring may have evicted the begin);
    /// [`TraceBuffer::validate`] flags it when nothing was dropped.
    pub fn end(&mut self, id: SpanId, at: SimTime) {
        self.open.remove(&id.0);
        self.push(Record::End { id, at });
    }

    /// Records a point-in-time marker on `track`.
    pub fn instant(&mut self, track: TrackId, name: &'static str, at: SimTime) {
        self.push(Record::Instant { track, name, at });
    }

    /// Records a counter sample on `track`.
    pub fn counter(&mut self, track: TrackId, name: &'static str, at: SimTime, value: f64) {
        self.push(Record::Counter {
            track,
            name,
            at,
            value,
        });
    }

    /// Closes every span still open at `at`, children before parents
    /// (span ids grow monotonically, so descending id order is a valid
    /// closing order for any forest recorded through this API).
    pub fn finish(&mut self, at: SimTime) {
        let open: Vec<u64> = self.open.keys().rev().copied().collect();
        for id in open {
            self.end(SpanId(id), at);
        }
    }

    /// Checks the structural invariants of the retained records:
    /// non-decreasing timestamps, every end matching an open begin, parents
    /// open when children begin, and strict LIFO nesting on
    /// [`TrackKind::Chip`] tracks. End/parent checks are skipped when the
    /// ring has dropped records (the matching begins may be gone).
    pub fn validate(&self) -> Result<TraceStats, String> {
        let strict = self.dropped == 0 && self.spilled() == 0;
        let mut last = SimTime::ZERO;
        let mut spans = 0usize;
        // id -> (track, still open)
        let mut seen: BTreeMap<u64, (TrackId, bool)> = BTreeMap::new();
        let mut chip_stacks: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for (i, rec) in self.records.iter().enumerate() {
            let at = rec.at();
            if at < last {
                return Err(format!(
                    "record {i}: timestamp {} ps regresses below {} ps",
                    at.as_ps(),
                    last.as_ps()
                ));
            }
            last = at;
            match *rec {
                Record::Begin {
                    id, parent, track, ..
                } => {
                    spans += 1;
                    if seen.insert(id.0, (track, true)).is_some() {
                        return Err(format!("record {i}: span id {} reused", id.0));
                    }
                    if strict {
                        if let Some(p) = parent {
                            match seen.get(&p.0) {
                                Some((_, true)) => {}
                                Some((_, false)) => {
                                    return Err(format!(
                                        "record {i}: parent span {} already closed",
                                        p.0
                                    ));
                                }
                                None => {
                                    return Err(format!(
                                        "record {i}: parent span {} never began",
                                        p.0
                                    ));
                                }
                            }
                        }
                    }
                    if self.track_kind(track) == Some(TrackKind::Chip) {
                        chip_stacks.entry(track.0).or_default().push(id.0);
                    }
                }
                Record::End { id, .. } => match seen.get_mut(&id.0) {
                    Some((track, open)) => {
                        if !*open {
                            return Err(format!("record {i}: span {} ended twice", id.0));
                        }
                        *open = false;
                        let track = *track;
                        if self.track_kind(track) == Some(TrackKind::Chip) {
                            let stack = chip_stacks.entry(track.0).or_default();
                            if stack.pop() != Some(id.0) {
                                return Err(format!(
                                    "record {i}: span {} ends out of LIFO order on chip track {}",
                                    id.0, track.0
                                ));
                            }
                        }
                    }
                    None if strict => {
                        return Err(format!(
                            "record {i}: end for span {} that never began",
                            id.0
                        ));
                    }
                    None => {}
                },
                Record::Instant { .. } | Record::Counter { .. } => {}
            }
        }
        let open = seen.values().filter(|(_, open)| *open).count();
        Ok(TraceStats {
            records: self.records.len(),
            spans,
            open,
            dropped: self.dropped,
        })
    }

    fn track_kind(&self, track: TrackId) -> Option<TrackKind> {
        self.tracks.get(track.0 as usize).map(|t| t.kind)
    }

    /// Exports the Chrome `trace_event` JSON that Perfetto and
    /// `chrome://tracing` open directly. One event per line inside the
    /// `traceEvents` array; byte-identical for identical record sequences.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut any = false;
        let push = |out: &mut String, line: String, any: &mut bool| {
            if *any {
                out.push_str(",\n");
            }
            *any = true;
            out.push_str(&line);
        };
        for (i, track) in self.tracks.iter().enumerate() {
            let mut args = JsonObject::new();
            args.field_str("name", &track.name);
            let mut obj = JsonObject::new();
            obj.field_str("name", "process_name")
                .field_str("ph", "M")
                .field_u64("pid", i as u64 + 1)
                .field_raw("args", &args.finish());
            push(&mut out, obj.finish(), &mut any);
        }
        // Resolve each span id to its name, track, and root ancestor so
        // end events (and async keys) can be emitted without re-scanning.
        // When a spill sink is armed its persistent map seeds the scan:
        // begins may already have streamed out of the ring.
        let mut info: BTreeMap<u64, (TrackId, &'static str, u64)> = self
            .spill
            .as_ref()
            .map(|sp| sp.info.clone())
            .unwrap_or_default();
        for rec in &self.records {
            if let Record::Begin {
                id,
                parent,
                track,
                name,
                ..
            } = *rec
            {
                let root = parent
                    .and_then(|p| info.get(&p.0).map(|&(_, _, root)| root))
                    .unwrap_or(id.0);
                info.insert(id.0, (track, name, root));
            }
        }
        for rec in &self.records {
            // Ends whose begins were evicted have no track/name to
            // render under; skip them, as the ring export always has.
            if let Some(line) = self.record_line(rec, &info) {
                push(&mut out, line, &mut any);
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders one record as its Chrome `trace_event` JSON line,
    /// resolving span ids through `info` (id → track, name, root).
    /// Returns `None` for an end whose begin is unknown.
    fn record_line(
        &self,
        rec: &Record,
        info: &BTreeMap<u64, (TrackId, &'static str, u64)>,
    ) -> Option<String> {
        let line = match *rec {
            Record::Begin {
                id,
                track,
                name,
                at,
                ..
            } => {
                let mut obj = JsonObject::new();
                obj.field_str("name", name);
                match self.track_kind(track) {
                    Some(TrackKind::Bus) => {
                        let root = info.get(&id.0).map(|&(_, _, r)| r).unwrap_or(id.0);
                        obj.field_str("cat", "transfer")
                            .field_str("ph", "b")
                            .field_str("id", &format!("{root:#x}"));
                    }
                    _ => {
                        obj.field_str("cat", "chip").field_str("ph", "B");
                    }
                }
                self.stamp(&mut obj, track, at);
                obj.finish()
            }
            Record::End { id, at } => {
                let &(track, name, root) = info.get(&id.0)?;
                let mut obj = JsonObject::new();
                obj.field_str("name", name);
                match self.track_kind(track) {
                    Some(TrackKind::Bus) => {
                        obj.field_str("cat", "transfer")
                            .field_str("ph", "e")
                            .field_str("id", &format!("{root:#x}"));
                    }
                    _ => {
                        obj.field_str("cat", "chip").field_str("ph", "E");
                    }
                }
                self.stamp(&mut obj, track, at);
                obj.finish()
            }
            Record::Instant { track, name, at } => {
                let mut obj = JsonObject::new();
                obj.field_str("name", name)
                    .field_str("ph", "i")
                    .field_str("s", "t");
                self.stamp(&mut obj, track, at);
                obj.finish()
            }
            Record::Counter {
                track,
                name,
                at,
                value,
            } => {
                let mut args = JsonObject::new();
                args.field_f64("value", value);
                let mut obj = JsonObject::new();
                obj.field_str("name", name).field_str("ph", "C");
                self.stamp(&mut obj, track, at);
                obj.field_raw("args", &args.finish());
                obj.finish()
            }
        };
        Some(line)
    }

    /// Appends the shared `ts`/`pid`/`tid` fields for a record on `track`.
    fn stamp(&self, obj: &mut JsonObject, track: TrackId, at: SimTime) {
        obj.field_f64("ts", at.as_ps() as f64 / 1e6)
            .field_u64("pid", track.0 as u64 + 1)
            .field_u64("tid", 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    #[test]
    fn spans_balance_and_validate() {
        let mut buf = TraceBuffer::new(1024);
        let chip = buf.add_track("chip 0", TrackKind::Chip);
        let bus = buf.add_track("bus 0", TrackKind::Bus);
        let root = buf.begin(bus, "transfer", t(0), None);
        let child = buf.begin(bus, "wakeup", t(10), Some(root));
        let act = buf.begin(chip, "serving", t(20), None);
        buf.counter(chip, "power_mw", t(20), 300.0);
        buf.end(act, t(30));
        buf.end(child, t(30));
        buf.instant(bus, "released", t(30));
        buf.end(root, t(40));
        let stats = buf.validate().expect("valid trace");
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.open, 0);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn finish_closes_children_before_parents() {
        let mut buf = TraceBuffer::new(64);
        let bus = buf.add_track("bus 0", TrackKind::Bus);
        let root = buf.begin(bus, "transfer", t(0), None);
        let _child = buf.begin(bus, "drain", t(5), Some(root));
        assert_eq!(buf.open_spans(), 2);
        buf.finish(t(9));
        assert_eq!(buf.open_spans(), 0);
        let stats = buf.validate().expect("valid trace");
        assert_eq!(stats.open, 0);
    }

    #[test]
    fn timestamp_regression_is_an_error() {
        let mut buf = TraceBuffer::new(64);
        let chip = buf.add_track("chip 0", TrackKind::Chip);
        buf.instant(chip, "a", t(100));
        buf.instant(chip, "b", t(50));
        assert!(buf.validate().is_err());
    }

    #[test]
    fn chip_spans_must_nest_lifo() {
        let mut buf = TraceBuffer::new(64);
        let chip = buf.add_track("chip 0", TrackKind::Chip);
        let a = buf.begin(chip, "serving", t(0), None);
        let b = buf.begin(chip, "active_idle", t(1), None);
        buf.end(a, t(2)); // closes a before b: out of LIFO order
        buf.end(b, t(3));
        assert!(buf.validate().is_err());
    }

    #[test]
    fn bus_spans_may_overlap() {
        let mut buf = TraceBuffer::new(64);
        let bus = buf.add_track("bus 0", TrackKind::Bus);
        let a = buf.begin(bus, "transfer", t(0), None);
        let b = buf.begin(bus, "transfer", t(1), None);
        buf.end(a, t(2));
        buf.end(b, t(3));
        assert!(buf.validate().is_ok());
    }

    #[test]
    fn ring_drops_oldest_and_relaxes_validation() {
        let mut buf = TraceBuffer::new(16);
        let chip = buf.add_track("chip 0", TrackKind::Chip);
        for i in 0..40 {
            let s = buf.begin(chip, "serving", t(i * 2), None);
            buf.end(s, t(i * 2 + 1));
        }
        assert_eq!(buf.len(), 16);
        assert_eq!(buf.dropped(), 64); // 80 records, 16 retained
        let stats = buf.validate().expect("drop-relaxed validation");
        assert_eq!(stats.dropped, 64);
    }

    #[test]
    fn double_end_is_an_error() {
        let mut buf = TraceBuffer::new(64);
        let chip = buf.add_track("chip 0", TrackKind::Chip);
        let a = buf.begin(chip, "serving", t(0), None);
        buf.end(a, t(1));
        buf.end(a, t(2));
        assert!(buf.validate().is_err());
    }

    #[test]
    fn chrome_export_shape() {
        let mut buf = TraceBuffer::new(64);
        let chip = buf.add_track("chip 0", TrackKind::Chip);
        let bus = buf.add_track("io bus 0", TrackKind::Bus);
        let root = buf.begin(bus, "transfer", t(1_000_000), None);
        let child = buf.begin(bus, "wakeup", t(2_000_000), Some(root));
        let act = buf.begin(chip, "serving", t(2_000_000), None);
        buf.counter(chip, "power_mw", t(2_000_000), 300.0);
        buf.end(act, t(3_000_000));
        buf.end(child, t(3_000_000));
        buf.end(root, t(4_000_000));
        let json = buf.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(json.contains(r#""ph":"M""#));
        assert!(json.contains(r#""name":"io bus 0""#));
        assert!(json.contains(r#""ph":"b""#));
        assert!(json.contains(r#""ph":"e""#));
        assert!(json.contains(r#""ph":"B""#));
        assert!(json.contains(r#""ph":"E""#));
        assert!(json.contains(r#""ph":"C""#));
        // Child async events carry the root's id.
        assert_eq!(json.matches(r#""id":"0x0""#).count(), 4);
        // Timestamps are microseconds.
        assert!(json.contains(r#""ts":1"#));
        // Deterministic: a second export is byte-identical.
        assert_eq!(json, buf.to_chrome_json());
    }

    fn spill_text(buf: &Arc<Mutex<Vec<u8>>>) -> String {
        String::from_utf8(buf.lock().unwrap().clone()).unwrap()
    }

    #[test]
    fn ample_capacity_spill_matches_ring_export() {
        // With no overflow, the finalized spill file must be byte-identical
        // to the in-memory export: spill mode only changes *where* records
        // live, never what the trace says.
        let build = |spill: Option<SpillSink>| {
            let mut buf = TraceBuffer::new(1024);
            let chip = buf.add_track("chip 0", TrackKind::Chip);
            let bus = buf.add_track("io bus 0", TrackKind::Bus);
            if let Some(sink) = spill {
                buf.arm_spill(sink);
            }
            let root = buf.begin(bus, "transfer", t(1_000_000), None);
            let child = buf.begin(bus, "wakeup", t(2_000_000), Some(root));
            let act = buf.begin(chip, "serving", t(2_000_000), None);
            buf.counter(chip, "power_mw", t(2_000_000), 300.0);
            buf.instant(bus, "released", t(2_500_000));
            buf.end(act, t(3_000_000));
            buf.end(child, t(3_000_000));
            buf.end(root, t(4_000_000));
            buf.finish(t(5_000_000));
            buf
        };
        let plain = build(None).to_chrome_json();
        let (sink, bytes) = SpillSink::memory();
        let mut spilled = build(Some(sink));
        let n = spilled.finalize_spill();
        assert_eq!(spill_text(&bytes), plain);
        assert_eq!(n, spilled.spilled());
        assert_eq!(spilled.dropped(), 0);
    }

    #[test]
    fn overflow_streams_instead_of_dropping() {
        let (sink, bytes) = SpillSink::memory();
        let mut buf = TraceBuffer::new(16);
        let chip = buf.add_track("chip 0", TrackKind::Chip);
        buf.arm_spill(sink);
        for i in 0..40 {
            let s = buf.begin(chip, "serving", t(i * 2), None);
            buf.end(s, t(i * 2 + 1));
        }
        // 80 records, 16 retained: the displaced 64 streamed out.
        assert_eq!(buf.dropped(), 0);
        assert_eq!(buf.spilled(), 64);
        buf.finish(t(100));
        assert_eq!(buf.finalize_spill(), 80);
        let text = spill_text(&bytes);
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(text.ends_with("\n]}\n"));
        assert_eq!(text.matches(r#""ph":"B""#).count(), 40);
        assert_eq!(text.matches(r#""ph":"E""#).count(), 40);
        // The streamed file parses as one JSON document.
        assert!(super::super::json::parse(&text).is_ok());
    }

    #[test]
    fn open_span_begins_are_pinned_until_their_end() {
        let (sink, bytes) = SpillSink::memory();
        let mut buf = TraceBuffer::new(16);
        let bus = buf.add_track("io bus 0", TrackKind::Bus);
        buf.arm_spill(sink);
        // One long-lived root span; enough short spans to displace its
        // begin from the ring many times over.
        let root = buf.begin(bus, "transfer", t(0), None);
        let mut ids = Vec::new();
        for i in 1..40 {
            ids.push(buf.begin(bus, "wakeup", t(i), Some(root)));
        }
        for (i, id) in ids.into_iter().enumerate() {
            buf.end(id, t(50 + i as u64));
        }
        // The root's begin was displaced while open: not yet written.
        let before = spill_text(&bytes);
        assert!(!before.contains(r#""name":"transfer""#), "{before}");
        buf.end(root, t(200));
        buf.finalize_spill();
        let text = spill_text(&bytes);
        // Begin appears exactly once, before its end.
        let begin_at = text.find(r#""name":"transfer","cat":"transfer","ph":"b""#);
        let end_at = text.find(r#""name":"transfer","cat":"transfer","ph":"e""#);
        let (begin_at, end_at) = (begin_at.expect("root begin"), end_at.expect("root end"));
        assert!(begin_at < end_at);
        assert!(super::super::json::parse(&text).is_ok());
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn spill_relaxes_validation_like_drops_do() {
        let (sink, _bytes) = SpillSink::memory();
        let mut buf = TraceBuffer::new(16);
        let chip = buf.add_track("chip 0", TrackKind::Chip);
        buf.arm_spill(sink);
        for i in 0..40 {
            let s = buf.begin(chip, "serving", t(i * 2), None);
            buf.end(s, t(i * 2 + 1));
        }
        let stats = buf.validate().expect("spill-relaxed validation");
        assert_eq!(stats.dropped, 0);
        assert!(buf.spilled() > 0);
    }

    #[test]
    fn export_skips_ends_with_evicted_begins() {
        let mut buf = TraceBuffer::new(16);
        let chip = buf.add_track("chip 0", TrackKind::Chip);
        let mut ids = Vec::new();
        for i in 0..20 {
            ids.push(buf.begin(chip, "serving", t(i), None));
        }
        for (i, id) in ids.into_iter().enumerate() {
            buf.end(id, t(100 + i as u64));
        }
        // Some begins were evicted; export must not panic and stays valid JSON.
        let json = buf.to_chrome_json();
        assert!(json.ends_with("]}\n"));
    }
}
