//! A minimal JSON writer (no external dependencies).
//!
//! The observability exporters only ever *write* JSON — flat objects of
//! strings, numbers, and booleans, plus pre-rendered nested values — so
//! this module provides exactly that: an append-only object builder with
//! correct string escaping and IEEE-754-safe number formatting.

/// Builds one JSON object by appending fields in order.
///
/// # Example
///
/// ```
/// use simcore::obs::json::JsonObject;
///
/// let mut obj = JsonObject::new();
/// obj.field_str("kind", "wake");
/// obj.field_u64("chip", 3);
/// assert_eq!(obj.finish(), r#"{"kind":"wake","chip":3}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Appends a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a float field. Non-finite values render as `null` (JSON has
    /// no NaN/Infinity).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format_f64(value));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Appends a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a pre-rendered JSON value verbatim (for nesting objects or
    /// arrays built elsewhere). The caller guarantees `raw` is valid JSON.
    pub fn field_raw(&mut self, key: &str, raw: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns its text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Formats a finite float as a JSON number (Rust's shortest round-trip
/// representation; integer-looking output like `4` is still valid JSON).
fn format_f64(value: f64) -> String {
    format!("{value}")
}

/// Escapes `s` into `buf` per RFC 8259 (quote, backslash, control chars).
pub fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

/// Renders a string map as a JSON object with raw (pre-rendered) values,
/// preserving iteration order.
pub fn object_from_raw<'a>(pairs: impl Iterator<Item = (&'a str, String)>) -> String {
    let mut obj = JsonObject::new();
    for (k, v) in pairs {
        obj.field_raw(k, &v);
    }
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_render_in_order() {
        let mut obj = JsonObject::new();
        obj.field_str("a", "x")
            .field_u64("b", 7)
            .field_i64("c", -2)
            .field_bool("d", true);
        assert_eq!(obj.finish(), r#"{"a":"x","b":7,"c":-2,"d":true}"#);
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn strings_are_escaped() {
        let mut obj = JsonObject::new();
        obj.field_str("k", "a\"b\\c\nd\te\u{1}");
        assert_eq!(obj.finish(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
    }

    #[test]
    fn floats_and_non_finite() {
        let mut obj = JsonObject::new();
        obj.field_f64("x", 1.5)
            .field_f64("y", f64::NAN)
            .field_f64("z", f64::INFINITY);
        assert_eq!(obj.finish(), r#"{"x":1.5,"y":null,"z":null}"#);
    }

    #[test]
    fn raw_nesting() {
        let mut inner = JsonObject::new();
        inner.field_u64("n", 1);
        let mut outer = JsonObject::new();
        outer.field_raw("inner", &inner.finish());
        assert_eq!(outer.finish(), r#"{"inner":{"n":1}}"#);
    }
}
