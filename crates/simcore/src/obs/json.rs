//! A minimal JSON writer and parser (no external dependencies).
//!
//! The observability exporters write JSON — flat objects of strings,
//! numbers, and booleans, plus pre-rendered nested values — so this module
//! provides an append-only object builder with correct string escaping and
//! IEEE-754-safe number formatting. The trace tooling (`trace-report
//! --check`, the attribution differ) also needs to *re-read* those
//! exports, so a matching recursive-descent parser ([`parse`]) lives here
//! too. The parser accepts standard RFC 8259 JSON; it is meant for
//! machine-written inputs, not adversarial ones.

/// Builds one JSON object by appending fields in order.
///
/// # Example
///
/// ```
/// use simcore::obs::json::JsonObject;
///
/// let mut obj = JsonObject::new();
/// obj.field_str("kind", "wake");
/// obj.field_u64("chip", 3);
/// assert_eq!(obj.finish(), r#"{"kind":"wake","chip":3}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Appends a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a float field. Non-finite values render as `null` (JSON has
    /// no NaN/Infinity).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format_f64(value));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Appends a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a pre-rendered JSON value verbatim (for nesting objects or
    /// arrays built elsewhere). The caller guarantees `raw` is valid JSON.
    pub fn field_raw(&mut self, key: &str, raw: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns its text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Formats a finite float as a JSON number (Rust's shortest round-trip
/// representation; integer-looking output like `4` is still valid JSON).
fn format_f64(value: f64) -> String {
    format!("{value}")
}

/// Escapes `s` into `buf` per RFC 8259 (quote, backslash, control chars).
pub fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

/// Renders a string map as a JSON object with raw (pre-rendered) values,
/// preserving iteration order.
pub fn object_from_raw<'a>(pairs: impl Iterator<Item = (&'a str, String)>) -> String {
    let mut obj = JsonObject::new();
    for (k, v) in pairs {
        obj.field_raw(k, &v);
    }
    obj.finish()
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` for other variants.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value of a number; `None` for other variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value of a string; `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// content is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so bytes
                    // are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_render_in_order() {
        let mut obj = JsonObject::new();
        obj.field_str("a", "x")
            .field_u64("b", 7)
            .field_i64("c", -2)
            .field_bool("d", true);
        assert_eq!(obj.finish(), r#"{"a":"x","b":7,"c":-2,"d":true}"#);
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn strings_are_escaped() {
        let mut obj = JsonObject::new();
        obj.field_str("k", "a\"b\\c\nd\te\u{1}");
        assert_eq!(obj.finish(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
    }

    #[test]
    fn floats_and_non_finite() {
        let mut obj = JsonObject::new();
        obj.field_f64("x", 1.5)
            .field_f64("y", f64::NAN)
            .field_f64("z", f64::INFINITY);
        assert_eq!(obj.finish(), r#"{"x":1.5,"y":null,"z":null}"#);
    }

    #[test]
    fn raw_nesting() {
        let mut inner = JsonObject::new();
        inner.field_u64("n", 1);
        let mut outer = JsonObject::new();
        outer.field_raw("inner", &inner.finish());
        assert_eq!(outer.finish(), r#"{"inner":{"n":1}}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut obj = JsonObject::new();
        obj.field_str("kind", "wake\n\"q\"")
            .field_u64("chip", 3)
            .field_f64("mj", 1.25)
            .field_bool("ok", true)
            .field_f64("nan", f64::NAN);
        let v = parse(&obj.finish()).expect("parses");
        assert_eq!(
            v.get("kind").and_then(JsonValue::as_str),
            Some("wake\n\"q\"")
        );
        assert_eq!(v.get("chip").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(v.get("mj").and_then(JsonValue::as_f64), Some(1.25));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("nan"), Some(&JsonValue::Null));
    }

    #[test]
    fn parse_nested_arrays_and_objects() {
        let v = parse(r#" {"a":[1,2.5,-3e2],"b":{"c":[]},"d":[{"e":null}]} "#).expect("parses");
        let a = v.get("a").and_then(JsonValue::as_array).expect("array");
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&JsonValue::Array(vec![]))
        );
        assert_eq!(
            v.get("d").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn parse_unicode_escapes() {
        let v = parse("\"a\\u0041\\t\"").expect("parses");
        assert_eq!(v.as_str(), Some("aA\t"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1}x"#).is_err());
        assert!(parse("tru").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }
}
