//! Deterministic future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::prof::QueueStats;
use crate::SimTime;

/// One scheduled entry: ordered by time, then by insertion sequence so that
/// simultaneous events pop in FIFO order (determinism).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list for discrete-event simulation.
///
/// Events pop in nondecreasing time order; ties break in scheduling (FIFO)
/// order, which keeps simulations deterministic regardless of heap internals.
///
/// # Example
///
/// ```
/// use simcore::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// let t1 = SimTime::ZERO + SimDuration::from_ns(1);
/// q.schedule(t1, "b");
/// q.schedule(t1, "c");
/// q.schedule(SimTime::ZERO, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    stats: QueueStats,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            stats: QueueStats::default(),
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is allowed at the type level; simulators that
    /// must forbid it assert on pop (see [`EventQueue::pop`] ordering
    /// guarantee).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.stats.pushes += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.heap.len() as u64);
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = self.heap.pop().map(|e| (e.time, e.event));
        if popped.is_some() {
            self.stats.pops += 1;
        }
        popped
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    ///
    /// Lifetime counters ([`EventQueue::stats`]) are kept: clearing is
    /// part of a queue's history, not a new queue.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Lifetime push/pop/depth counters (deterministic: they derive only
    /// from the schedule/pop call sequence).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at(30), 3);
        q.schedule(at(10), 1);
        q.schedule(at(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(at(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expect: Vec<i32> = (0..100).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(at(7), ());
        q.schedule(at(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(at(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        let mut q = EventQueue::new();
        q.schedule(at(1), "a");
        q.schedule(at(1), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(at(1), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn stats_track_pushes_pops_and_depth() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(at(i), i);
        }
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(at(9), 9);
        let s = q.stats();
        assert_eq!(s.pushes, 6);
        assert_eq!(s.pops, 1);
        assert_eq!(s.max_depth, 5);
        q.clear();
        assert_eq!(q.stats(), s, "clear keeps lifetime counters");
        assert!(q.pop().is_none());
        assert_eq!(q.stats().pops, 1, "empty pop does not count");
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }
}
