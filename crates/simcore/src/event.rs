//! Deterministic future-event list.
//!
//! Two interchangeable implementations live here:
//!
//! * [`EventQueue`] — the default: a calendar (timing-wheel) queue with a
//!   one-entry fast slot and an overflow heap for far-future events.
//!   Designed for the simulators' shallow, mostly-monotone schedules
//!   (calendar depth tops out in the low hundreds while pushes run to
//!   tens of millions).
//! * [`HeapQueue`] — the reference `BinaryHeap` implementation the wheel
//!   is proven against (`crates/simcore/tests/queue_equiv.rs` drives both
//!   with identical interleavings and asserts identical pop sequences).
//!
//! Both pop in (time, then insertion-sequence) order. Because that order
//! is **total** — no two entries ever share a `(time, seq)` key — any
//! correct priority structure pops the exact same sequence, which is what
//! makes the wheel a drop-in replacement: determinism does not depend on
//! heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::prof::QueueStats;
use crate::slab::Slab;
use crate::SimTime;

/// Identifies the pop-order semantics of the default [`EventQueue`].
///
/// Engine baselines record this so a perf gate can distinguish "queue
/// implementation changed deliberately (re-record)" from silent counter
/// drift: queue-shape counters (pushes, pops, max depth) are only
/// comparable between reports recorded under the same kind.
pub const QUEUE_KIND: &str = "calendar-wheel-v1";

/// The queue kind of [`HeapQueue`] (and of baselines recorded before the
/// wheel existed, which omitted the field).
pub const HEAP_QUEUE_KIND: &str = "binary-heap-v1";

/// One scheduled entry: ordered by time, then by insertion sequence so that
/// simultaneous events pop in FIFO order (determinism).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference future-event list: a binary heap ordered by
/// `(time, seq)`.
///
/// Kept as the oracle for the wheel's equivalence suite and the
/// `queue` microbench; simulators use [`EventQueue`].
#[derive(Default)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    stats: QueueStats,
    window_max_depth: u64,
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            stats: QueueStats::default(),
            window_max_depth: 0,
        }
    }

    /// The pop-order schema label of this implementation.
    pub fn queue_kind(&self) -> &'static str {
        HEAP_QUEUE_KIND
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.stats.pushes += 1;
        let depth = self.heap.len() as u64;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        self.window_max_depth = self.window_max_depth.max(depth);
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = self.heap.pop().map(|e| (e.time, e.event));
        if popped.is_some() {
            self.stats.pops += 1;
        }
        popped
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The `(time, seq)` key of the earliest pending event, if any.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(Entry::key)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events (lifetime counters kept; the depth
    /// window resets — see [`HeapQueue::reset_window`]).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.window_max_depth = 0;
    }

    /// Lifetime push/pop/depth counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// High-water pending depth since the last [`reset_window`] (or
    /// construction / [`clear`]).
    ///
    /// [`reset_window`]: HeapQueue::reset_window
    /// [`clear`]: HeapQueue::clear
    pub fn window_max_depth(&self) -> u64 {
        self.window_max_depth
    }

    /// Starts a new depth window at the current depth.
    pub fn reset_window(&mut self) {
        self.window_max_depth = self.heap.len() as u64;
    }
}

impl<E> std::fmt::Debug for HeapQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

/// Buckets per wheel revolution (power of two: slot = abs & mask).
const SLOTS: usize = 1024;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// log2 picoseconds per bucket: 1.024 ns. Sized so the workspace's hot
/// schedules (memory service 2.5 ns, bus slots 7.52 ns, standby
/// thresholds ~19 ns) land in *distinct* buckets — the recorded fig5
/// depth is ~125 events packed into a few tens of nanoseconds, so a
/// coarser quantum degenerates the per-pop bucket min-scan into a scan
/// of the whole calendar. Far events (wake transitions at 6 µs, epoch
/// ticks, trace gaps) spill past the ~1 µs horizon into the overflow
/// heap, which is O(log n) on a set that stays tiny.
const QUANTUM_BITS: u32 = 10;
/// Occupancy bitmap words (64 slots per word).
const WORDS: usize = SLOTS / 64;
/// Null link in the per-bucket lists.
const NIL_NODE: u32 = u32::MAX;

/// One wheel-resident entry plus its intrusive bucket-list link. Nodes
/// live in a [`Slab`] arena so the whole calendar stays in a few cache
/// lines of contiguous memory (per-bucket `Vec`s at depth ~50 spend
/// their time pointer-chasing 1024 scattered allocations).
struct Node<E> {
    entry: Entry<E>,
    next: u32,
}

/// Position and key of the wheel's current minimum entry.
#[derive(Clone, Copy)]
struct MinPos {
    time: SimTime,
    seq: u64,
    slot: u32,
    node: u32,
}

impl MinPos {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A future-event list for discrete-event simulation: a calendar
/// (timing-wheel) queue.
///
/// Events pop in nondecreasing time order; ties break in scheduling (FIFO)
/// order, which keeps simulations deterministic regardless of queue
/// internals. The pop sequence is provably identical to [`HeapQueue`]'s
/// because `(time, seq)` is a total order (see the module docs).
///
/// Internally: a one-entry **fast slot** absorbs the schedule-then-pop
/// pattern the simulators' lockstep phases produce; everything else lands
/// in one of 1024 time-quantized **buckets** (intrusive lists threaded
/// through one slab arena, min-scanned on pop — calendar depth stays in
/// the low hundreds, so buckets hold a handful of entries at most and
/// the arena fits in L1); events beyond the wheel's horizon wait in
/// an **overflow heap** and are drained into the wheel as the window
/// advances. Events scheduled in the past clamp into the current bucket,
/// where the min-scan still yields them first.
///
/// # Example
///
/// ```
/// use simcore::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// let t1 = SimTime::ZERO + SimDuration::from_ns(1);
/// q.schedule(t1, "b");
/// q.schedule(t1, "c");
/// q.schedule(SimTime::ZERO, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
pub struct EventQueue<E> {
    /// Fast slot: holds one entry, claimed by the first schedule into an
    /// empty slot. Popping compares it against the wheel minimum, so it
    /// is pure mechanism — never ordering policy.
    fast: Option<Entry<E>>,
    /// Arena holding every wheel-resident entry; buckets are intrusive
    /// singly-linked lists through it (`heads[slot]` → `Node::next`).
    arena: Slab<Node<E>>,
    heads: Vec<u32>,
    occupancy: [u64; WORDS],
    /// Second bitmap level: bit `w` set iff `occupancy[w] != 0`, so the
    /// next-occupied-bucket scan is O(1) instead of a word walk.
    summary: u16,
    /// Absolute bucket index (time >> QUANTUM_BITS) the window starts at;
    /// a lower bound on every wheel-resident entry's bucket. The window
    /// covers `[cur_abs, cur_abs + SLOTS)`, a bijection onto slots.
    cur_abs: u64,
    wheel_len: usize,
    /// Cached wheel minimum; `None` iff `wheel_len == 0`.
    wheel_min: Option<MinPos>,
    overflow: BinaryHeap<Entry<E>>,
    next_seq: u64,
    stats: QueueStats,
    window_max_depth: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            fast: None,
            arena: Slab::new(),
            heads: vec![NIL_NODE; SLOTS],
            occupancy: [0; WORDS],
            summary: 0,
            cur_abs: 0,
            wheel_len: 0,
            wheel_min: None,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            stats: QueueStats::default(),
            window_max_depth: 0,
        }
    }

    /// The pop-order schema label of this implementation (recorded in
    /// engine baselines; see [`QUEUE_KIND`]).
    pub fn queue_kind(&self) -> &'static str {
        QUEUE_KIND
    }

    /// Allocates the next insertion sequence number without scheduling
    /// anything.
    ///
    /// Engines that keep side lanes of deterministic events (e.g. one
    /// armed policy timer per chip, overwritten instead of queued) draw
    /// their sequence numbers here so a merged pop by `(time, seq)`
    /// across queue and lanes reproduces the exact total order a single
    /// queue would have produced.
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is allowed at the type level; simulators that
    /// must forbid it assert on pop (see [`EventQueue::pop`] ordering
    /// guarantee).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.pushes += 1;
        let entry = Entry { time, seq, event };
        if self.fast.is_none() {
            self.fast = Some(entry);
        } else {
            self.insert_wheel(entry);
        }
        let depth = self.len() as u64;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        self.window_max_depth = self.window_max_depth.max(depth);
    }

    #[inline]
    fn insert_wheel(&mut self, entry: Entry<E>) {
        let abs = entry.time.as_ps() >> QUANTUM_BITS;
        if abs >= self.cur_abs + SLOTS as u64 {
            self.overflow.push(entry);
            return;
        }
        // Past-time schedules clamp into the window's first bucket; the
        // per-bucket min-scan still pops them first.
        let slot = (abs.max(self.cur_abs) & SLOT_MASK) as usize;
        let key = entry.key();
        let node = self.arena.insert(Node {
            entry,
            next: self.heads[slot],
        });
        self.heads[slot] = node;
        self.occupancy[slot >> 6] |= 1u64 << (slot & 63);
        self.summary |= 1u16 << (slot >> 6);
        self.wheel_len += 1;
        match &self.wheel_min {
            Some(m) if m.key() <= key => {}
            _ => {
                self.wheel_min = Some(MinPos {
                    time: key.0,
                    seq: key.1,
                    slot: slot as u32,
                    node,
                });
            }
        }
    }

    /// First nonempty slot at or after the window start, as
    /// (slot, circular distance). O(1): the start word's high bits, then
    /// the [`summary`](Self::summary) picks the next nonempty word
    /// directly. Every wheel entry lives within one revolution of the
    /// window start (inserts clamp/overflow to guarantee it), so any set
    /// bit found cyclically is in-window.
    fn next_occupied(&self) -> Option<(usize, usize)> {
        if self.summary == 0 {
            return None;
        }
        let start = (self.cur_abs & SLOT_MASK) as usize;
        let sw = start >> 6;
        let sb = start & 63;
        // Bits at or after the window start within its own word.
        let first = self.occupancy[sw] >> sb;
        if first != 0 {
            let off = first.trailing_zeros() as usize;
            return Some(((start + off) & (SLOTS - 1), off));
        }
        let all = u32::from(self.summary);
        let after = all & !((1u32 << (sw + 1)) - 1);
        let before = all & ((1u32 << sw) - 1);
        let (w, word) = if after != 0 {
            let w = after.trailing_zeros() as usize;
            (w, self.occupancy[w])
        } else if before != 0 {
            let w = before.trailing_zeros() as usize;
            (w, self.occupancy[w])
        } else {
            // Only the start word is nonempty, and only below `sb`:
            // those slots sit a near-full revolution ahead.
            (sw, self.occupancy[sw] & ((1u64 << sb) - 1))
        };
        debug_assert_ne!(word, 0, "summary bit set for empty word");
        let off = word.trailing_zeros() as usize;
        let slot = (w << 6) | off;
        let dist = (slot + SLOTS - start) & (SLOTS - 1);
        debug_assert_ne!(dist, 0, "start slot handled by the fast path");
        Some((slot, dist))
    }

    /// Recomputes the cached wheel minimum (bitmap scan + bucket
    /// min-scan) and advances the window start to its bucket.
    fn recompute_wheel_min(&mut self) {
        if self.wheel_len == 0 {
            self.wheel_min = None;
            return;
        }
        let (slot, dist) = self
            .next_occupied()
            // simlint::allow(panic-path, "wheel_len counts exactly the entries in buckets; an empty wheel returned above")
            .expect("wheel_len > 0 but no occupied bucket");
        self.cur_abs += dist as u64;
        let mut cur = self.heads[slot];
        debug_assert_ne!(cur, NIL_NODE, "occupied bucket has entries");
        let mut best = cur;
        let mut best_key = self.arena[cur].entry.key();
        cur = self.arena[cur].next;
        while cur != NIL_NODE {
            let node = &self.arena[cur];
            let k = node.entry.key();
            if k < best_key {
                best_key = k;
                best = cur;
            }
            cur = node.next;
        }
        self.wheel_min = Some(MinPos {
            time: best_key.0,
            seq: best_key.1,
            slot: slot as u32,
            node: best,
        });
    }

    /// Moves overflow entries that fall inside the (possibly advanced)
    /// window into the wheel. Called when the overflow minimum undercuts
    /// the wheel minimum — which can only happen after the window
    /// advanced past an overflow entry's bucket.
    fn drain_overflow(&mut self) {
        if self.wheel_len == 0 {
            if let Some(top) = self.overflow.peek() {
                self.cur_abs = top.time.as_ps() >> QUANTUM_BITS;
            }
        }
        let horizon = self.cur_abs + SLOTS as u64;
        while let Some(top) = self.overflow.peek() {
            if top.time.as_ps() >> QUANTUM_BITS >= horizon {
                break;
            }
            // simlint::allow(panic-path, "pop follows a successful peek on the same heap with exclusive access")
            let entry = self.overflow.pop().expect("peeked entry");
            self.insert_wheel(entry);
        }
    }

    /// True when the overflow minimum must be considered before the
    /// wheel minimum (wheel empty, or overflow undercuts it).
    #[inline]
    fn overflow_undercuts(&self) -> bool {
        match (self.overflow.peek(), &self.wheel_min) {
            (Some(top), Some(m)) => top.key() < m.key(),
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.overflow_undercuts() {
            self.drain_overflow();
            self.recompute_wheel_min();
        }
        let fast_key = self.fast.as_ref().map(Entry::key);
        let wheel_key = self.wheel_min.as_ref().map(MinPos::key);
        let popped = match (fast_key, wheel_key) {
            (None, None) => return None,
            // simlint::allow(panic-path, "fast_key was read from this very slot two lines up")
            (Some(_), None) => self.fast.take().expect("fast key implies entry"),
            (fk, Some(wk)) => {
                if fk.is_some_and(|k| k < wk) {
                    // simlint::allow(panic-path, "fast_key was read from this very slot above")
                    self.fast.take().expect("fast key implies entry")
                } else {
                    self.pop_wheel_min()
                }
            }
        };
        self.stats.pops += 1;
        Some((popped.time, popped.event))
    }

    fn pop_wheel_min(&mut self) -> Entry<E> {
        // simlint::allow(panic-path, "callers check wheel_min before dispatching here; recompute_wheel_min restores it after")
        let m = self.wheel_min.take().expect("wheel minimum cached");
        let slot = m.slot as usize;
        // Unlink the minimum from its bucket list (buckets hold a
        // handful of entries, so the prev-walk is a few arena reads).
        let head = self.heads[slot];
        if head == m.node {
            self.heads[slot] = self.arena[head].next;
        } else {
            let mut prev = head;
            while self.arena[prev].next != m.node {
                prev = self.arena[prev].next;
            }
            self.arena[prev].next = self.arena[m.node].next;
        }
        let node = self.arena.remove(m.node);
        if self.heads[slot] == NIL_NODE {
            self.occupancy[slot >> 6] &= !(1u64 << (slot & 63));
            if self.occupancy[slot >> 6] == 0 {
                self.summary &= !(1u16 << (slot >> 6));
            }
        }
        self.wheel_len -= 1;
        self.recompute_wheel_min();
        node.entry
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    /// The `(time, seq)` key of the earliest pending event, if any.
    ///
    /// Keys are unique (the seq counter never repeats), so comparing a
    /// lane event's key against this yields the exact dispatch order a
    /// single queue would have produced.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        let mut best: Option<(SimTime, u64)> = self.fast.as_ref().map(Entry::key);
        if let Some(m) = &self.wheel_min {
            let k = m.key();
            if best.is_none_or(|b| k < b) {
                best = Some(k);
            }
        }
        if let Some(top) = self.overflow.peek() {
            let k = top.key();
            if best.is_none_or(|b| k < b) {
                best = Some(k);
            }
        }
        best
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.fast.is_some() as usize + self.wheel_len + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events.
    ///
    /// Lifetime counters ([`EventQueue::stats`]) are kept: clearing is
    /// part of a queue's history, not a new queue. The **depth window**
    /// resets, so a queue reused across simulations attributes its
    /// high-water depth to the current run only (see
    /// [`EventQueue::window_max_depth`]).
    pub fn clear(&mut self) {
        self.fast = None;
        self.arena.clear();
        self.heads.fill(NIL_NODE);
        self.occupancy = [0; WORDS];
        self.summary = 0;
        self.cur_abs = 0;
        self.wheel_len = 0;
        self.wheel_min = None;
        self.overflow.clear();
        self.window_max_depth = 0;
    }

    /// Lifetime push/pop/depth counters (deterministic: they derive only
    /// from the schedule/pop call sequence).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// High-water pending depth since the last [`reset_window`] (or
    /// construction / [`clear`]). Composes with the sweep profiler's
    /// per-figure depth window ([`crate::prof`]): engines report this —
    /// not the lifetime [`stats`] max — so reusing a queue across
    /// simulations cannot leak one run's depth into the next.
    ///
    /// [`reset_window`]: EventQueue::reset_window
    /// [`clear`]: EventQueue::clear
    /// [`stats`]: EventQueue::stats
    pub fn window_max_depth(&self) -> u64 {
        self.window_max_depth
    }

    /// Starts a new depth window at the current depth.
    pub fn reset_window(&mut self) {
        self.window_max_depth = self.len() as u64;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at(30), 3);
        q.schedule(at(10), 1);
        q.schedule(at(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(at(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expect: Vec<i32> = (0..100).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(at(7), ());
        q.schedule(at(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(at(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        let mut q = EventQueue::new();
        q.schedule(at(1), "a");
        q.schedule(at(1), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(at(1), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn stats_track_pushes_pops_and_depth() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(at(i), i);
        }
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(at(9), 9);
        let s = q.stats();
        assert_eq!(s.pushes, 6);
        assert_eq!(s.pops, 1);
        assert_eq!(s.max_depth, 5);
        q.clear();
        assert_eq!(q.stats(), s, "clear keeps lifetime counters");
        assert!(q.pop().is_none());
        assert_eq!(q.stats().pops, 1, "empty pop does not count");
    }

    #[test]
    fn window_depth_resets_while_lifetime_max_survives() {
        let mut q = EventQueue::new();
        for i in 0..8 {
            q.schedule(at(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.stats().max_depth, 8);
        assert_eq!(q.window_max_depth(), 8);
        // The satellite bug: clear() kept the lifetime max (by design)
        // but a reused queue also reported the *old* depth as its own.
        q.clear();
        assert_eq!(q.window_max_depth(), 0, "clear starts a fresh window");
        q.schedule(at(1), 100);
        q.schedule(at(2), 101);
        assert_eq!(q.window_max_depth(), 2, "window sees only the new run");
        assert_eq!(q.stats().max_depth, 8, "lifetime max is untouched");
        // reset_window() mid-run starts the window at the current depth.
        q.reset_window();
        assert_eq!(q.window_max_depth(), 2);
        q.pop();
        assert_eq!(q.window_max_depth(), 2, "window is a high-water mark");
    }

    #[test]
    fn far_future_events_pass_through_the_overflow_heap() {
        let mut q = EventQueue::new();
        // Horizon is 1024 buckets of 1.024 ns each (~1 us); 1 ms is far
        // beyond it, so these take the overflow path and drain back.
        q.schedule(SimTime::ZERO + SimDuration::from_ms(1), "far");
        q.schedule(SimTime::ZERO + SimDuration::from_ms(2), "farther");
        q.schedule(at(1), "near");
        q.schedule(at(2), "near2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["near", "near2", "far", "farther"]);
    }

    #[test]
    fn window_advance_keeps_overflow_and_fresh_events_ordered() {
        let mut q = EventQueue::new();
        // Overflow entry just beyond the initial horizon.
        let far = SimTime::ZERO + SimDuration::from_us(9);
        q.schedule(far, "overflow");
        q.schedule(at(1), "near");
        assert_eq!(q.pop().unwrap().1, "near");
        // The window advanced; schedule something *later* than the
        // overflow entry but now inside the window. The overflow entry
        // must still pop first.
        q.schedule(far + SimDuration::from_ns(100), "later");
        assert_eq!(q.pop().unwrap().1, "overflow");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn past_time_schedules_pop_before_pending_events() {
        let mut q = EventQueue::new();
        q.schedule(at(50), "future");
        assert_eq!(q.pop().unwrap().0, at(50));
        // The window now starts at bucket(50ns); scheduling at 1 ns is in
        // the past and clamps into the current bucket.
        q.schedule(at(60), "later");
        q.schedule(at(1), "past");
        assert_eq!(q.pop().unwrap(), (at(1), "past"));
        assert_eq!(q.pop().unwrap(), (at(60), "later"));
    }

    #[test]
    fn alloc_seq_interleaves_with_scheduled_events() {
        let mut q = EventQueue::new();
        q.schedule(at(5), "queued");
        let lane_seq = q.alloc_seq();
        q.schedule(at(5), "tied");
        // The lane event (same time, seq between the two pushes) must
        // order between them under a merged (time, seq) pop.
        let qk = q.peek_key().unwrap();
        assert!(qk < (at(5), lane_seq));
        assert_eq!(q.pop().unwrap().1, "queued");
        let qk = q.peek_key().unwrap();
        assert!((at(5), lane_seq) < qk);
        assert_eq!(q.pop().unwrap().1, "tied");
    }

    #[test]
    fn queue_kinds_are_distinct_and_stable() {
        let wheel: EventQueue<()> = EventQueue::new();
        let heap: HeapQueue<()> = HeapQueue::new();
        assert_eq!(wheel.queue_kind(), QUEUE_KIND);
        assert_eq!(heap.queue_kind(), HEAP_QUEUE_KIND);
        assert_ne!(wheel.queue_kind(), heap.queue_kind());
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
        let h: HeapQueue<()> = HeapQueue::new();
        assert!(!format!("{h:?}").is_empty());
    }
}
