//! Benchmark-harness support: table formatting shared by the
//! `experiments` binary and the Criterion benches.
//!
//! Every table and figure of the paper's evaluation section has a
//! corresponding renderer here; the underlying data comes from
//! [`dmamem::experiments`]. The [`sweep`] module orchestrates whole
//! figure matrices on the parallel sweep engine and emits the
//! `BENCH_sweep.json` timing baseline.

use dmamem::experiments::{
    self, ExpConfig, Fig10Row, Fig5Row, Fig7Row, Fig8Row, Fig9Row, Workload,
};
use mempower::{EnergyBreakdown, EnergyCategory};

pub mod perf_diff;
pub mod perf_report;
pub mod sweep;
pub mod trace_diff;

/// Renders an energy breakdown as a one-line percentage summary.
pub fn breakdown_line(e: &EnergyBreakdown) -> String {
    let mut parts = Vec::new();
    for cat in EnergyCategory::ALL {
        let f = e.fraction(cat) * 100.0;
        if f >= 0.05 {
            parts.push(format!("{} {:.1}%", cat.label(), f));
        }
    }
    format!("{} ({:.3} mJ total)", parts.join(" | "), e.total_mj())
}

/// Renders Figure 5 rows as an aligned text table.
pub fn fig5_table(rows: &[Fig5Row]) -> String {
    let mut out =
        String::from("workload      CP-Limit  scheme        savings  measured-deg  within\n");
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:>6.0}%  {:<13} {:>6.1}%  {:>11.1}%  {}\n",
            r.workload,
            r.cp_limit * 100.0,
            r.scheme,
            r.savings * 100.0,
            r.degradation * 100.0,
            if r.within_limit { "yes" } else { "NO" }
        ));
    }
    out
}

/// Renders Figure 7 rows.
pub fn fig7_table(rows: &[Fig7Row]) -> String {
    let mut out = String::from("CP-Limit  uf(baseline)  uf(DMA-TA)  uf(DMA-TA-PL)\n");
    for r in rows {
        out.push_str(&format!(
            "{:>6.0}%  {:>12.2}  {:>10.2}  {:>13.2}\n",
            r.cp_limit * 100.0,
            r.uf_baseline,
            r.uf_ta,
            r.uf_tapl
        ));
    }
    out
}

/// Renders Figure 8 rows.
pub fn fig8_table(rows: &[Fig8Row]) -> String {
    let mut out = String::from("transfers/ms  savings(DMA-TA)  savings(DMA-TA-PL)\n");
    for r in rows {
        out.push_str(&format!(
            "{:>11.0}  {:>14.1}%  {:>17.1}%\n",
            r.transfers_per_ms,
            r.savings_ta * 100.0,
            r.savings_tapl * 100.0
        ));
    }
    out
}

/// Renders Figure 9 rows.
pub fn fig9_table(rows: &[Fig9Row]) -> String {
    let mut out = String::from("proc/transfer  savings(DMA-TA)  savings(DMA-TA-PL)\n");
    for r in rows {
        out.push_str(&format!(
            "{:>12.0}  {:>14.1}%  {:>17.1}%\n",
            r.proc_per_transfer,
            r.savings_ta * 100.0,
            r.savings_tapl * 100.0
        ));
    }
    out
}

/// Renders Figure 10 rows.
pub fn fig10_table(rows: &[Fig10Row]) -> String {
    let mut out = String::from("workload      Rm/Rb  savings(DMA-TA)  savings(DMA-TA-PL)\n");
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:>5.2}  {:>14.1}%  {:>17.1}%\n",
            r.workload,
            r.ratio,
            r.savings_ta * 100.0,
            r.savings_tapl * 100.0
        ));
    }
    out
}

/// Renders the Figure 4 CDF points.
pub fn fig4_table(points: &[(f64, f64)]) -> String {
    let mut out = String::from("pages%  accesses%\n");
    for (x, y) in points {
        out.push_str(&format!("{:>5.0}%  {:>8.1}%\n", x * 100.0, y * 100.0));
    }
    out
}

/// Renders Table 2 trace characteristics.
pub fn table2_text(exp: ExpConfig) -> String {
    table2_rows_text(&experiments::table2(exp))
}

/// Renders already-computed Table 2 rows (see
/// [`dmamem::experiments::table2_ctx`]).
pub fn table2_rows_text(rows: &[(String, dma_trace::TraceStats)]) -> String {
    let mut out =
        String::from("trace          net/ms  disk/ms  proc/ms  proc/transfer  distinct-pages\n");
    for (name, s) in rows {
        out.push_str(&format!(
            "{:<13} {:>7.1}  {:>7.1}  {:>7.0}  {:>13.1}  {:>14}\n",
            name,
            s.network_rate_per_ms(),
            s.disk_rate_per_ms(),
            s.proc_rate_per_ms(),
            s.proc_accesses_per_transfer(),
            s.distinct_dma_pages
        ));
    }
    out
}

/// Renders the observability summary of an instrumented run: top-line
/// counters, the slack ledger by cause, the guarantee verdict re-derived
/// from the event ledger, and profiling spans.
pub fn obs_summary_table(run: &experiments::ObservedRun) -> String {
    let verdict = |met: bool| if met { "MET" } else { "VIOLATED" };
    let r = &run.result;
    let obs = r.obs.as_ref().expect("instrumented run carries obs");
    let m = &obs.metrics;
    let c = |name: &str| m.counter(name).unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "workload {}  scheme {}  mu {:.3}  horizon {}\n",
        run.workload, run.scheme, run.mu, r.horizon
    ));
    out.push_str(&format!(
        "events    {} recorded, {} dropped (ring capacity {})\n",
        obs.events.recorded(),
        obs.events.dropped(),
        obs.events.capacity()
    ));
    out.push_str(&format!(
        "chips     {} wakes, {} sleeps\n",
        c("dmamem.wakes"),
        c("dmamem.sleeps")
    ));
    out.push_str(&format!(
        "DMA-TA    {} firsts gathered; releases: {} rule, {} max-delay, {} proc-wake\n",
        c("dmamem.ta.gathered"),
        c("dmamem.ta.release.rule"),
        c("dmamem.ta.release.max_delay"),
        c("dmamem.ta.release.proc_wake")
    ));
    out.push_str(&format!(
        "PL        {} page moves; {} epoch ticks\n",
        c("dmamem.pl.page_moves"),
        c("dmamem.epoch_ticks")
    ));
    if let Some(s) = &r.slack {
        out.push_str(&format!(
            "slack     {} credits; debits (us): epoch {:.1}, wake {:.1}, proc {:.1}, queue {:.1}; final {:.1}, min {:.1}\n",
            s.credited,
            s.debit_epoch_ps / 1e6,
            s.debit_wake_ps / 1e6,
            s.debit_proc_ps / 1e6,
            s.debit_queue_ps / 1e6,
            s.final_ps / 1e6,
            s.min_ps / 1e6
        ));
    }
    let replay = dmamem::replay_slack(obs.events.iter());
    // The balance-trail check only means something on a complete stream;
    // the close-record verdict is exact either way (it carries integer
    // service totals, and the ring drops oldest first).
    let ledger = if obs.events.dropped() > 0 {
        format!("truncated, {} oldest dropped", obs.events.dropped())
    } else if replay.ledger_consistent {
        "consistent".to_string()
    } else {
        "INCONSISTENT".to_string()
    };
    out.push_str(&format!(
        "guarantee recorded {} | replayed-from-ledger {} (ledger {ledger})\n",
        verdict(r.guarantee_met(run.t_ref)),
        verdict(replay.guarantee_met(run.t_ref))
    ));
    out.push_str(&format!(
        "engine    {} events dispatched, heap {}/{} push/pop (max depth {}), {} transfers, {} requests\n",
        r.profile.events,
        r.profile.heap_pushes,
        r.profile.heap_pops,
        r.profile.max_heap_depth,
        r.profile.transfers,
        r.profile.requests
    ));
    if let Some(h) = m.histograms.get("span.engine_dispatch_ns") {
        let mean = if h.count == 0 {
            0.0
        } else {
            h.sum as f64 / h.count as f64
        };
        out.push_str(&format!(
            "spans     engine_dispatch: {} samples, mean {:.0} ns, p99 ~{} ns\n",
            h.count,
            mean,
            h.quantile(0.99)
        ));
    }
    out
}

/// The paper's default CP-Limit sweep (fractions).
pub const CP_SWEEP: [f64; 6] = [0.01, 0.05, 0.10, 0.15, 0.20, 0.30];

/// The paper's Figure 8 intensity sweep (transfers/ms).
pub const INTENSITY_SWEEP: [f64; 5] = [25.0, 50.0, 100.0, 200.0, 400.0];

/// The paper's Figure 9 processor-access sweep (accesses per transfer).
pub const PROC_SWEEP: [f64; 6] = [0.0, 10.0, 50.0, 100.0, 233.0, 500.0];

/// The paper's Figure 10 bus-rate sweep (bytes/second; memory fixed at
/// 3.2 GB/s gives ratios ~6.4, 3, 1.6, 1.07).
pub const BUS_RATE_SWEEP: [f64; 4] = [0.5e9, 1.064e9, 2.0e9, 3.0e9];

/// All four workloads.
pub const ALL_WORKLOADS: [Workload; 4] = Workload::ALL;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_without_panicking() {
        let exp = ExpConfig::quick();
        assert!(table2_text(exp).contains("OLTP-St"));
        let rows = experiments::fig5(exp, &[Workload::SyntheticSt], &[0.10]);
        let t = fig5_table(&rows);
        assert!(t.contains("DMA-TA-PL(2)"));
        let pts = experiments::fig4(exp, 5);
        assert!(fig4_table(&pts).lines().count() == 7);
    }

    #[test]
    fn obs_summary_renders_verdicts_and_csv() {
        let run = experiments::observed_run(ExpConfig::quick(), 0.10, 1 << 18);
        let t = obs_summary_table(&run);
        assert!(t.contains("guarantee recorded"), "summary:\n{t}");
        assert!(t.contains("DMA-TA"), "summary:\n{t}");
        assert!(t.contains("slack"), "summary:\n{t}");
        let c = csv::obs_summary(&run);
        assert!(c.starts_with("metric,value\n"));
        assert!(c.contains("dmamem.wakes,"));
        assert!(c.contains("guarantee.replayed,"));
    }

    #[test]
    fn breakdown_line_lists_dominant_categories() {
        let rows = experiments::fig2b(ExpConfig::quick());
        let line = breakdown_line(&rows[0].1);
        assert!(line.contains("Active Idle DMA"));
        assert!(line.contains("mJ total"));
    }
}

/// CSV renderers for the figure data (one file per exhibit), so the plots
/// can be regenerated with any plotting tool.
pub mod csv {
    use dmamem::experiments::{Fig10Row, Fig5Row, Fig7Row, Fig8Row, Fig9Row};
    use mempower::{EnergyBreakdown, EnergyCategory};

    /// Figure 5 rows as CSV.
    pub fn fig5(rows: &[Fig5Row]) -> String {
        let mut out = String::from("workload,cp_limit,scheme,savings,degradation,within_limit\n");
        for r in rows {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{}\n",
                r.workload, r.cp_limit, r.scheme, r.savings, r.degradation, r.within_limit
            ));
        }
        out
    }

    /// Figure 7 rows as CSV.
    pub fn fig7(rows: &[Fig7Row]) -> String {
        let mut out = String::from("cp_limit,uf_baseline,uf_ta,uf_tapl\n");
        for r in rows {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6}\n",
                r.cp_limit, r.uf_baseline, r.uf_ta, r.uf_tapl
            ));
        }
        out
    }

    /// Figure 8 rows as CSV.
    pub fn fig8(rows: &[Fig8Row]) -> String {
        let mut out = String::from("transfers_per_ms,savings_ta,savings_tapl\n");
        for r in rows {
            out.push_str(&format!(
                "{},{:.6},{:.6}\n",
                r.transfers_per_ms, r.savings_ta, r.savings_tapl
            ));
        }
        out
    }

    /// Figure 9 rows as CSV.
    pub fn fig9(rows: &[Fig9Row]) -> String {
        let mut out = String::from("proc_per_transfer,savings_ta,savings_tapl\n");
        for r in rows {
            out.push_str(&format!(
                "{},{:.6},{:.6}\n",
                r.proc_per_transfer, r.savings_ta, r.savings_tapl
            ));
        }
        out
    }

    /// Figure 10 rows as CSV.
    pub fn fig10(rows: &[Fig10Row]) -> String {
        let mut out = String::from("workload,ratio,savings_ta,savings_tapl\n");
        for r in rows {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6}\n",
                r.workload, r.ratio, r.savings_ta, r.savings_tapl
            ));
        }
        out
    }

    /// Figure 4 CDF points as CSV.
    pub fn fig4(points: &[(f64, f64)]) -> String {
        let mut out = String::from("pages_frac,accesses_frac\n");
        for (x, y) in points {
            out.push_str(&format!("{x:.6},{y:.6}\n"));
        }
        out
    }

    /// Top-line observability counters of an instrumented run as
    /// `name,value` CSV rows.
    pub fn obs_summary(run: &dmamem::experiments::ObservedRun) -> String {
        let r = &run.result;
        let obs = r.obs.as_ref().expect("instrumented run carries obs");
        let mut out = String::from("metric,value\n");
        for (name, v) in &obs.metrics.counters {
            out.push_str(&format!("{name},{v}\n"));
        }
        for (name, v) in &obs.metrics.gauges {
            out.push_str(&format!("{name},{v:.3}\n"));
        }
        if let Some(s) = &r.slack {
            out.push_str(&format!("slack.debit_epoch_ps,{:.3}\n", s.debit_epoch_ps));
            out.push_str(&format!("slack.debit_wake_ps,{:.3}\n", s.debit_wake_ps));
            out.push_str(&format!("slack.debit_proc_ps,{:.3}\n", s.debit_proc_ps));
            out.push_str(&format!("slack.debit_queue_ps,{:.3}\n", s.debit_queue_ps));
            out.push_str(&format!("slack.min_ps,{:.3}\n", s.min_ps));
        }
        let replay = dmamem::replay_slack(obs.events.iter());
        out.push_str(&format!(
            "guarantee.recorded,{}\n",
            r.guarantee_met(run.t_ref)
        ));
        out.push_str(&format!(
            "guarantee.replayed,{}\n",
            replay.guarantee_met(run.t_ref)
        ));
        out.push_str(&format!("ledger.consistent,{}\n", replay.ledger_consistent));
        out.push_str(&format!("ledger.complete,{}\n", obs.events.dropped() == 0));
        out
    }

    /// An energy breakdown (one exhibit bar) as CSV rows.
    pub fn breakdown(label: &str, e: &EnergyBreakdown) -> String {
        let mut out = String::new();
        for cat in EnergyCategory::ALL {
            out.push_str(&format!(
                "{label},{},{:.9},{:.6}\n",
                cat.label().replace(' ', "_"),
                e.energy_mj(cat),
                e.fraction(cat)
            ));
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use dmamem::experiments::{self, ExpConfig, Workload};

        #[test]
        fn csv_headers_and_rows() {
            let exp = ExpConfig::quick();
            let rows = experiments::fig5(exp, &[Workload::SyntheticSt], &[0.10]);
            let text = fig5(&rows);
            assert!(text.starts_with("workload,cp_limit"));
            assert_eq!(text.lines().count(), rows.len() + 1);
            let pts = experiments::fig4(exp, 4);
            assert_eq!(fig4(&pts).lines().count(), 6);
        }

        #[test]
        fn breakdown_csv_has_all_categories() {
            let rows = experiments::fig2b(ExpConfig::quick());
            let text = breakdown("baseline", &rows[0].1);
            assert_eq!(text.lines().count(), 6);
            assert!(text.contains("Active_Idle_DMA"));
        }
    }
}
