//! Regression differ for energy-waste attribution reports.
//!
//! Compares two attribution JSONs (as written by
//! `experiments trace-report --attrib-out`, i.e.
//! [`dmamem::tracing::attribution_json`]) run by run and bucket by
//! bucket. Absolute energies drift with trace length and hardware-free
//! determinism makes them reproducible anyway, so the differ compares
//! **bucket fractions** — each bucket's share of its run's total — and
//! fails when any share moved by more than the tolerance. CI runs it
//! against the committed `crates/bench/baselines/attrib_quick.json` so a
//! change that silently shifts where the energy goes (say, active-idle
//! reclassified as serving) fails the build even when the totals still
//! look plausible.

use simcore::obs::json::{parse, JsonValue};

/// Default tolerated drift in a bucket's fraction of run energy.
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// One compared bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Run key: `workload / scheme`.
    pub run: String,
    /// Bucket label (`useful_active`, `active_idle_dma`, ...).
    pub bucket: String,
    /// Baseline fraction of run energy.
    pub baseline: f64,
    /// Current fraction of run energy.
    pub current: f64,
}

impl DiffEntry {
    /// Absolute drift between the two fractions.
    pub fn drift(&self) -> f64 {
        (self.current - self.baseline).abs()
    }
}

/// A full comparison of two attribution reports.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every bucket compared, report order.
    pub entries: Vec<DiffEntry>,
    /// The tolerance the comparison ran with.
    pub tolerance: f64,
}

impl DiffReport {
    /// Entries whose drift exceeds the tolerance.
    pub fn failures(&self) -> Vec<&DiffEntry> {
        self.entries
            .iter()
            .filter(|e| e.drift() > self.tolerance)
            .collect()
    }

    /// Whether every bucket stayed within tolerance.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// Human-readable rendering, one line per compared bucket.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let mark = if e.drift() > self.tolerance {
                "FAIL"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{mark:>4}  {:<36} {:<16} {:>7.3} -> {:>7.3} (drift {:.4}, tol {:.4})\n",
                e.run,
                e.bucket,
                e.baseline,
                e.current,
                e.drift(),
                self.tolerance
            ));
        }
        out
    }
}

struct Run {
    key: String,
    total: f64,
    buckets: Vec<(String, f64)>,
}

fn parse_report(label: &str, text: &str) -> Result<Vec<Run>, String> {
    let v = parse(text).map_err(|e| format!("{label}: {e}"))?;
    let runs = v
        .get("runs")
        .and_then(|r| r.as_array())
        .ok_or_else(|| format!("{label}: missing `runs` array"))?;
    let mut out = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        let workload = run
            .get("workload")
            .and_then(|w| w.as_str())
            .ok_or_else(|| format!("{label}: run {i} missing `workload`"))?;
        let scheme = run
            .get("scheme")
            .and_then(|s| s.as_str())
            .ok_or_else(|| format!("{label}: run {i} missing `scheme`"))?;
        let total = run
            .get("total_mj")
            .and_then(|t| t.as_f64())
            .ok_or_else(|| format!("{label}: run {i} missing `total_mj`"))?;
        let JsonValue::Object(pairs) = run
            .get("buckets")
            .ok_or_else(|| format!("{label}: run {i} missing `buckets`"))?
        else {
            return Err(format!("{label}: run {i} `buckets` is not an object"));
        };
        let mut buckets = Vec::new();
        for (name, value) in pairs {
            let mj = value
                .as_f64()
                .ok_or_else(|| format!("{label}: run {i} bucket `{name}` not a number"))?;
            buckets.push((name.clone(), mj));
        }
        out.push(Run {
            key: format!("{workload} / {scheme}"),
            total,
            buckets,
        });
    }
    Ok(out)
}

fn fraction(mj: f64, total: f64) -> f64 {
    if total <= 0.0 {
        0.0
    } else {
        mj / total
    }
}

/// Diffs two attribution-report JSONs. Errors on malformed input or
/// structural mismatch (different run sets or bucket sets — a missing
/// run is a regression the tolerance cannot excuse); bucket drift is
/// reported through [`DiffReport`].
pub fn diff(baseline: &str, current: &str, tolerance: f64) -> Result<DiffReport, String> {
    let base_runs = parse_report("baseline", baseline)?;
    let cur_runs = parse_report("current", current)?;
    if base_runs.len() != cur_runs.len() {
        return Err(format!(
            "run count mismatch: baseline has {}, current has {}",
            base_runs.len(),
            cur_runs.len()
        ));
    }
    let mut entries = Vec::new();
    for (b, c) in base_runs.iter().zip(&cur_runs) {
        if b.key != c.key {
            return Err(format!(
                "run mismatch at position: baseline `{}` vs current `{}`",
                b.key, c.key
            ));
        }
        if b.buckets.len() != c.buckets.len() {
            return Err(format!("run `{}`: bucket set changed", b.key));
        }
        for ((bn, bmj), (cn, cmj)) in b.buckets.iter().zip(&c.buckets) {
            if bn != cn {
                return Err(format!(
                    "run `{}`: bucket `{bn}` vs `{cn}` at same position",
                    b.key
                ));
            }
            entries.push(DiffEntry {
                run: b.key.clone(),
                bucket: bn.clone(),
                baseline: fraction(*bmj, b.total),
                current: fraction(*cmj, c.total),
            });
        }
    }
    Ok(DiffReport { entries, tolerance })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(idle: f64, serving: f64) -> String {
        format!(
            "{{\"runs\":[{{\"workload\":\"OLTP-St\",\"scheme\":\"baseline\",\
             \"total_mj\":{t},\"buckets\":{{\"useful_active\":{serving},\
             \"active_idle_dma\":{idle}}},\"per_chip\":[]}}]}}",
            t = idle + serving
        )
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(60.0, 40.0);
        let d = diff(&r, &r, DEFAULT_TOLERANCE).unwrap();
        assert!(d.passed());
        assert_eq!(d.entries.len(), 2);
        assert!(d.render().contains("ok"));
    }

    #[test]
    fn drift_beyond_tolerance_fails() {
        let base = report(60.0, 40.0);
        let cur = report(55.0, 45.0); // 5-point share shift
        let d = diff(&base, &cur, 0.02).unwrap();
        assert!(!d.passed());
        assert_eq!(d.failures().len(), 2);
        assert!(d.render().contains("FAIL"));
        // A looser tolerance accepts the same drift.
        assert!(diff(&base, &cur, 0.10).unwrap().passed());
    }

    #[test]
    fn structural_mismatch_is_an_error() {
        let base = report(60.0, 40.0);
        assert!(diff(&base, "{\"runs\":[]}", 0.02).is_err());
        assert!(diff("not json", &base, 0.02).is_err());
        let other = base.replace("OLTP-St", "OLTP-Db");
        assert!(diff(&base, &other, 0.02).is_err());
    }
}
