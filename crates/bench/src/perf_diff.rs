//! Perf-regression gate over two `BENCH_engine.json` reports.
//!
//! The engine baseline carries two kinds of numbers with different
//! contracts (see [`crate::perf_report`]):
//!
//! * **Deterministic counters** — events dispatched, heap pushes/pops,
//!   max calendar depth, transfers, requests, sims, memo and trace-cache
//!   hits per figure, and per-phase call counts. These are bit-identical
//!   for a given workload seed at any thread count, so the gate demands
//!   **exact equality** and any drift is a FAIL (exit non-zero in CI).
//!   A counter that moved means the simulation did different work — a
//!   real behavioural change that must be re-recorded deliberately, not
//!   absorbed by a tolerance.
//! * **Wall-clock throughput** — `events_per_sec` per figure and in
//!   total. Host-dependent, so a regression beyond the tolerance is a
//!   WARN only; it never fails the gate.
//!
//! `threads`, `cores`, `wall_ms`, and phase `ns` are ignored entirely;
//! `trace_ms`, `seed`, and `queue_kind` must match or the reports are
//! incomparable (error). A `queue_kind` mismatch means the baseline was
//! recorded under different event-queue pop-order semantics — the remedy
//! is a deliberate re-record, and the gate says so instead of emitting a
//! wall of counter mismatches. Reports that predate the field are
//! treated as [`simcore::HEAP_QUEUE_KIND`].

use simcore::obs::json::{parse, JsonValue};

/// Default tolerated relative `events_per_sec` regression before warning.
pub const DEFAULT_RATE_TOLERANCE: f64 = 0.30;

/// Per-figure integer fields the gate requires to match exactly.
pub const DETERMINISTIC_FIELDS: &[&str] = &[
    "events",
    "heap_pushes",
    "heap_pops",
    "max_heap_depth",
    "transfers",
    "requests",
    "sims",
    "memo_hits",
    "memo_misses",
    "trace_hits",
    "trace_misses",
];

/// Totals-object integer fields the gate requires to match exactly.
const TOTALS_FIELDS: &[&str] = &[
    "events",
    "heap_pushes",
    "heap_pops",
    "max_heap_depth",
    "transfers",
    "requests",
    "sims",
];

/// One deterministic counter compared between baseline and current.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEntry {
    /// Row the counter belongs to (`fig5`, ..., or `totals` / `phases`).
    pub row: String,
    /// Field name within the row.
    pub field: String,
    /// Baseline value.
    pub baseline: u64,
    /// Current value.
    pub current: u64,
}

impl CounterEntry {
    /// Whether the counter moved at all (any drift is a failure).
    pub fn drifted(&self) -> bool {
        self.baseline != self.current
    }
}

/// One throughput figure compared between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct RateEntry {
    /// Row the rate belongs to (`fig5`, ..., or `totals`).
    pub row: String,
    /// Baseline events/sec.
    pub baseline: f64,
    /// Current events/sec.
    pub current: f64,
}

impl RateEntry {
    /// Relative slowdown versus baseline (positive = current is slower).
    pub fn regression(&self) -> f64 {
        if self.baseline > 0.0 {
            (self.baseline - self.current) / self.baseline
        } else {
            0.0
        }
    }
}

/// A full comparison of two engine reports.
#[derive(Debug, Clone)]
pub struct PerfDiffReport {
    /// Every deterministic counter compared, report order.
    pub counters: Vec<CounterEntry>,
    /// Every throughput figure compared, report order.
    pub rates: Vec<RateEntry>,
    /// Tolerated relative events/sec regression before warning.
    pub rate_tolerance: f64,
}

impl PerfDiffReport {
    /// Deterministic counters that drifted — each one fails the gate.
    pub fn failures(&self) -> Vec<&CounterEntry> {
        self.counters.iter().filter(|e| e.drifted()).collect()
    }

    /// Throughput rows that regressed beyond tolerance — warn-only.
    pub fn warnings(&self) -> Vec<&RateEntry> {
        self.rates
            .iter()
            .filter(|e| e.regression() > self.rate_tolerance)
            .collect()
    }

    /// Whether the gate passes (warnings do not fail it).
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// Human-readable rendering: one line per drifted counter, one per
    /// throughput row, and a one-line verdict for the rest.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.counters {
            if e.drifted() {
                out.push_str(&format!(
                    "FAIL  {:<10} {:<16} {:>14} -> {:>14} (deterministic counter drifted)\n",
                    e.row, e.field, e.baseline, e.current
                ));
            }
        }
        let clean = self.counters.len() - self.failures().len();
        out.push_str(&format!("  ok  {clean} deterministic counters identical\n"));
        for e in &self.rates {
            let mark = if e.regression() > self.rate_tolerance {
                "WARN"
            } else {
                "  ok"
            };
            out.push_str(&format!(
                "{mark}  {:<10} events/sec {:>12.0} -> {:>12.0} ({:+.1}%, warn beyond -{:.0}%)\n",
                e.row,
                e.baseline,
                e.current,
                -e.regression() * 100.0,
                self.rate_tolerance * 100.0
            ));
        }
        out
    }
}

struct Figure {
    name: String,
    fields: Vec<(String, u64)>,
    events_per_sec: f64,
}

struct Report {
    queue_kind: String,
    trace_ms: f64,
    seed: u64,
    figures: Vec<Figure>,
    totals: Vec<(String, u64)>,
    totals_events_per_sec: f64,
    phase_calls: Vec<(String, u64)>,
}

fn get_u64(label: &str, ctx: &str, v: &JsonValue, field: &str) -> Result<u64, String> {
    v.get(field)
        .and_then(|x| x.as_f64())
        .map(|f| f as u64)
        .ok_or_else(|| format!("{label}: {ctx} missing `{field}`"))
}

fn parse_report(label: &str, text: &str) -> Result<Report, String> {
    let v = parse(text).map_err(|e| format!("{label}: {e}"))?;
    let bench = v.get("bench").and_then(|b| b.as_str());
    if bench != Some("engine") {
        return Err(format!(
            "{label}: not an engine report (`bench` != \"engine\")"
        ));
    }
    // Reports recorded before the queue-kind schema existed omit the
    // field; they were all recorded on the binary-heap queue.
    let queue_kind = v
        .get("queue_kind")
        .and_then(|q| q.as_str())
        .unwrap_or(simcore::HEAP_QUEUE_KIND)
        .to_string();
    let trace_ms = v
        .get("trace_ms")
        .and_then(|t| t.as_f64())
        .ok_or_else(|| format!("{label}: missing `trace_ms`"))?;
    let seed = get_u64(label, "report", &v, "seed")?;
    let figures_json = v
        .get("figures")
        .and_then(|f| f.as_array())
        .ok_or_else(|| format!("{label}: missing `figures` array"))?;
    let mut figures = Vec::new();
    for (i, fig) in figures_json.iter().enumerate() {
        let name = fig
            .get("figure")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("{label}: figure {i} missing `figure`"))?
            .to_string();
        let mut fields = Vec::new();
        for field in DETERMINISTIC_FIELDS {
            fields.push((field.to_string(), get_u64(label, &name, fig, field)?));
        }
        let events_per_sec = fig
            .get("events_per_sec")
            .and_then(|e| e.as_f64())
            .ok_or_else(|| format!("{label}: figure `{name}` missing `events_per_sec`"))?;
        figures.push(Figure {
            name,
            fields,
            events_per_sec,
        });
    }
    let totals_json = v
        .get("totals")
        .ok_or_else(|| format!("{label}: missing `totals`"))?;
    let mut totals = Vec::new();
    for field in TOTALS_FIELDS {
        totals.push((
            field.to_string(),
            get_u64(label, "totals", totals_json, field)?,
        ));
    }
    let totals_events_per_sec = totals_json
        .get("events_per_sec")
        .and_then(|e| e.as_f64())
        .ok_or_else(|| format!("{label}: totals missing `events_per_sec`"))?;
    let phases_json = v
        .get("phases")
        .and_then(|p| p.as_array())
        .ok_or_else(|| format!("{label}: missing `phases` array"))?;
    let mut phase_calls = Vec::new();
    for (i, phase) in phases_json.iter().enumerate() {
        let name = phase
            .get("phase")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("{label}: phase {i} missing `phase`"))?;
        phase_calls.push((name.to_string(), get_u64(label, name, phase, "calls")?));
    }
    Ok(Report {
        queue_kind,
        trace_ms,
        seed,
        figures,
        totals,
        totals_events_per_sec,
        phase_calls,
    })
}

/// Diffs two `BENCH_engine.json` reports. Errors on malformed input or
/// structural mismatch (different figure sets, phases, `trace_ms`,
/// `seed`, or `queue_kind` — those make the counters incomparable);
/// counter drift and throughput regressions are reported through
/// [`PerfDiffReport`].
pub fn diff(baseline: &str, current: &str, rate_tolerance: f64) -> Result<PerfDiffReport, String> {
    let base = parse_report("baseline", baseline)?;
    let cur = parse_report("current", current)?;
    // Queue semantics gate first: comparing queue-shape counters across
    // different pop-order schemas would produce a wall of spurious
    // counter FAILs, so refuse with the actual remedy instead.
    if base.queue_kind != cur.queue_kind {
        return Err(format!(
            "queue_kind mismatch: baseline `{}` vs current `{}` — baseline recorded under \
             different queue semantics; re-record it (`experiments ... --prof-out`) before diffing",
            base.queue_kind, cur.queue_kind
        ));
    }
    // trace_ms is a config literal, not a computed value: any difference
    // at all makes the reports incomparable, so exact comparison is right.
    if base.trace_ms != cur.trace_ms {
        return Err(format!(
            "trace_ms mismatch: baseline {} vs current {} — reports are incomparable",
            base.trace_ms, cur.trace_ms
        ));
    }
    if base.seed != cur.seed {
        return Err(format!(
            "seed mismatch: baseline {} vs current {} — reports are incomparable",
            base.seed, cur.seed
        ));
    }
    if base.figures.len() != cur.figures.len() {
        return Err(format!(
            "figure count mismatch: baseline has {}, current has {}",
            base.figures.len(),
            cur.figures.len()
        ));
    }
    let mut counters = Vec::new();
    let mut rates = Vec::new();
    for (b, c) in base.figures.iter().zip(&cur.figures) {
        if b.name != c.name {
            return Err(format!(
                "figure mismatch at position: baseline `{}` vs current `{}`",
                b.name, c.name
            ));
        }
        for ((bf, bv), (_, cv)) in b.fields.iter().zip(&c.fields) {
            counters.push(CounterEntry {
                row: b.name.clone(),
                field: bf.clone(),
                baseline: *bv,
                current: *cv,
            });
        }
        rates.push(RateEntry {
            row: b.name.clone(),
            baseline: b.events_per_sec,
            current: c.events_per_sec,
        });
    }
    for ((bf, bv), (_, cv)) in base.totals.iter().zip(&cur.totals) {
        counters.push(CounterEntry {
            row: "totals".to_string(),
            field: bf.clone(),
            baseline: *bv,
            current: *cv,
        });
    }
    rates.push(RateEntry {
        row: "totals".to_string(),
        baseline: base.totals_events_per_sec,
        current: cur.totals_events_per_sec,
    });
    if base.phase_calls.len() != cur.phase_calls.len() {
        return Err("phase set changed between reports".to_string());
    }
    for ((bn, bv), (cn, cv)) in base.phase_calls.iter().zip(&cur.phase_calls) {
        if bn != cn {
            return Err(format!("phase mismatch: baseline `{bn}` vs current `{cn}`"));
        }
        counters.push(CounterEntry {
            row: "phases".to_string(),
            field: format!("{bn}.calls"),
            baseline: *bv,
            current: *cv,
        });
    }
    Ok(PerfDiffReport {
        counters,
        rates,
        rate_tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(events: u64, eps: u64, seed: u64) -> String {
        format!(
            "{{\"bench\": \"engine\", \"threads\": 2, \"cores\": 1, \"trace_ms\": 2, \
             \"seed\": {seed},\n\"figures\": [\n  {{\"figure\": \"fig5\", \"events\": {events}, \
             \"heap_pushes\": {p}, \"heap_pops\": {events}, \"max_heap_depth\": 17, \
             \"transfers\": 9, \"requests\": 640, \"sims\": 2, \"memo_hits\": 3, \
             \"memo_misses\": 2, \"trace_hits\": 1, \"trace_misses\": 1, \"wall_ms\": 10.0, \
             \"events_per_sec\": {eps}}}\n],\n\"totals\": {{\"events\": {events}, \
             \"heap_pushes\": {p}, \"heap_pops\": {events}, \"max_heap_depth\": 17, \
             \"transfers\": 9, \"requests\": 640, \"sims\": 2, \"wall_ms\": 10.0, \
             \"events_per_sec\": {eps}}},\n\"phases\": [\n  {{\"phase\": \"dispatch\", \
             \"calls\": {events}, \"ns\": 12345}}\n],\n\"timed_sims\": 2}}",
            p = events + 5
        )
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(1000, 100_000, 42);
        let d = diff(&r, &r, DEFAULT_RATE_TOLERANCE).unwrap();
        assert!(d.passed());
        assert!(d.warnings().is_empty());
        // 11 per-figure fields + 7 totals + 1 phase.
        assert_eq!(d.counters.len(), 19);
        assert_eq!(d.rates.len(), 2);
        assert!(d.render().contains("19 deterministic counters identical"));
    }

    #[test]
    fn counter_drift_fails_the_gate() {
        let base = report(1000, 100_000, 42);
        let cur = report(1001, 100_000, 42);
        let d = diff(&base, &cur, DEFAULT_RATE_TOLERANCE).unwrap();
        assert!(!d.passed());
        // events drifted in the figure row, totals row, and the dispatch
        // phase call count; heap_pushes/pops follow it in the fixture.
        assert!(d.failures().len() >= 3);
        assert!(d.render().contains("FAIL"));
        assert!(d.render().contains("deterministic counter drifted"));
    }

    #[test]
    fn throughput_regression_warns_but_passes() {
        let base = report(1000, 100_000, 42);
        let cur = report(1000, 50_000, 42); // 50% slower
        let d = diff(&base, &cur, 0.30).unwrap();
        assert!(d.passed(), "wall-clock regressions never fail the gate");
        assert_eq!(d.warnings().len(), 2, "figure row and totals both warn");
        assert!(d.render().contains("WARN"));
        // Same regression inside a looser tolerance does not warn.
        assert!(diff(&base, &cur, 0.60).unwrap().warnings().is_empty());
    }

    #[test]
    fn queue_kind_mismatch_is_a_clear_rerecord_error() {
        // The fixture predates the queue_kind field, so it reads as the
        // legacy heap kind; a wheel-recorded report must not diff
        // against it.
        let legacy = report(1000, 100_000, 42);
        let wheel = legacy.replace(
            "\"bench\": \"engine\"",
            &format!(
                "\"bench\": \"engine\", \"queue_kind\": \"{}\"",
                simcore::QUEUE_KIND
            ),
        );
        let err = diff(&legacy, &wheel, DEFAULT_RATE_TOLERANCE).unwrap_err();
        assert!(err.contains("queue_kind mismatch"), "{err}");
        assert!(err.contains("different queue semantics"), "{err}");
        assert!(err.contains("re-record"), "{err}");
        assert!(
            err.contains(simcore::HEAP_QUEUE_KIND) && err.contains(simcore::QUEUE_KIND),
            "error names both kinds: {err}"
        );
        // Same kind on both sides diffs normally.
        assert!(diff(&wheel, &wheel, DEFAULT_RATE_TOLERANCE)
            .unwrap()
            .passed());
    }

    #[test]
    fn incomparable_reports_are_an_error() {
        let base = report(1000, 100_000, 42);
        assert!(diff(&base, &report(1000, 100_000, 43), 0.3).is_err());
        assert!(diff(&base, "not json", 0.3).is_err());
        assert!(diff(&base, "{\"bench\": \"sweep\"}", 0.3).is_err());
        let renamed = base.replace("fig5", "fig6");
        assert!(diff(&base, &renamed, 0.3).is_err());
    }
}
