//! Engine self-profiling report: the `BENCH_engine.json` baseline.
//!
//! An [`EngineReport`] collects the per-figure [`FigTime`] accounting of
//! a [`SweepRunner`] — deterministic engine counters (events dispatched,
//! heap ops, max calendar depth, transfers/requests allocated, memo and
//! trace-cache hits) plus the wall-clock each figure took — and renders
//! it two ways: the machine-readable `BENCH_engine.json` baseline the
//! `perf_diff` gate compares against, and the human summary behind
//! `experiments --prof-summary`.
//!
//! Field discipline mirrors [`simcore::prof`]: integer counters are
//! deterministic and a regression gate may fail on them; `wall_ms`,
//! `events_per_sec`, and phase `ns` are host-dependent and may only
//! ever warn.

use dmamem::sweep::ProfTotals;
use simcore::prof::Phase;

use crate::sweep::{FigTime, SweepRunner};

/// One figure's engine accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRow {
    /// Exhibit name (`fig5`, `groups`, ...).
    pub figure: String,
    /// Wall-clock milliseconds the figure took (host-dependent).
    pub wall_ms: f64,
    /// Deterministic engine counters accumulated during the figure
    /// (`max_heap_depth` is the per-figure window max).
    pub prof: ProfTotals,
    /// Memoized results consumed during the figure.
    pub memo_hits: u64,
    /// Simulations executed during the figure.
    pub memo_misses: u64,
    /// Traces read back from the trace cache during the figure.
    pub trace_hits: u64,
    /// Traces generated during the figure.
    pub trace_misses: u64,
}

impl EngineRow {
    /// Dispatch throughput over the figure's wall clock (host-dependent).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.prof.events as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        }
    }
}

/// The whole-matrix engine profile, rendered as `BENCH_engine.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Pop-order schema of the event queue the engine ran on
    /// ([`simcore::QUEUE_KIND`]). Queue-shape counters (heap pushes/pops,
    /// max depth) are only comparable between reports with equal kinds;
    /// `perf_diff` refuses to diff across kinds.
    pub queue_kind: String,
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// Hardware threads the host reports.
    pub cores: usize,
    /// Simulated trace length per run, milliseconds.
    pub trace_ms: f64,
    /// Workload seed.
    pub seed: u64,
    /// Per-figure rows, in run order.
    pub rows: Vec<EngineRow>,
    /// Lifetime totals across the whole matrix (includes per-phase call
    /// counts and, when profiling was armed, per-phase wall ns).
    pub totals: ProfTotals,
}

impl EngineReport {
    /// Builds the report from a runner that has executed its figures.
    pub fn from_runner(runner: &SweepRunner, trace_ms: f64, seed: u64) -> EngineReport {
        let rows = runner
            .timings()
            .iter()
            .map(|t: &FigTime| EngineRow {
                figure: t.figure.clone(),
                wall_ms: t.ms,
                prof: t.prof,
                memo_hits: t.memo_hits,
                memo_misses: t.memo_misses,
                trace_hits: t.trace_hits,
                trace_misses: t.trace_misses,
            })
            .collect();
        EngineReport {
            queue_kind: simcore::QUEUE_KIND.to_string(),
            threads: runner.threads(),
            cores: simcore::par::available_threads(),
            trace_ms,
            seed,
            rows,
            totals: runner.ctx().prof_totals(),
        }
    }

    /// Total wall-clock across all figures, milliseconds.
    pub fn total_wall_ms(&self) -> f64 {
        self.rows.iter().map(|r| r.wall_ms).sum()
    }

    /// Whole-matrix dispatch throughput, events per second.
    pub fn total_events_per_sec(&self) -> f64 {
        let ms = self.total_wall_ms();
        if ms > 0.0 {
            self.totals.events as f64 / (ms / 1e3)
        } else {
            0.0
        }
    }

    /// Renders the machine-readable `BENCH_engine.json` baseline.
    ///
    /// Integer fields are deterministic (the `perf_diff` gate fails on
    /// any drift); `wall_ms`, `events_per_sec`, and phase `ns` are
    /// host-dependent (warn-only).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"bench\": \"engine\",\n");
        out.push_str(&format!("  \"queue_kind\": \"{}\",\n", self.queue_kind));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"trace_ms\": {},\n", self.trace_ms));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"figures\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"figure\": \"{}\", \"events\": {}, \"heap_pushes\": {}, \
                 \"heap_pops\": {}, \"max_heap_depth\": {}, \"transfers\": {}, \
                 \"requests\": {}, \"sims\": {}, \"memo_hits\": {}, \"memo_misses\": {}, \
                 \"trace_hits\": {}, \"trace_misses\": {}, \"wall_ms\": {:.3}, \
                 \"events_per_sec\": {:.0}}}{}\n",
                r.figure,
                r.prof.events,
                r.prof.heap_pushes,
                r.prof.heap_pops,
                r.prof.max_heap_depth,
                r.prof.transfers,
                r.prof.requests,
                r.prof.sims,
                r.memo_hits,
                r.memo_misses,
                r.trace_hits,
                r.trace_misses,
                r.wall_ms,
                r.events_per_sec(),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"totals\": {{\"events\": {}, \"heap_pushes\": {}, \"heap_pops\": {}, \
             \"max_heap_depth\": {}, \"transfers\": {}, \"requests\": {}, \"sims\": {}, \
             \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}}},\n",
            self.totals.events,
            self.totals.heap_pushes,
            self.totals.heap_pops,
            self.totals.max_heap_depth,
            self.totals.transfers,
            self.totals.requests,
            self.totals.sims,
            self.total_wall_ms(),
            self.total_events_per_sec()
        ));
        out.push_str("  \"phases\": [\n");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"calls\": {}, \"ns\": {}}}{}\n",
                phase.label(),
                self.totals.phase_calls[i],
                self.totals.phase_ns[i],
                if i + 1 < Phase::ALL.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"timed_sims\": {}\n}}\n",
            self.totals.timed_sims
        ));
        out
    }

    /// Renders the human summary behind `experiments --prof-summary`.
    pub fn summary(&self) -> String {
        let mut out = String::from(
            "| figure | events | events/sec | sims | memo (hit/miss) | heap (push/pop) | max depth | wall (ms) |\n",
        );
        out.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {:.0} | {} | {}/{} | {}/{} | {} | {:.1} |\n",
                r.figure,
                r.prof.events,
                r.events_per_sec(),
                r.prof.sims,
                r.memo_hits,
                r.memo_misses,
                r.prof.heap_pushes,
                r.prof.heap_pops,
                r.prof.max_heap_depth,
                r.wall_ms
            ));
        }
        out.push_str(&format!(
            "| **total** | **{}** | **{:.0}** | **{}** | | **{}/{}** | **{}** | **{:.1}** |\n",
            self.totals.events,
            self.total_events_per_sec(),
            self.totals.sims,
            self.totals.heap_pushes,
            self.totals.heap_pops,
            self.totals.max_heap_depth,
            self.total_wall_ms()
        ));
        out.push('\n');
        out.push_str(&format!(
            "{} transfers and {} DMA-memory requests allocated across {} simulations\n",
            self.totals.transfers, self.totals.requests, self.totals.sims
        ));
        if self.totals.timed_sims > 0 {
            out.push_str("phase timing (wall-clock, host-dependent):\n");
            let total_ns: u64 = self.totals.phase_ns.iter().sum();
            for (i, phase) in Phase::ALL.iter().enumerate() {
                let ns = self.totals.phase_ns[i];
                let pct = if total_ns > 0 {
                    ns as f64 / total_ns as f64 * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {:<10} {:>12} calls  {:>9.1} ms  {:>5.1}%\n",
                    phase.label(),
                    self.totals.phase_calls[i],
                    ns as f64 / 1e6,
                    pct
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(figure: &str, events: u64, wall_ms: f64) -> EngineRow {
        EngineRow {
            figure: figure.into(),
            wall_ms,
            prof: ProfTotals {
                sims: 2,
                events,
                heap_pushes: events + 5,
                heap_pops: events + 1,
                max_heap_depth: 17,
                transfers: 9,
                requests: 640,
                phase_calls: [events, 0, 0, 2],
                ..ProfTotals::default()
            },
            memo_hits: 3,
            memo_misses: 2,
            trace_hits: 1,
            trace_misses: 1,
        }
    }

    fn report() -> EngineReport {
        let mut totals = ProfTotals {
            sims: 4,
            events: 3000,
            heap_pushes: 3010,
            heap_pops: 3002,
            max_heap_depth: 17,
            transfers: 18,
            requests: 1280,
            phase_calls: [3000, 0, 0, 4],
            ..ProfTotals::default()
        };
        totals.phase_ns = [4_000_000, 0, 0, 1_000_000];
        totals.timed_sims = 4;
        EngineReport {
            queue_kind: simcore::QUEUE_KIND.to_string(),
            threads: 2,
            cores: 1,
            trace_ms: 2.0,
            seed: 42,
            rows: vec![row("fig5", 1000, 10.0), row("fig7", 2000, 5.0)],
            totals,
        }
    }

    #[test]
    fn json_reports_events_per_sec_for_every_figure() {
        let json = report().to_json();
        assert!(json.contains("\"bench\": \"engine\""));
        assert!(json.contains(&format!("\"queue_kind\": \"{}\"", simcore::QUEUE_KIND)));
        assert!(json.contains("\"figure\": \"fig5\""));
        assert!(json.contains("\"events\": 1000"));
        // 1000 events over 10 ms = 100k events/sec; 2000 over 5 ms = 400k.
        assert!(json.contains("\"events_per_sec\": 100000"));
        assert!(json.contains("\"events_per_sec\": 400000"));
        // Totals: 3000 events over 15 ms = 200k events/sec.
        assert!(json.contains("\"events_per_sec\": 200000"));
        assert!(json.contains("\"phase\": \"dispatch\""));
        assert!(json.contains("\"timed_sims\": 4"));
        assert_eq!(
            json.matches("\"events_per_sec\"").count(),
            3,
            "one per figure row plus the totals"
        );
    }

    #[test]
    fn summary_renders_rows_phases_and_totals() {
        let s = report().summary();
        assert!(s.contains("| fig5 | 1000 | 100000 | 2 | 3/2 | 1005/1001 | 17 | 10.0 |"));
        assert!(s.contains("**3000**"));
        assert!(s.contains("phase timing"));
        assert!(s.contains("dispatch"));
        assert!(s.contains("80.0%"), "4 of 5 ms in dispatch:\n{s}");
        assert!(s.contains("1280 DMA-memory requests"));
    }

    #[test]
    fn zero_wall_clock_yields_zero_rate() {
        let r = row("table2", 0, 0.0);
        assert_eq!(r.events_per_sec(), 0.0);
    }
}
