//! `scrape` — tiny HTTP client for the live telemetry server.
//!
//! CI (and humans without `curl`) use this to probe the `--serve`
//! endpoints of a running `experiments` process:
//!
//! ```text
//! scrape 127.0.0.1:9090 /metrics --require dmamem_sweep_jobs_done
//! scrape 127.0.0.1:9090 /status  --check-heartbeat 30 --out status.json
//! ```
//!
//! Exit code 0 means the request succeeded (HTTP 200) and every
//! assertion passed; anything else is a failure with a message on
//! stderr. The client is deliberately minimal: one GET, no keep-alive,
//! no TLS — exactly what the std-only server on the other side speaks.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use simcore::obs::json;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else {
        return usage("missing server address");
    };
    if addr == "--help" || addr == "-h" {
        return usage("");
    }
    let Some(path) = args.next() else {
        return usage("missing request path (e.g. /metrics)");
    };
    let mut require: Vec<String> = Vec::new();
    let mut check_heartbeat: Option<f64> = None;
    let mut out: Option<std::path::PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => match args.next() {
                Some(s) => require.push(s),
                None => return usage("--require needs a substring"),
            },
            "--check-heartbeat" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => check_heartbeat = Some(v),
                None => return usage("--check-heartbeat needs a max age in seconds"),
            },
            "--out" => match args.next() {
                Some(p) => out = Some(p.into()),
                None => return usage("--out needs a file"),
            },
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    let body = match get(&addr, &path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: GET {path} from {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if body.is_empty() {
        eprintln!("error: GET {path}: empty response body");
        return ExitCode::FAILURE;
    }
    for needle in &require {
        if !body.contains(needle.as_str()) {
            eprintln!("error: GET {path}: response does not contain {needle:?}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(max_age) = check_heartbeat {
        match heartbeat_age(&body) {
            Ok(age) if age <= max_age => {
                eprintln!("(heartbeat age {age:.3}s <= {max_age}s)");
            }
            Ok(age) => {
                eprintln!("error: heartbeat is stale ({age:.3}s > {max_age}s)");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    } else {
        print!("{body}");
    }
    ExitCode::SUCCESS
}

/// One plain HTTP/1.1 GET; returns the response body after asserting a
/// 200 status line. Wall-clock timeouts are fine here: this binary is a
/// test/CI client, never part of the simulation.
fn get(addr: &str, path: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    let mut stream = stream;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response (no header/body separator)".to_string())?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("unexpected status line {status:?}"));
    }
    Ok(body.to_string())
}

/// Extracts `heartbeat_age_secs` from a `/status` JSON body.
fn heartbeat_age(body: &str) -> Result<f64, String> {
    let value = json::parse(body).map_err(|e| format!("bad /status JSON: {e}"))?;
    value
        .get("heartbeat_age_secs")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| "status has no numeric heartbeat_age_secs (no heartbeat yet?)".to_string())
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: scrape ADDR PATH [--require SUBSTRING]... [--check-heartbeat MAX_AGE_SECS] [--out FILE]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
