//! Engine perf-regression gate.
//!
//! ```text
//! perf_diff BASELINE.json CURRENT.json [--rate-tol F]
//! ```
//!
//! Compares two engine self-profiling reports (as written by
//! `experiments all --prof-out`, i.e. the committed `BENCH_engine.json`)
//! and exits non-zero when **any deterministic counter drifted** —
//! events dispatched, heap pushes/pops, max calendar depth, transfers,
//! requests, sims, memo/trace-cache hits, or per-phase call counts. A
//! moved counter means the engine did different work; re-record the
//! baseline deliberately instead of letting it slide. Wall-clock
//! throughput (`events_per_sec`) regressions beyond the tolerance
//! (default 0.30) only print a WARN — they never fail the gate, because
//! they depend on the host.

use std::env;
use std::fs;
use std::process::ExitCode;

use bench::perf_diff::{diff, DEFAULT_RATE_TOLERANCE};

fn main() -> ExitCode {
    let mut files = Vec::new();
    let mut tol = DEFAULT_RATE_TOLERANCE;
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rate-tol" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tol = v,
                _ => return usage("--rate-tol needs a non-negative number"),
            },
            "--help" | "-h" => return usage(""),
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        return usage("expected exactly two report files");
    };
    let read = |path: &str| match fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::FAILURE;
    };
    match diff(&baseline, &current, tol) {
        Ok(report) => {
            print!("{}", report.render());
            let warns = report.warnings().len();
            if report.passed() {
                println!(
                    "perf_diff: {} deterministic counters identical, {warns} throughput warnings",
                    report.counters.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "perf_diff: {} of {} deterministic counters drifted — engine behaviour changed",
                    report.failures().len(),
                    report.counters.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("perf_diff: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: perf_diff BASELINE.json CURRENT.json [--rate-tol F]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
