//! Attribution-report regression differ.
//!
//! ```text
//! trace_diff BASELINE.json CURRENT.json [--tol F]
//! ```
//!
//! Compares two energy-waste attribution reports (as written by
//! `experiments trace-report --attrib-out`) bucket by bucket on
//! *fractions of run energy* and exits non-zero when any bucket's share
//! drifted by more than the tolerance (default 0.02) or the run/bucket
//! structure changed. CI diffs every traced sweep against the committed
//! `crates/bench/baselines/attrib_quick.json`.

use std::env;
use std::fs;
use std::process::ExitCode;

use bench::trace_diff::{diff, DEFAULT_TOLERANCE};

fn main() -> ExitCode {
    let mut files = Vec::new();
    let mut tol = DEFAULT_TOLERANCE;
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tol" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tol = v,
                _ => return usage("--tol needs a non-negative number"),
            },
            "--help" | "-h" => return usage(""),
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        return usage("expected exactly two report files");
    };
    let read = |path: &str| match fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::FAILURE;
    };
    match diff(&baseline, &current, tol) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                println!(
                    "trace_diff: {} buckets within tolerance",
                    report.entries.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "trace_diff: {} of {} buckets drifted beyond {tol}",
                    report.failures().len(),
                    report.entries.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("trace_diff: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: trace_diff BASELINE.json CURRENT.json [--tol F]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
