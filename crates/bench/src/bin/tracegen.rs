//! Generates the paper's workload traces to files, inspects them, and
//! replays them through the simulator.
//!
//! ```text
//! tracegen gen  <oltp-st|synthetic-st|oltp-db|synthetic-db|tpch> OUT [--ms N] [--seed S] [--text]
//! tracegen info FILE
//! tracegen run  FILE [--scheme baseline|ta|ta-pl] [--mu X]
//! ```
//!
//! Files are the compact binary format by default (`--text` for the
//! human-auditable one); `info` and `run` auto-detect the format.

use std::env;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom};
use std::process::ExitCode;

use dma_trace::{Trace, TraceGen};
use dmamem::{Scheme, ServerSimulator, SystemConfig};
use simcore::SimDuration;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        _ => Err("expected a subcommand: gen | info | run".to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage:\n  tracegen gen <oltp-st|synthetic-st|oltp-db|synthetic-db|tpch> OUT [--ms N] [--seed S] [--text]\n  tracegen info FILE\n  tracegen run FILE [--scheme baseline|ta|ta-pl] [--mu X]"
            );
            ExitCode::FAILURE
        }
    }
}

fn generator(name: &str) -> Result<Box<dyn TraceGen>, String> {
    Ok(match name {
        "oltp-st" => Box::new(dma_trace::OltpStGen::default()),
        "synthetic-st" => Box::new(dma_trace::SyntheticStorageGen::default()),
        "oltp-db" => Box::new(dma_trace::OltpDbGen::default()),
        "synthetic-db" => Box::new(dma_trace::SyntheticDbGen::default()),
        "tpch" => Box::new(dma_trace::TpchScanGen::default()),
        other => return Err(format!("unknown workload {other:?}")),
    })
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("bad value for {flag}")),
    }
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("gen needs a workload name")?;
    let out = args.get(1).ok_or("gen needs an output path")?;
    let ms: u64 = parse_flag(args, "--ms", 20)?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let text = args.iter().any(|a| a == "--text");

    let gen = generator(name)?;
    let trace = gen.generate(SimDuration::from_ms(ms), seed);
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut w = BufWriter::new(file);
    if text {
        trace.write_text(&mut w).map_err(|e| e.to_string())?;
    } else {
        trace.write_binary(&mut w).map_err(|e| e.to_string())?;
    }
    println!(
        "{}: {} events over {} ms -> {out}",
        gen.name(),
        trace.len(),
        ms
    );
    Ok(())
}

fn load(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(|e| e.to_string())?;
    r.seek(SeekFrom::Start(0)).map_err(|e| e.to_string())?;
    if &magic == b"DMTR" {
        Trace::read_binary(r).map_err(|e| e.to_string())
    } else {
        Trace::read_text(r).map_err(|e| e.to_string())
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("info needs a file")?;
    let trace = load(path)?;
    println!("{}", trace.stats());
    println!("popularity: {}", trace.popularity_cdf());
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run needs a file")?;
    let scheme_name: String = parse_flag(args, "--scheme", "ta-pl".to_string())?;
    let mu: f64 = parse_flag(args, "--mu", 1.0)?;
    let scheme = match scheme_name.as_str() {
        "baseline" => Scheme::baseline(),
        "ta" => Scheme::dma_ta(mu),
        "ta-pl" => Scheme::dma_ta_pl(mu, 2),
        other => return Err(format!("unknown scheme {other:?}")),
    };
    let trace = load(path)?;
    let r = ServerSimulator::new(SystemConfig::default(), scheme).run(&trace);
    println!("{r}");
    println!("{}", r.energy);
    Ok(())
}
