//! Regenerates every table and figure of the paper as text.
//!
//! ```text
//! experiments [EXHIBIT] [--ms N] [--seed S] [--threads N] [--quick]
//! ```
//!
//! `EXHIBIT` is one of `table1 table2 fig2a fig2b fig3 fig4 fig5 fig6 fig7
//! fig8 fig9 fig10 groups all` (default `all`). `--ms` sets the simulated
//! trace length per run (default 50), `--seed` the workload seed (default
//! 42), and `--csv DIR` additionally writes each figure's data as CSV files
//! into `DIR` for replotting.
//!
//! Sweep-engine flags: `--threads N` runs the figure simulations on `N`
//! workers (`0` = all cores, the default; output is bit-identical at any
//! thread count), `--quick` shrinks the trace to the 2-ms smoke
//! configuration, and `--timing-out FILE` times the full figure matrix
//! serially and in parallel and writes the comparison as JSON (the
//! committed `BENCH_sweep.json` baseline).
//!
//! Engine self-profiling flags: `--prof-out FILE` writes the engine
//! profile of everything the run executed — deterministic hot-path
//! counters (events dispatched, heap pushes/pops, max calendar depth,
//! transfers, requests, memo/trace-cache hits per figure) plus wall-clock
//! events/sec — as JSON (the committed `BENCH_engine.json` baseline the
//! `perf_diff` gate compares against); its confirmation goes to stderr so
//! stdout stays byte-identical with and without profiling. Per-figure
//! attribution requires a per-figure exhibit or `all`. `--prof-summary`
//! prints the same profile as a table with a wall-clock phase breakdown.
//!
//! Observability flags add an instrumented DMA-TA-PL(2) run on OLTP-St:
//! `--events-out FILE` exports its structured event stream as JSONL,
//! `--metrics-out FILE` writes the metrics-registry snapshot as JSON, and
//! `--obs-summary` prints the per-run summary (counters, slack ledger,
//! replayed guarantee verdict, span timings).
//!
//! The `trace-report` exhibit runs the Figure-2 workloads (plus OLTP-St
//! under DMA-TA-PL(2)) with transfer-level causal tracing:
//! `--trace-out FILE` writes the DMA-TA run's span trace as Chrome
//! `trace_event` JSON (open at <https://ui.perfetto.dev>), `--attrib-out
//! FILE` writes the energy-waste attribution report consumed by the
//! `trace_diff` regression differ, `--attrib-summary` prints per-run
//! bucket percentages, and `--check` validates every span tree and the
//! bucket-sum invariant, failing the process on any violation.
//! `--trace-spill N` shrinks the exported run's span ring to `N` records
//! and streams displaced records to the `--trace-out` file incrementally
//! (bounded memory; loss shows up in the `dmamem.trace.spilled` /
//! `dmamem.trace.dropped` counters, never silently).
//!
//! `--serve ADDR` (e.g. `127.0.0.1:9091`, port `0` for ephemeral) starts
//! the live telemetry server for the duration of the run: `GET /metrics`
//! is Prometheus text exposition of the live snapshot, `GET /status`
//! reports figure/wave/job progress, heartbeat age, and the engine's
//! sim-clock watermark, and `GET /events?since=N` tails the event ring.
//! The bound address goes to stderr; stdout and every artifact stay
//! byte-identical with the server on or off.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use bench::sweep::SweepRunner;
use bench::{
    breakdown_line, fig10_table, fig4_table, fig5_table, fig7_table, fig8_table, fig9_table,
    table2_rows_text, ALL_WORKLOADS, BUS_RATE_SWEEP, CP_SWEEP, INTENSITY_SWEEP, PROC_SWEEP,
};
use dmamem::experiments::{self, ExpConfig};
use simcore::obs::serve::serve;
use simcore::obs::{LiveState, ServerHandle, SpillSink};
use simcore::SimDuration;

fn main() -> ExitCode {
    let mut exhibit = "all".to_string();
    let mut ms = 50u64;
    let mut ms_set = false;
    let mut seed = 42u64;
    let mut threads = 0usize;
    let mut quick = false;
    let mut csv_dir: Option<PathBuf> = None;
    let mut timing_out: Option<PathBuf> = None;
    let mut events_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut obs_summary = false;
    let mut prof_out: Option<PathBuf> = None;
    let mut prof_summary = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut attrib_out: Option<PathBuf> = None;
    let mut attrib_summary = false;
    let mut trace_check = false;
    let mut trace_spill: Option<usize> = None;
    let mut serve_addr: Option<String> = None;
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => {
                    ms = v;
                    ms_set = true;
                }
                None => return usage("--ms needs a number"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs a number"),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => threads = v,
                None => return usage("--threads needs a number (0 = all cores)"),
            },
            "--quick" => quick = true,
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => return usage("--csv needs a directory"),
            },
            "--timing-out" => match args.next() {
                Some(f) => timing_out = Some(PathBuf::from(f)),
                None => return usage("--timing-out needs a file"),
            },
            "--events-out" => match args.next() {
                Some(f) => events_out = Some(PathBuf::from(f)),
                None => return usage("--events-out needs a file"),
            },
            "--metrics-out" => match args.next() {
                Some(f) => metrics_out = Some(PathBuf::from(f)),
                None => return usage("--metrics-out needs a file"),
            },
            "--obs-summary" => obs_summary = true,
            "--prof-out" => match args.next() {
                Some(f) => prof_out = Some(PathBuf::from(f)),
                None => return usage("--prof-out needs a file"),
            },
            "--prof-summary" => prof_summary = true,
            "--trace-out" => match args.next() {
                Some(f) => trace_out = Some(PathBuf::from(f)),
                None => return usage("--trace-out needs a file"),
            },
            "--attrib-out" => match args.next() {
                Some(f) => attrib_out = Some(PathBuf::from(f)),
                None => return usage("--attrib-out needs a file"),
            },
            "--attrib-summary" => attrib_summary = true,
            "--check" => trace_check = true,
            "--trace-spill" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => trace_spill = Some(v),
                _ => return usage("--trace-spill needs a positive record count"),
            },
            "--serve" => match args.next() {
                Some(a) => serve_addr = Some(a),
                None => return usage("--serve needs an address (e.g. 127.0.0.1:0)"),
            },
            "--help" | "-h" => return usage(""),
            other if !other.starts_with('-') => exhibit = other.to_string(),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    if quick && !ms_set {
        ms = 2;
    }
    if trace_spill.is_some() && trace_out.is_none() {
        return usage("--trace-spill requires --trace-out (it streams into that file)");
    }
    let exp = ExpConfig {
        duration: SimDuration::from_ms(ms),
        seed,
    };
    let mut runner = SweepRunner::new(threads);
    if prof_out.is_some() || prof_summary {
        // Arms the wall-clock phase timers; deterministic counters are
        // always collected and results stay byte-identical either way.
        runner = runner.with_profiling(true);
    }
    let mut server: Option<ServerHandle> = None;
    if let Some(addr) = &serve_addr {
        let state = Arc::new(LiveState::new());
        match serve(addr, Arc::clone(&state)) {
            Ok(h) => {
                // Bound address on stderr: stdout must stay byte-identical
                // with and without --serve.
                eprintln!(
                    "(live telemetry on http://{}/ — endpoints: /metrics /status /events)",
                    h.addr()
                );
                server = Some(h);
            }
            Err(e) => {
                eprintln!("error: cannot bind telemetry server on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
        runner = runner.with_live(state);
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let write_csv = |name: &str, contents: String| {
        if let Some(dir) = &csv_dir {
            let path = dir.join(name);
            if let Err(e) = fs::write(&path, contents) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("(csv written to {})", path.display());
            }
        }
    };
    let all = exhibit == "all";
    let mut matched = false;
    let section = |name: &str| {
        println!("\n================ {name} ================");
    };

    if all || exhibit == "table1" {
        matched = true;
        section("Table 1: RDRAM power model");
        println!("{}", experiments::table1_text());
    }
    if all || exhibit == "table2" {
        matched = true;
        section("Table 2: trace characteristics");
        println!("{}", table2_rows_text(&runner.table2(exp)));
        println!("(paper: OLTP-St 45.0 net + 16.7 disk /ms; OLTP-Db 100/ms + 23,300 proc/ms)");
    }
    if all || exhibit == "fig2a" {
        matched = true;
        section("Figure 2(a): cycle waste during one DMA transfer");
        let f = experiments::fig2a();
        println!(
            "serving {:.1} cycles + idle {:.1} cycles per request; measured single-transfer uf = {:.3} (paper: 4 + 8, uf = 1/3)",
            f.serving_cycles, f.idle_cycles, f.measured_uf
        );
        println!("\n{}", experiments::fig2a_timeline());
    }
    if all || exhibit == "fig2b" {
        matched = true;
        section("Figure 2(b): baseline energy breakdowns");
        for (name, e) in runner.fig2b(exp) {
            println!("{name}: {}", breakdown_line(&e));
        }
        println!("(paper: Active Idle DMA 48-51%, Active Serving 26-27%, threshold 3-4%)");
    }
    if all || exhibit == "fig3" {
        matched = true;
        section("Figure 3: temporal alignment of staggered transfers");
        let f = experiments::fig3();
        println!(
            "baseline uf {:.2} -> DMA-TA uf {:.2} ({} first requests delayed, then lockstep)",
            f.baseline_uf, f.ta_uf, f.delayed_firsts
        );
        println!("\n{}", experiments::fig3_timeline());
    }
    if all || exhibit == "fig4" {
        matched = true;
        section("Figure 4: OLTP-St page-popularity CDF");
        let pts = experiments::fig4(exp, 10);
        println!("{}", fig4_table(&pts));
        write_csv("fig4.csv", bench::csv::fig4(&pts));
        println!("(paper: ~20% of pages receive ~60% of DMA accesses)");
    }
    if all || exhibit == "fig5" {
        matched = true;
        section("Figure 5: energy savings vs CP-Limit");
        let rows = runner.fig5(exp, &ALL_WORKLOADS, &CP_SWEEP);
        println!("{}", fig5_table(&rows));
        write_csv("fig5.csv", bench::csv::fig5(&rows));
        println!("(paper: up to 38.6% for OLTP-St DMA-TA-PL(2) at 10%; savings rise then plateau)");
    }
    if all || exhibit == "fig6" {
        matched = true;
        section("Figure 6: energy breakdowns at 10% CP-Limit (OLTP-St)");
        let mut csv = String::from("scheme,category,energy_mj,fraction\n");
        for (name, e) in runner.fig6(exp, 0.10) {
            println!("{name}: {}", breakdown_line(&e));
            csv.push_str(&bench::csv::breakdown(&name, &e));
        }
        write_csv("fig6.csv", csv);
    }
    if all || exhibit == "fig7" {
        matched = true;
        section("Figure 7: utilization factors vs CP-Limit (OLTP-St)");
        let rows = runner.fig7(exp, &CP_SWEEP);
        println!("{}", fig7_table(&rows));
        write_csv("fig7.csv", bench::csv::fig7(&rows));
        println!("(paper: baseline ~0.33; DMA-TA-PL 0.63 at 10%, 0.75 at 30%)");
    }
    if all || exhibit == "fig8" {
        matched = true;
        section("Figure 8: savings vs workload intensity (Synthetic-St)");
        let rows = runner.fig8(exp, &INTENSITY_SWEEP, 0.10);
        println!("{}", fig8_table(&rows));
        write_csv("fig8.csv", bench::csv::fig8(&rows));
    }
    if all || exhibit == "fig9" {
        matched = true;
        section("Figure 9: savings vs processor accesses per transfer (Synthetic-Db)");
        let rows = runner.fig9(exp, &PROC_SWEEP, 0.10);
        println!("{}", fig9_table(&rows));
        write_csv("fig9.csv", bench::csv::fig9(&rows));
        println!(
            "(paper: savings drop with processor accesses but stay significant; OLTP-Db ~233)"
        );
    }
    if all || exhibit == "fig10" {
        matched = true;
        section("Figure 10: savings vs memory/I-O bandwidth ratio");
        let rows = runner.fig10(exp, &BUS_RATE_SWEEP, 0.10);
        println!("{}", fig10_table(&rows));
        write_csv("fig10.csv", bench::csv::fig10(&rows));
        println!("(paper: ~5% at ratio ~1, growing with the ratio)");
    }

    if all || exhibit == "tpch" {
        matched = true;
        section("Extension: TPC-H-style scans (paper future work)");
        for row in runner.tpch(exp, 0.10) {
            println!(
                "{}: savings {:+.1}%, uf {:.2}, {} page moves",
                row.scheme,
                row.savings * 100.0,
                row.uf,
                row.page_moves
            );
        }
        println!("(uniform scan popularity: PL has nothing to concentrate; DMA-TA still aligns colliding scans)");
    }
    if all || exhibit == "groups" {
        matched = true;
        section("Ablation: PL group count (scaled 64-frame chips, Zipf 0.5)");
        for row in runner.group_ablation(exp, 0.10) {
            println!(
                "K = {}: savings {:+.1}% ({} page moves)",
                row.groups,
                row.savings * 100.0,
                row.page_moves
            );
        }
        println!("(paper Figure 5: K = 2 best; K = 6 pays heavy migration churn, e.g. -15.2% on OLTP-St)");
    }

    if events_out.is_some() || metrics_out.is_some() || obs_summary {
        matched = true;
        section("Observability: instrumented DMA-TA-PL(2) run (OLTP-St)");
        let run = runner.observed_run(exp, 0.10, 1 << 18);
        print!("{}", bench::obs_summary_table(&run));
        let obs = run.result.obs.as_ref().expect("instrumented run");
        if let Some(path) = &events_out {
            match fs::write(path, obs.events.to_jsonl()) {
                Ok(()) => println!("(events written to {})", path.display()),
                Err(e) => {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(path) = &metrics_out {
            match fs::write(path, obs.metrics.to_json()) {
                Ok(()) => println!("(metrics written to {})", path.display()),
                Err(e) => {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        write_csv("obs_summary.csv", bench::csv::obs_summary(&run));
    }

    if exhibit == "trace-report"
        || trace_out.is_some()
        || attrib_out.is_some()
        || attrib_summary
        || trace_check
    {
        matched = true;
        section("Trace report: causally-traced runs (fig-2 workloads + DMA-TA)");
        // With --trace-spill the exported run keeps only N records
        // resident and streams the rest straight into --trace-out.
        let spill_sink = match (&trace_spill, &trace_out) {
            (Some(_), Some(path)) => match SpillSink::file(path) {
                Ok(sink) => Some(sink),
                Err(e) => {
                    eprintln!("error: cannot create {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            _ => None,
        };
        let capacity = trace_spill.unwrap_or(1 << 20);
        let mut runs = runner.traced_runs_spill(exp, 0.10, capacity, spill_sink);
        let attribs: Vec<_> = runs.iter().map(|r| r.attribution()).collect();
        for a in &attribs {
            println!("{}", a.summary_line());
        }
        if trace_check {
            for (run, a) in runs.iter().zip(&attribs) {
                let trace = run.result.trace.as_ref().expect("traced run");
                match trace.validate() {
                    Ok(stats) => println!(
                        "check {} / {}: {} spans, {} records, {} dropped — span tree valid",
                        a.workload, a.scheme, stats.spans, stats.records, stats.dropped
                    ),
                    Err(e) => {
                        eprintln!("error: {} / {}: invalid trace: {e}", a.workload, a.scheme);
                        return ExitCode::FAILURE;
                    }
                }
                let err = a.checksum_rel_err();
                if err > 1e-9 {
                    eprintln!(
                        "error: {} / {}: attribution buckets missum total energy (rel err {err:e})",
                        a.workload, a.scheme
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "check {} / {}: buckets sum to {:.3} mJ (rel err {err:.1e})",
                    a.workload, a.scheme, a.total_mj
                );
            }
        }
        if let Some(path) = &trace_out {
            if trace_spill.is_some() {
                // Spill mode: displaced records are already in the file;
                // append the retained ring and the JSON footer.
                let trace = runs
                    .last_mut()
                    .and_then(|r| r.result.trace.as_mut())
                    .expect("traced run");
                let spilled = trace.spilled();
                trace.finalize_spill();
                println!(
                    "(Perfetto trace written to {}; open at https://ui.perfetto.dev)",
                    path.display()
                );
                eprintln!(
                    "(spill mode: {} record(s) streamed, {} dropped, ring capacity {})",
                    spilled,
                    trace.dropped(),
                    capacity
                );
            } else {
                // The DMA-TA run (last) is the causally richest export.
                let trace = runs
                    .last()
                    .and_then(|r| r.result.trace.as_ref())
                    .expect("traced run");
                match fs::write(path, trace.to_chrome_json()) {
                    Ok(()) => println!(
                        "(Perfetto trace written to {}; open at https://ui.perfetto.dev)",
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("error: cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        if let Some(path) = &attrib_out {
            match fs::write(path, dmamem::attribution_json(&attribs)) {
                Ok(()) => println!("(attribution report written to {})", path.display()),
                Err(e) => {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if let Some(path) = &timing_out {
        matched = true;
        section("Sweep engine: serial vs parallel figure matrix");
        let report = bench::sweep::timing_report(exp, threads);
        print!("{}", report.to_markdown_table());
        println!(
            "({} worker(s) on {} core(s); memo {} hits / {} misses)",
            report.threads, report.cores, report.memo.hits, report.memo.misses
        );
        if let Err(e) = fs::write(path, report.to_json()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("(timing baseline written to {})", path.display());
    }

    if prof_out.is_some() || prof_summary {
        matched = true;
        let report = bench::perf_report::EngineReport::from_runner(&runner, ms as f64, seed);
        if prof_summary {
            section("Engine profile: hot-path counters and throughput");
            print!("{}", report.summary());
        }
        if let Some(path) = &prof_out {
            if let Err(e) = fs::write(path, report.to_json()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            // Confirmation on stderr: --prof-out must leave stdout
            // byte-identical to an unprofiled run.
            eprintln!("(engine profile written to {})", path.display());
        }
    }

    if !matched {
        return usage(&format!("unknown exhibit {exhibit:?}"));
    }
    let stats = runner.memo_stats();
    if stats.hits + stats.misses > 0 {
        println!(
            "\n(sweep engine: {} simulations run, {} served from memo, {} worker thread(s))",
            stats.misses,
            stats.hits,
            runner.threads()
        );
    }
    // Orderly shutdown (Drop also covers the early-return paths).
    if let Some(h) = server {
        h.shutdown();
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: experiments [table1|table2|fig2a|fig2b|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|groups|tpch|trace-report|all] [--ms N] [--seed S] [--threads N] [--quick] [--csv DIR] [--timing-out FILE] [--prof-out FILE] [--prof-summary] [--events-out FILE] [--metrics-out FILE] [--obs-summary] [--trace-out FILE] [--trace-spill N] [--attrib-out FILE] [--attrib-summary] [--serve ADDR] [--check]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
