//! Figure-level orchestration of the parallel sweep engine.
//!
//! [`SweepRunner`] wraps a [`dmamem::sweep::SweepCtx`] and exposes one
//! method per simulation-heavy exhibit, timing each figure's wall clock.
//! Because every figure runs through the same context, traces and
//! baselines memoize *across* figures — the OLTP-St baseline that Figure 5
//! simulates is the one Figures 6 and 7 read back for free.
//!
//! [`timing_report`] runs the full figure matrix twice — once on a fresh
//! serial context, once on a fresh parallel one — and returns a
//! [`TimingReport`] that renders as the committed `BENCH_sweep.json`
//! baseline and as the timing table in `EXPERIMENTS.md`.

use std::sync::Arc;
use std::time::Instant;

use dma_trace::TraceStats;
use dmamem::experiments::{
    self, ExpConfig, Fig10Row, Fig5Row, Fig7Row, Fig8Row, Fig9Row, GroupAblationRow, ObservedRun,
    TpchRow, TracedRun, Workload,
};
use dmamem::sweep::{MemoStats, ProfTotals, SweepCtx};
use mempower::EnergyBreakdown;
use simcore::obs::{LiveState, SpillSink};

use crate::{ALL_WORKLOADS, BUS_RATE_SWEEP, CP_SWEEP, INTENSITY_SWEEP, PROC_SWEEP};

/// Wall-clock time and engine accounting of one figure run.
#[derive(Debug, Clone, PartialEq)]
pub struct FigTime {
    /// Exhibit name (`fig5`, `groups`, ...).
    pub figure: String,
    /// Wall-clock milliseconds the figure took on the runner's context.
    pub ms: f64,
    /// Memoized results this figure consumed (hits during this figure).
    pub memo_hits: u64,
    /// Simulations this figure actually executed.
    pub memo_misses: u64,
    /// Traces this figure read back from the trace cache.
    pub trace_hits: u64,
    /// Traces this figure generated.
    pub trace_misses: u64,
    /// Engine self-profile accumulated during this figure (deterministic
    /// counters; `max_heap_depth` is the per-figure window max).
    pub prof: ProfTotals,
}

/// A sweep context plus per-figure wall-clock accounting.
pub struct SweepRunner {
    ctx: SweepCtx,
    timings: Vec<FigTime>,
    live: Option<Arc<LiveState>>,
}

impl SweepRunner {
    /// Creates a runner on `threads` workers (`0` = all available).
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            ctx: SweepCtx::new(threads),
            timings: Vec::new(),
            live: None,
        }
    }

    /// Arms wall-clock phase timers on every simulation (deterministic
    /// profile counters are collected either way; results stay
    /// bit-identical — see [`dmamem::sweep::SweepCtx::with_profiling`]).
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.ctx = self.ctx.with_profiling(on);
        self
    }

    /// Attaches shared live-telemetry state (see
    /// [`dmamem::sweep::SweepCtx::with_live`]): each [`timed`] figure
    /// publishes its name and a heartbeat, sweep waves and job counts
    /// stream in as they run, and the instrumented observability run
    /// mirrors its metrics snapshot and event tail into the live
    /// `/metrics` and `/events` endpoints. Figure outputs stay
    /// byte-identical with or without it.
    ///
    /// [`timed`]: SweepRunner::timed
    pub fn with_live(mut self, live: Arc<LiveState>) -> Self {
        self.ctx = self.ctx.with_live(Arc::clone(&live));
        self.live = Some(live);
        self
    }

    /// The underlying sweep context.
    pub fn ctx(&self) -> &SweepCtx {
        &self.ctx
    }

    /// Worker threads in use.
    pub fn threads(&self) -> usize {
        self.ctx.threads()
    }

    /// Memoization statistics accumulated across all figures run so far.
    pub fn memo_stats(&self) -> MemoStats {
        self.ctx.memo_stats()
    }

    /// Per-figure wall-clock times, in run order.
    pub fn timings(&self) -> &[FigTime] {
        &self.timings
    }

    /// Times `run` against the runner's context and records it under
    /// `figure`.
    pub fn timed<T>(&mut self, figure: &str, run: impl FnOnce(&SweepCtx) -> T) -> T {
        if let Some(live) = &self.live {
            live.set_figure(figure);
            live.heartbeat();
        }
        let memo_before = self.ctx.memo_stats();
        let prof_before = self.ctx.prof_totals();
        self.ctx.take_window_max_depth(); // reset the per-figure window
        let start = Instant::now();
        let out = run(&self.ctx);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if let Some(live) = &self.live {
            live.heartbeat();
        }
        let memo = self.ctx.memo_stats();
        let mut prof = self.ctx.prof_totals().since(&prof_before);
        prof.max_heap_depth = self.ctx.take_window_max_depth();
        self.timings.push(FigTime {
            figure: figure.to_string(),
            ms,
            memo_hits: memo.hits - memo_before.hits,
            memo_misses: memo.misses - memo_before.misses,
            trace_hits: memo.trace_hits - memo_before.trace_hits,
            trace_misses: memo.trace_misses - memo_before.trace_misses,
            prof,
        });
        out
    }

    /// Table 2 through the shared trace cache.
    pub fn table2(&mut self, exp: ExpConfig) -> Vec<(String, TraceStats)> {
        self.timed("table2", |ctx| experiments::table2_ctx(ctx, exp))
    }

    /// Figure 2(b) on the shared context.
    pub fn fig2b(&mut self, exp: ExpConfig) -> Vec<(String, EnergyBreakdown)> {
        self.timed("fig2b", |ctx| experiments::fig2b_ctx(ctx, exp))
    }

    /// Figure 5 on the shared context.
    pub fn fig5(
        &mut self,
        exp: ExpConfig,
        workloads: &[Workload],
        cp_limits: &[f64],
    ) -> Vec<Fig5Row> {
        self.timed("fig5", |ctx| {
            experiments::fig5_ctx(ctx, exp, workloads, cp_limits)
        })
    }

    /// Figure 6 on the shared context.
    pub fn fig6(&mut self, exp: ExpConfig, cp_limit: f64) -> Vec<(String, EnergyBreakdown)> {
        self.timed("fig6", |ctx| experiments::fig6_ctx(ctx, exp, cp_limit))
    }

    /// Figure 7 on the shared context.
    pub fn fig7(&mut self, exp: ExpConfig, cp_limits: &[f64]) -> Vec<Fig7Row> {
        self.timed("fig7", |ctx| experiments::fig7_ctx(ctx, exp, cp_limits))
    }

    /// Figure 8 on the shared context.
    pub fn fig8(&mut self, exp: ExpConfig, rates: &[f64], cp_limit: f64) -> Vec<Fig8Row> {
        self.timed("fig8", |ctx| {
            experiments::fig8_ctx(ctx, exp, rates, cp_limit)
        })
    }

    /// Figure 9 on the shared context.
    pub fn fig9(&mut self, exp: ExpConfig, counts: &[f64], cp_limit: f64) -> Vec<Fig9Row> {
        self.timed("fig9", |ctx| {
            experiments::fig9_ctx(ctx, exp, counts, cp_limit)
        })
    }

    /// Figure 10 on the shared context.
    pub fn fig10(&mut self, exp: ExpConfig, bus_rates: &[f64], cp_limit: f64) -> Vec<Fig10Row> {
        self.timed("fig10", |ctx| {
            experiments::fig10_ctx(ctx, exp, bus_rates, cp_limit)
        })
    }

    /// The PL group-count ablation on the shared context.
    pub fn group_ablation(&mut self, exp: ExpConfig, cp_limit: f64) -> Vec<GroupAblationRow> {
        self.timed("groups", |ctx| {
            experiments::group_ablation_ctx(ctx, exp, cp_limit)
        })
    }

    /// The TPC-H extension on the shared context.
    pub fn tpch(&mut self, exp: ExpConfig, cp_limit: f64) -> Vec<TpchRow> {
        self.timed("tpch", |ctx| experiments::tpch_ctx(ctx, exp, cp_limit))
    }

    /// The instrumented observability run, with its baseline memoized.
    ///
    /// With live telemetry attached, the run's metrics snapshot merges
    /// into the live `/metrics` exposition and the tail of its event
    /// stream lands in the `/events` ring.
    pub fn observed_run(
        &mut self,
        exp: ExpConfig,
        cp_limit: f64,
        event_capacity: usize,
    ) -> ObservedRun {
        let run = self.timed("observed", |ctx| {
            experiments::observed_run_ctx(ctx, exp, cp_limit, event_capacity)
        });
        if let (Some(live), Some(obs)) = (&self.live, run.result.obs.as_ref()) {
            live.merge_metrics(&obs.metrics);
            for (_, line) in obs.events.lines_since(0) {
                live.push_event_line(line);
            }
        }
        run
    }

    /// The causally-traced runs (Figure-2 workloads plus a DMA-TA run),
    /// with their baselines and traces memoized.
    pub fn traced_runs(
        &mut self,
        exp: ExpConfig,
        cp_limit: f64,
        capacity: usize,
    ) -> Vec<TracedRun> {
        self.traced_runs_spill(exp, cp_limit, capacity, None)
    }

    /// [`traced_runs`](SweepRunner::traced_runs) with bounded-memory
    /// spill armed on the exported DMA-TA run (see
    /// [`dmamem::experiments::traced_runs_spill_ctx`]).
    pub fn traced_runs_spill(
        &mut self,
        exp: ExpConfig,
        cp_limit: f64,
        capacity: usize,
        spill: Option<SpillSink>,
    ) -> Vec<TracedRun> {
        self.timed("trace", |ctx| {
            experiments::traced_runs_spill_ctx(ctx, exp, cp_limit, capacity, spill)
        })
    }
}

/// Runs the full simulation-heavy figure matrix on `runner` with the
/// paper's standard sweeps.
pub fn run_figure_matrix(runner: &mut SweepRunner, exp: ExpConfig) {
    runner.table2(exp);
    runner.fig2b(exp);
    runner.fig5(exp, &ALL_WORKLOADS, &CP_SWEEP);
    runner.fig6(exp, 0.10);
    runner.fig7(exp, &CP_SWEEP);
    runner.fig8(exp, &INTENSITY_SWEEP, 0.10);
    runner.fig9(exp, &PROC_SWEEP, 0.10);
    runner.fig10(exp, &BUS_RATE_SWEEP, 0.10);
    runner.group_ablation(exp, 0.10);
    runner.tpch(exp, 0.10);
}

/// One row of a [`TimingReport`]: a figure timed serially and in parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct FigComparison {
    /// Exhibit name.
    pub figure: String,
    /// Wall-clock on the one-worker context, milliseconds.
    pub serial_ms: f64,
    /// Wall-clock on the parallel context, milliseconds.
    pub parallel_ms: f64,
    /// Memoized results this figure consumed on the parallel context
    /// (the serial context's counts are identical by construction:
    /// dedup order is deterministic).
    pub memo_hits: u64,
    /// Simulations this figure executed on the parallel context.
    pub memo_misses: u64,
}

impl FigComparison {
    /// Serial over parallel wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            1.0
        }
    }
}

/// The serial-versus-parallel timing baseline for the full figure matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worker threads of the parallel run.
    pub threads: usize,
    /// Hardware threads the host reports.
    pub cores: usize,
    /// Simulated trace length per run, milliseconds.
    pub trace_ms: f64,
    /// Workload seed.
    pub seed: u64,
    /// Per-figure comparisons, in matrix order.
    pub figures: Vec<FigComparison>,
    /// Memoization statistics of the parallel run (the serial run's are
    /// identical by construction).
    pub memo: MemoStats,
}

impl TimingReport {
    /// Total serial wall-clock, milliseconds.
    pub fn serial_total_ms(&self) -> f64 {
        self.figures.iter().map(|f| f.serial_ms).sum()
    }

    /// Total parallel wall-clock, milliseconds.
    pub fn parallel_total_ms(&self) -> f64 {
        self.figures.iter().map(|f| f.parallel_ms).sum()
    }

    /// Whole-matrix speedup.
    pub fn speedup(&self) -> f64 {
        let p = self.parallel_total_ms();
        if p > 0.0 {
            self.serial_total_ms() / p
        } else {
            1.0
        }
    }

    /// Renders the report as the machine-readable `BENCH_sweep.json`
    /// baseline.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"bench\": \"sweep\",\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"trace_ms\": {},\n", self.trace_ms));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"figures\": [\n");
        for (i, f) in self.figures.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"figure\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"memo_hits\": {}, \"memo_misses\": {}}}{}\n",
                f.figure,
                f.serial_ms,
                f.parallel_ms,
                f.speedup(),
                f.memo_hits,
                f.memo_misses,
                if i + 1 < self.figures.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"serial_total_ms\": {:.3},\n",
            self.serial_total_ms()
        ));
        out.push_str(&format!(
            "  \"parallel_total_ms\": {:.3},\n",
            self.parallel_total_ms()
        ));
        out.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        out.push_str(&format!(
            "  \"memo\": {{\"hits\": {}, \"misses\": {}, \"trace_hits\": {}, \"trace_misses\": {}}}\n",
            self.memo.hits, self.memo.misses, self.memo.trace_hits, self.memo.trace_misses
        ));
        out.push_str("}\n");
        out
    }

    /// Renders the report as the markdown timing table `EXPERIMENTS.md`
    /// embeds.
    pub fn to_markdown_table(&self) -> String {
        let mut out =
            String::from("| figure | serial (ms) | parallel (ms) | speedup | memo (hit/miss) |\n");
        out.push_str("|---|---:|---:|---:|---:|\n");
        for f in &self.figures {
            out.push_str(&format!(
                "| {} | {:.1} | {:.1} | {:.2}x | {}/{} |\n",
                f.figure,
                f.serial_ms,
                f.parallel_ms,
                f.speedup(),
                f.memo_hits,
                f.memo_misses
            ));
        }
        out.push_str(&format!(
            "| **total** | **{:.1}** | **{:.1}** | **{:.2}x** | **{}/{}** |\n",
            self.serial_total_ms(),
            self.parallel_total_ms(),
            self.speedup(),
            self.memo.hits,
            self.memo.misses
        ));
        out
    }
}

/// Times the full figure matrix serially and in parallel (on fresh
/// contexts, so memoization cannot leak between the two measurements) and
/// returns the comparison.
pub fn timing_report(exp: ExpConfig, threads: usize) -> TimingReport {
    let mut serial = SweepRunner::new(1);
    run_figure_matrix(&mut serial, exp);
    let mut parallel = SweepRunner::new(threads);
    run_figure_matrix(&mut parallel, exp);
    let figures = serial
        .timings()
        .iter()
        .zip(parallel.timings())
        .map(|(s, p)| {
            debug_assert_eq!(s.figure, p.figure);
            debug_assert_eq!(
                (s.memo_hits, s.memo_misses),
                (p.memo_hits, p.memo_misses),
                "memo accounting must not depend on thread count"
            );
            FigComparison {
                figure: s.figure.clone(),
                serial_ms: s.ms,
                parallel_ms: p.ms,
                memo_hits: p.memo_hits,
                memo_misses: p.memo_misses,
            }
        })
        .collect();
    TimingReport {
        threads: parallel.threads(),
        cores: simcore::par::available_threads(),
        trace_ms: exp.duration.as_ns_f64() / 1e6,
        seed: exp.seed,
        figures,
        memo: parallel.memo_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_memoizes_across_figures() {
        let exp = ExpConfig::quick();
        let mut runner = SweepRunner::new(2);
        let rows = runner.fig5(exp, &[Workload::OltpSt], &[0.10]);
        assert_eq!(rows.len(), 4);
        let after_fig5 = runner.memo_stats();
        // Figures 6 and 7 at the same CP-Limit re-read fig5's OLTP-St
        // baseline and scheme runs from the memo.
        runner.fig6(exp, 0.10);
        runner.fig7(exp, &[0.10]);
        let after = runner.memo_stats();
        assert_eq!(
            after.misses, after_fig5.misses,
            "fig6/fig7 should be fully memoized after fig5: {after:?}"
        );
        assert!(after.hits > after_fig5.hits);
        assert_eq!(after.trace_misses, 1, "one OLTP-St trace generated");
        assert_eq!(runner.timings().len(), 3);
        // Per-figure attribution: fig6/fig7 consumed the memo without
        // executing anything, and fig5's engine work is on its row.
        let [fig5, fig6, fig7] = runner.timings() else {
            panic!("three timings")
        };
        assert!(fig5.memo_misses > 0 && fig5.prof.events > 0);
        assert_eq!(fig5.prof.sims, fig5.memo_misses);
        assert!(fig5.prof.max_heap_depth > 0);
        for f in [fig6, fig7] {
            assert_eq!(f.memo_misses, 0, "{}", f.figure);
            assert!(f.memo_hits > 0, "{}", f.figure);
            assert_eq!((f.prof.sims, f.prof.events), (0, 0), "{}", f.figure);
        }
    }

    #[test]
    fn timing_report_renders_json_and_table() {
        let report = TimingReport {
            threads: 4,
            cores: 8,
            trace_ms: 2.0,
            seed: 42,
            figures: vec![
                FigComparison {
                    figure: "fig5".into(),
                    serial_ms: 100.0,
                    parallel_ms: 40.0,
                    memo_hits: 2,
                    memo_misses: 3,
                },
                FigComparison {
                    figure: "fig7".into(),
                    serial_ms: 10.0,
                    parallel_ms: 10.0,
                    memo_hits: 5,
                    memo_misses: 0,
                },
            ],
            memo: MemoStats {
                hits: 7,
                misses: 3,
                trace_hits: 5,
                trace_misses: 2,
            },
        };
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"sweep\""));
        assert!(json.contains("\"serial_total_ms\": 110.000"));
        assert!(json.contains("\"speedup\": 2.200"));
        assert!(json.contains("\"figure\": \"fig5\""));
        assert!(json.contains("\"misses\": 3"));
        assert!(json.contains("\"memo_hits\": 2, \"memo_misses\": 3"));
        let table = report.to_markdown_table();
        assert!(table.contains("| fig5 | 100.0 | 40.0 | 2.50x | 2/3 |"));
        assert!(table.contains("**2.20x**"));
        assert!(table.contains("**7/3**"));
    }
}
