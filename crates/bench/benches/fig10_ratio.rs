//! Figure 10: savings vs memory/I-O bandwidth ratio.

use bench::fig10_table;
use criterion::{criterion_group, criterion_main, Criterion};
use dmamem::experiments::{fig10, ExpConfig};

fn bench(c: &mut Criterion) {
    let exp = ExpConfig::quick();
    println!(
        "fig10 (quick):\n{}",
        fig10_table(&fig10(exp, &[1.064e9, 3.0e9], 0.10))
    );
    c.bench_function("fig10_ratio_point", |b| {
        b.iter(|| fig10(exp, &[1.064e9], 0.10))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
