//! Figure 8: savings vs workload intensity (Synthetic-St).

use bench::fig8_table;
use criterion::{criterion_group, criterion_main, Criterion};
use dmamem::experiments::{fig8, ExpConfig};

fn bench(c: &mut Criterion) {
    let exp = ExpConfig::quick();
    println!(
        "fig8 (quick):\n{}",
        fig8_table(&fig8(exp, &[50.0, 100.0, 200.0], 0.10))
    );
    c.bench_function("fig8_intensity_point", |b| {
        b.iter(|| fig8(exp, &[100.0], 0.10))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
