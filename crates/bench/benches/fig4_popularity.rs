//! Figure 4: OLTP-St page-popularity CDF — regenerates the CDF and
//! benchmarks trace generation + CDF computation.

use bench::fig4_table;
use criterion::{criterion_group, criterion_main, Criterion};
use dma_trace::{OltpStGen, TraceGen};
use dmamem::experiments::{fig4, ExpConfig};
use simcore::SimDuration;

fn bench(c: &mut Criterion) {
    let exp = ExpConfig::quick();
    println!("fig4:\n{}", fig4_table(&fig4(exp, 10)));

    c.bench_function("fig4_generate_and_cdf", |b| {
        b.iter(|| {
            let t = OltpStGen::default().generate(SimDuration::from_ms(5), 42);
            t.popularity_cdf().share_of_top(0.2)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
