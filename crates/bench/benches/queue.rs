//! Event-queue microbench: binary heap vs calendar wheel on the
//! recorded fig5 schedule shape.
//!
//! The workload replays what `BENCH_engine.json` measured on the fig5
//! row: a steady-state calendar depth around 125 entries whose
//! interarrival offsets are dominated by memory service completions
//! (2.5 ns), bus slot ticks (7.52 ns), and policy-timer thresholds
//! (~19 ns), with occasional wake transitions (6 µs) and rare epoch
//! ticks (100 µs) that exercise the wheel's overflow horizon. Both
//! queues run the exact same deterministic schedule/pop script, so the
//! comparison isolates queue mechanics.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simcore::rng::DetRng;
use simcore::{EventQueue, HeapQueue, SimDuration, SimTime};

/// Mean pending depth measured on the fig5 row (49.4 entries at pop:
/// ~1 fast-slot + ~13 in-window + ~36 far/overflow; lifetime max 125).
const DEPTH: usize = 48;
/// Schedule/pop steps per iteration.
const STEPS: usize = 4096;

/// Schedule-offset distribution measured on the fig5 row (53.1 M
/// schedules histogrammed by `time - last_popped_time`): (picoseconds,
/// per-mille weight). Memory service, bus slots, and policy thresholds
/// dominate; ~1.8% of traffic lands past the wheel's ~1 µs horizon in
/// the overflow heap — exactly the rate the engine produces it.
const OFFSETS_PS: [(u64, u32); 9] = [
    (0, 21),          // same-time / past reschedules
    (1_000, 19),      // sub-ns completions
    (4_000, 336),     // memory service completion
    (8_000, 270),     // PCI-X bus slot
    (19_000, 299),    // standby policy threshold
    (65_000, 17),     // short service gaps
    (262_000, 21),    // inter-request gaps
    (1_000_000, 6),   // trace gaps near the horizon
    (16_700_000, 11), // wake transitions / epoch ticks (overflow)
];

fn draw_offset(rng: &mut DetRng) -> SimDuration {
    let mut roll = (rng.next_u64() % 1000) as u32;
    for &(ps, weight) in &OFFSETS_PS {
        if roll < weight {
            return SimDuration::from_ps(ps);
        }
        roll -= weight;
    }
    SimDuration::from_ps(OFFSETS_PS[0].0)
}

/// One churn iteration: refill to depth, then alternate schedule/pop so
/// the queue stays near the recorded steady state.
fn churn_wheel(seed: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = DetRng::new(seed);
    let mut now = SimTime::ZERO;
    let mut acc = 0u64;
    for i in 0..DEPTH as u64 {
        q.schedule(now + draw_offset(&mut rng), i);
    }
    for i in 0..STEPS as u64 {
        let (t, ev) = q.pop().expect("steady-state queue never drains");
        now = t;
        acc = acc.wrapping_add(ev);
        q.schedule(now + draw_offset(&mut rng), i);
    }
    acc
}

fn churn_heap(seed: u64) -> u64 {
    let mut q: HeapQueue<u64> = HeapQueue::new();
    let mut rng = DetRng::new(seed);
    let mut now = SimTime::ZERO;
    let mut acc = 0u64;
    for i in 0..DEPTH as u64 {
        q.schedule(now + draw_offset(&mut rng), i);
    }
    for i in 0..STEPS as u64 {
        let (t, ev) = q.pop().expect("steady-state queue never drains");
        now = t;
        acc = acc.wrapping_add(ev);
        q.schedule(now + draw_offset(&mut rng), i);
    }
    acc
}

/// The script without any queue: isolates rng/loop overhead so the two
/// queue rows can be read as queue-mechanics cost.
fn churn_baseline(seed: u64) -> u64 {
    let mut rng = DetRng::new(seed);
    let mut now = SimTime::ZERO;
    let mut acc = 0u64;
    for _ in 0..DEPTH as u64 {
        now = now.max(SimTime::ZERO + draw_offset(&mut rng));
    }
    for i in 0..STEPS as u64 {
        now = now.max(SimTime::ZERO + draw_offset(&mut rng));
        acc = acc.wrapping_add(i ^ now.as_ps());
    }
    acc
}

fn bench(c: &mut Criterion) {
    // The two scripts are identical; sanity-check equivalence before
    // timing so the bench cannot silently compare different work.
    assert_eq!(churn_wheel(42), churn_heap(42));
    c.bench_function("queue_wheel_fig5_churn", |b| {
        b.iter(|| black_box(churn_wheel(black_box(42))))
    });
    c.bench_function("queue_heap_fig5_churn", |b| {
        b.iter(|| black_box(churn_heap(black_box(42))))
    });
    c.bench_function("queue_rng_baseline", |b| {
        b.iter(|| black_box(churn_baseline(black_box(42))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
