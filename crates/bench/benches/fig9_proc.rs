//! Figure 9: savings vs processor accesses per transfer (Synthetic-Db).

use bench::fig9_table;
use criterion::{criterion_group, criterion_main, Criterion};
use dmamem::experiments::{fig9, ExpConfig};

fn bench(c: &mut Criterion) {
    let exp = ExpConfig::quick();
    println!(
        "fig9 (quick):\n{}",
        fig9_table(&fig9(exp, &[0.0, 100.0, 233.0], 0.10))
    );
    c.bench_function("fig9_proc_point", |b| b.iter(|| fig9(exp, &[100.0], 0.10)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
