//! Figure 6: per-scheme energy breakdowns at 10% CP-Limit (OLTP-St).

use bench::breakdown_line;
use criterion::{criterion_group, criterion_main, Criterion};
use dmamem::experiments::{fig6, ExpConfig};

fn bench(c: &mut Criterion) {
    let exp = ExpConfig::quick();
    for (name, e) in fig6(exp, 0.10) {
        println!("fig6 {name}: {}", breakdown_line(&e));
    }
    c.bench_function("fig6_three_scheme_comparison", |b| {
        b.iter(|| fig6(exp, 0.10))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
