//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Printed once per run (the Criterion timing target is the epoch-length
//! point, the cheapest representative):
//!
//! * **Threshold (in)sensitivity** — the paper claims DMA-dominated memory
//!   energy is almost insensitive to the low-level policy's thresholds;
//!   we sweep the Lebeck thresholds x0.5/x1/x2 and the self-tuning policy.
//! * **Epoch length** — the paper says results are insensitive to the
//!   slack-accounting epoch as long as it is not too large.
//! * **Request granularity** — 8-byte vs 64-byte DMA-memory requests keep
//!   the same Rm/Rb ratio, so uf and savings shapes should match.
//! * **Bus discipline** — PerEngine (paper model) vs strict TDM.
//! * **Static vs dynamic low-level policy** — dynamic saves more
//!   (Section 2.2).
//! * **PL hot fraction `p`** — sensitivity of DMA-TA-PL to the 60% target.
//! * **Migration cost-benefit gate** — the paper's future-work item.

use criterion::{criterion_group, criterion_main, Criterion};
use dma_trace::{SyntheticStorageGen, TraceGen};
use dmamem::experiments::{mu_from_baseline, paper_system, Workload};
use dmamem::{PlConfig, PolicyKind, Scheme, ServerSimulator, SystemConfig, TaConfig};
use iobus::{BusConfig, BusDiscipline};
use mempower::PowerMode;
use simcore::SimDuration;

const MS: u64 = 2;
const SEED: u64 = 42;

fn run(config: &SystemConfig, scheme: Scheme) -> dmamem::SimResult {
    let trace = SyntheticStorageGen::default().generate(SimDuration::from_ms(MS), SEED);
    ServerSimulator::new(config.clone(), scheme).run(&trace)
}

fn mu_at_10pct(config: &SystemConfig) -> f64 {
    let base = run(config, Scheme::baseline());
    mu_from_baseline(
        config,
        &base,
        0.10,
        Workload::SyntheticSt.client_extra_latency(),
    )
}

fn ablate_thresholds() {
    println!("--- ablation: low-level policy thresholds (baseline energy, Synthetic-St) ---");
    for (label, policy) in [
        ("dynamic x0.5", PolicyKind::Dynamic { scale: 0.5 }),
        ("dynamic x1.0", PolicyKind::Dynamic { scale: 1.0 }),
        ("dynamic x2.0", PolicyKind::Dynamic { scale: 2.0 }),
        ("self-tuning", PolicyKind::SelfTuning),
    ] {
        let config = SystemConfig {
            policy,
            ..paper_system()
        };
        let r = run(&config, Scheme::baseline());
        println!(
            "  {label:<13} {:>8.3} mJ (uf {:.2})",
            r.energy.total_mj(),
            r.utilization_factor()
        );
    }
}

fn ablate_epoch() {
    println!("--- ablation: DMA-TA epoch length (savings at 10% CP) ---");
    let config = paper_system();
    let base = run(&config, Scheme::baseline());
    let mu = mu_at_10pct(&config);
    for us in [1u64, 5, 20] {
        let scheme = Scheme {
            ta: Some(TaConfig {
                epoch: SimDuration::from_us(us),
                ..TaConfig::new(mu)
            }),
            pl: None,
        };
        let r = run(&config, scheme);
        println!(
            "  epoch {us:>2} us: savings {:+.1}%",
            r.savings_vs(&base) * 100.0
        );
    }
}

fn ablate_granularity() {
    println!("--- ablation: DMA-memory request size (baseline uf) ---");
    for bytes in [8u64, 64] {
        let config = paper_system().with_buses(3, BusConfig::pci_x().with_request_bytes(bytes));
        let r = run(&config, Scheme::baseline());
        println!(
            "  {bytes:>2}-byte requests: uf {:.3}",
            r.utilization_factor()
        );
    }
}

fn ablate_discipline() {
    println!("--- ablation: bus discipline (baseline energy) ---");
    for (label, d) in [
        ("per-engine", BusDiscipline::PerEngine),
        ("strict TDM", BusDiscipline::TimeDivision),
    ] {
        let config = paper_system().with_buses(3, BusConfig::pci_x().with_discipline(d));
        let r = run(&config, Scheme::baseline());
        println!(
            "  {label}: {:>8.3} mJ (uf {:.2})",
            r.energy.total_mj(),
            r.utilization_factor()
        );
    }
}

fn ablate_static_policy() {
    println!("--- ablation: static vs dynamic low-level policy (baseline energy) ---");
    for (label, policy) in [
        ("static nap", PolicyKind::Static(PowerMode::Nap)),
        ("static powerdown", PolicyKind::Static(PowerMode::Powerdown)),
        ("dynamic", PolicyKind::Dynamic { scale: 1.0 }),
    ] {
        let config = SystemConfig {
            policy,
            ..paper_system()
        };
        let r = run(&config, Scheme::baseline());
        println!("  {label:<17} {:>8.3} mJ", r.energy.total_mj());
    }
}

fn ablate_pl_p() {
    println!("--- ablation: PL hot-traffic target p (DMA-TA-PL(2) savings at 10% CP) ---");
    let config = paper_system();
    let base = run(&config, Scheme::baseline());
    let mu = mu_at_10pct(&config);
    for p in [0.4, 0.6, 0.8] {
        let scheme = Scheme {
            ta: Some(TaConfig::new(mu)),
            pl: Some(PlConfig {
                p,
                ..PlConfig::new(2)
            }),
        };
        let r = run(&config, scheme);
        println!(
            "  p = {p:.1}: savings {:+.1}% ({} moves)",
            r.savings_vs(&base) * 100.0,
            r.page_moves
        );
    }
}

fn ablate_migration_chunking() {
    println!(
        "--- ablation: migration chunk size (Section 4.2.2 hiding; DMA-TA-PL(2) at 10% CP) ---"
    );
    let config = paper_system();
    let base = run(&config, Scheme::baseline());
    let mu = mu_at_10pct(&config);
    for chunk in [8192u64, 64, 8] {
        let scheme = Scheme {
            ta: Some(TaConfig::new(mu)),
            pl: Some(PlConfig {
                migration_chunk_bytes: chunk,
                ..PlConfig::new(2)
            }),
        };
        let r = run(&config, scheme);
        println!(
            "  {chunk:>5}-byte chunks: savings {:+.1}%, mean request {:.1} ns",
            r.savings_vs(&base) * 100.0,
            r.request_service.mean_ns()
        );
    }
}

fn ablate_migration_gate() {
    println!("--- ablation: migration cost-benefit gate (DMA-TA-PL(2) at 10% CP) ---");
    let config = paper_system();
    let base = run(&config, Scheme::baseline());
    let mu = mu_at_10pct(&config);
    for gate in [0u32, 2, 8] {
        let scheme = Scheme {
            ta: Some(TaConfig::new(mu)),
            pl: Some(PlConfig {
                min_count_to_migrate: gate,
                ..PlConfig::new(2)
            }),
        };
        let r = run(&config, scheme);
        println!(
            "  gate >= {gate}: savings {:+.1}% ({} moves)",
            r.savings_vs(&base) * 100.0,
            r.page_moves
        );
    }
}

fn bench(c: &mut Criterion) {
    ablate_thresholds();
    ablate_epoch();
    ablate_granularity();
    ablate_discipline();
    ablate_static_policy();
    ablate_pl_p();
    ablate_migration_gate();
    ablate_migration_chunking();

    let config = paper_system();
    let mu = mu_at_10pct(&config);
    c.bench_function("ablation_ta_run", |b| {
        b.iter(|| run(&config, Scheme::dma_ta(mu)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
