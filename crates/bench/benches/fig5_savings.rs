//! Figure 5: energy savings vs CP-Limit — regenerates one representative
//! point per workload and benchmarks the full scheme comparison.

use bench::fig5_table;
use criterion::{criterion_group, criterion_main, Criterion};
use dmamem::experiments::{fig5, mu_from_baseline, paper_system, ExpConfig, Workload};
use dmamem::{Scheme, ServerSimulator};

fn bench(c: &mut Criterion) {
    let exp = ExpConfig::quick();
    let rows = fig5(exp, &[Workload::SyntheticSt, Workload::OltpSt], &[0.10]);
    println!("fig5 (quick):\n{}", fig5_table(&rows));

    let config = paper_system();
    let trace = Workload::SyntheticSt.generate(exp.duration, exp.seed);
    let baseline = ServerSimulator::new(config.clone(), Scheme::baseline()).run(&trace);
    let mu = mu_from_baseline(
        &config,
        &baseline,
        0.10,
        Workload::SyntheticSt.client_extra_latency(),
    );
    c.bench_function("fig5_dma_ta_pl_synthetic_st", |b| {
        b.iter(|| ServerSimulator::new(config.clone(), Scheme::dma_ta_pl(mu, 2)).run(&trace))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
