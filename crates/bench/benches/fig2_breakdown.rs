//! Figure 2(b): baseline energy breakdown — regenerates the figure data and
//! benchmarks the baseline simulation behind it.

use bench::breakdown_line;
use criterion::{criterion_group, criterion_main, Criterion};
use dmamem::experiments::{fig2a, fig2b, paper_system, ExpConfig, Workload};
use dmamem::{Scheme, ServerSimulator};

fn bench(c: &mut Criterion) {
    let exp = ExpConfig::quick();
    let f = fig2a();
    println!(
        "fig2a: serving {:.1} cycles, idle {:.1} cycles, uf {:.3}",
        f.serving_cycles, f.idle_cycles, f.measured_uf
    );
    for (name, e) in fig2b(exp) {
        println!("fig2b {name}: {}", breakdown_line(&e));
    }

    let trace = Workload::OltpSt.generate(exp.duration, exp.seed);
    c.bench_function("fig2b_baseline_oltp_st", |b| {
        b.iter(|| ServerSimulator::new(paper_system(), Scheme::baseline()).run(&trace))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
