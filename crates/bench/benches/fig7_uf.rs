//! Figure 7: utilization factor vs CP-Limit (OLTP-St).

use bench::fig7_table;
use criterion::{criterion_group, criterion_main, Criterion};
use dmamem::experiments::{fig7, ExpConfig};

fn bench(c: &mut Criterion) {
    let exp = ExpConfig::quick();
    println!(
        "fig7 (quick):\n{}",
        fig7_table(&fig7(exp, &[0.05, 0.10, 0.30]))
    );
    c.bench_function("fig7_uf_sweep", |b| b.iter(|| fig7(exp, &[0.10])));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
