//! Byte-identity of the *rendered* figure tables across thread counts —
//! the exact artifact the `experiments` binary prints.

use bench::sweep::{run_figure_matrix, SweepRunner};
use bench::{fig5_table, fig7_table, fig8_table, table2_rows_text};
use dmamem::experiments::{ExpConfig, Workload};

#[test]
fn rendered_tables_byte_identical_across_thread_counts() {
    let exp = ExpConfig::quick();
    let render = |threads: usize| {
        let mut runner = SweepRunner::new(threads);
        let mut out = String::new();
        out.push_str(&table2_rows_text(&runner.table2(exp)));
        out.push_str(&fig5_table(&runner.fig5(
            exp,
            &[Workload::OltpSt, Workload::SyntheticSt],
            &[0.05, 0.10],
        )));
        out.push_str(&fig7_table(&runner.fig7(exp, &[0.05, 0.10])));
        out.push_str(&fig8_table(&runner.fig8(exp, &[50.0, 100.0], 0.10)));
        out
    };
    let serial = render(1);
    for threads in [2usize, 8] {
        assert_eq!(serial, render(threads), "threads={threads}");
    }
}

#[test]
fn figure_matrix_runs_and_records_timings() {
    let mut runner = SweepRunner::new(0);
    run_figure_matrix(&mut runner, ExpConfig::quick());
    let names: Vec<&str> = runner.timings().iter().map(|t| t.figure.as_str()).collect();
    assert_eq!(
        names,
        ["table2", "fig2b", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "groups", "tpch"]
    );
    let stats = runner.memo_stats();
    // The matrix is heavily redundant: the memo must absorb a meaningful
    // share of the jobs (fig2b/fig6/fig7 baselines all repeat fig5's).
    assert!(
        stats.hits >= 10,
        "expected cross-figure memo hits, got {stats:?}"
    );
    assert!(stats.trace_hits >= 3, "traces were regenerated: {stats:?}");
}
