//! Byte-identity of the *rendered* figure tables across thread counts
//! and with engine profiling on or off — the exact artifact the
//! `experiments` binary prints.

use bench::perf_report::EngineReport;
use bench::sweep::{run_figure_matrix, SweepRunner};
use bench::{fig5_table, fig7_table, fig8_table, table2_rows_text};
use dmamem::experiments::{ExpConfig, Workload};

#[test]
fn rendered_tables_byte_identical_across_thread_counts() {
    let exp = ExpConfig::quick();
    let render = |threads: usize| {
        let mut runner = SweepRunner::new(threads);
        let mut out = String::new();
        out.push_str(&table2_rows_text(&runner.table2(exp)));
        out.push_str(&fig5_table(&runner.fig5(
            exp,
            &[Workload::OltpSt, Workload::SyntheticSt],
            &[0.05, 0.10],
        )));
        out.push_str(&fig7_table(&runner.fig7(exp, &[0.05, 0.10])));
        out.push_str(&fig8_table(&runner.fig8(exp, &[50.0, 100.0], 0.10)));
        out
    };
    let serial = render(1);
    for threads in [2usize, 8] {
        assert_eq!(serial, render(threads), "threads={threads}");
    }
}

#[test]
fn figure_matrix_runs_and_records_timings() {
    let mut runner = SweepRunner::new(0);
    run_figure_matrix(&mut runner, ExpConfig::quick());
    let names: Vec<&str> = runner.timings().iter().map(|t| t.figure.as_str()).collect();
    assert_eq!(
        names,
        ["table2", "fig2b", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "groups", "tpch"]
    );
    let stats = runner.memo_stats();
    // The matrix is heavily redundant: the memo must absorb a meaningful
    // share of the jobs (fig2b/fig6/fig7 baselines all repeat fig5's).
    assert!(
        stats.hits >= 10,
        "expected cross-figure memo hits, got {stats:?}"
    );
    assert!(stats.trace_hits >= 3, "traces were regenerated: {stats:?}");
}

#[test]
fn rendered_tables_byte_identical_with_profiling_on_or_off() {
    let exp = ExpConfig::quick();
    let render = |profiled: bool| {
        let mut runner = SweepRunner::new(2).with_profiling(profiled);
        let mut out = String::new();
        out.push_str(&fig5_table(&runner.fig5(exp, &[Workload::OltpSt], &[0.10])));
        out.push_str(&fig7_table(&runner.fig7(exp, &[0.05, 0.10])));
        out
    };
    assert_eq!(
        render(false),
        render(true),
        "arming the profiler changed a rendered table"
    );
}

#[test]
fn engine_report_rows_follow_matrix_order() {
    let mut runner = SweepRunner::new(2).with_profiling(true);
    run_figure_matrix(&mut runner, ExpConfig::quick());
    let report = EngineReport::from_runner(&runner, 2.0, 42);
    let names: Vec<&str> = report.rows.iter().map(|r| r.figure.as_str()).collect();
    assert_eq!(
        names,
        ["table2", "fig2b", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "groups", "tpch"]
    );
    // Every figure that simulated anything reports a throughput; figures
    // fully served from the memo report zero events and zero rate.
    for r in &report.rows {
        if r.prof.sims > 0 {
            assert!(r.prof.events > 0, "{}: sims without events", r.figure);
            assert!(r.events_per_sec() > 0.0, "{}: no throughput", r.figure);
            assert!(r.prof.max_heap_depth > 0, "{}: empty calendar", r.figure);
        } else {
            assert_eq!(
                (r.prof.events, r.events_per_sec() as u64),
                (0, 0),
                "{}",
                r.figure
            );
        }
    }
    // Rows decompose the lifetime totals exactly (deterministic fields).
    let totals = &report.totals;
    let sum =
        |f: fn(&bench::perf_report::EngineRow) -> u64| -> u64 { report.rows.iter().map(f).sum() };
    assert_eq!(sum(|r| r.prof.events), totals.events);
    assert_eq!(sum(|r| r.prof.sims), totals.sims);
    assert_eq!(sum(|r| r.prof.heap_pushes), totals.heap_pushes);
    assert_eq!(sum(|r| r.prof.requests), totals.requests);
    // The profiled matrix timed every simulation it actually ran.
    assert_eq!(totals.timed_sims, totals.sims);
    assert!(totals.phase_ns.iter().sum::<u64>() > 0);
    // The JSON baseline renders one events_per_sec per figure row plus
    // the totals line — the committed-artifact acceptance shape.
    let json = report.to_json();
    assert_eq!(
        json.matches("\"events_per_sec\"").count(),
        report.rows.len() + 1
    );
}
