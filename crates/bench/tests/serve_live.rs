//! End-to-end tests for the `--serve` live telemetry flag.
//!
//! These drive the real `experiments` binary (via `CARGO_BIN_EXE_*`):
//! one test scrapes the HTTP endpoints mid-sweep with a plain
//! `TcpStream` client, the other pins the iron rule that `--serve`
//! leaves stdout byte-identical — telemetry is observation, never
//! perturbation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Spawns `experiments` with the given args, stderr piped.
fn spawn_experiments(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn experiments")
}

/// Reads the child's stderr until the telemetry banner appears and
/// returns the bound address (host:port).
fn wait_for_bound_addr(child: &mut Child) -> String {
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    for line in lines.by_ref() {
        let line = line.expect("read child stderr");
        if let Some(rest) = line.split("http://").nth(1) {
            return rest.split('/').next().expect("addr").to_string();
        }
    }
    panic!("experiments exited without printing the telemetry banner");
}

/// One plain HTTP/1.1 GET; returns the full response (headers + body).
fn get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

#[test]
fn endpoints_answer_mid_sweep() {
    // `all` keeps the process alive long enough to scrape mid-run; the
    // child is killed once the assertions pass, so the test does not
    // pay for the full sweep.
    let mut child = spawn_experiments(&["all", "--quick", "--serve", "127.0.0.1:0"]);
    let addr = wait_for_bound_addr(&mut child);

    let status = get(&addr, "/status");
    assert!(status.starts_with("HTTP/1.1 200 OK"), "{status}");
    assert!(status.contains("\"figure\""), "{status}");
    assert!(status.contains("\"jobs_done\""), "{status}");
    assert!(status.contains("\"uptime_secs\""), "{status}");

    let metrics = get(&addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");

    let events = get(&addr, "/events?since=0");
    assert!(events.starts_with("HTTP/1.1 200 OK"), "{events}");
    assert!(events.contains("X-Next-Seq:"), "{events}");

    child.kill().expect("kill experiments");
    let _ = child.wait();
}

#[test]
fn serve_leaves_stdout_byte_identical() {
    let run = |extra: &[&str]| -> Vec<u8> {
        let mut args = vec!["fig2b", "--quick", "--seed", "7"];
        args.extend_from_slice(extra);
        let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args(&args)
            .output()
            .expect("run experiments");
        assert!(out.status.success(), "experiments failed: {args:?}");
        out.stdout
    };
    let plain = run(&[]);
    let served = run(&["--serve", "127.0.0.1:0"]);
    assert!(!plain.is_empty());
    assert_eq!(
        plain, served,
        "--serve must not perturb stdout: telemetry is observation only"
    );
}
