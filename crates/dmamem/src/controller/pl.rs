//! Popularity-based layout (PL): reference counting, exponential grouping,
//! and migration planning.
//!
//! Paper Section 4.2: the controller counts DMA references per page, ages
//! the counters each interval, and periodically recomputes a layout that
//! packs the pages responsible for `p` (default 60 %) of recent accesses
//! into a small set of hot chips. The hot chips are subdivided into `K - 1`
//! groups with exponentially growing sizes (1, 2, 4, ...); the last group is
//! the cold group. With `K = 2` there is just one hot group — the paper's
//! best configuration.

use iobus::PageId;

use crate::config::PlConfig;
use crate::layout::PageMap;

/// Per-page DMA reference counters with periodic aging.
///
/// # Example
///
/// ```
/// use dmamem::controller::pl::PopularityTracker;
///
/// let mut t = PopularityTracker::new(4);
/// t.record(1);
/// t.record(1);
/// t.record(3);
/// assert_eq!(t.count(1), 2);
/// t.age();
/// assert_eq!(t.count(1), 1);
/// assert_eq!(t.count(3), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PopularityTracker {
    counts: Vec<u32>,
    total: u64,
}

impl PopularityTracker {
    /// Creates zeroed counters for `pages` pages.
    pub fn new(pages: usize) -> Self {
        PopularityTracker {
            counts: vec![0; pages],
            total: 0,
        }
    }

    /// Records one DMA reference to `page` (saturating).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn record(&mut self, page: PageId) {
        let c = &mut self.counts[page as usize];
        if *c < u32::MAX {
            *c += 1;
            self.total += 1;
        }
    }

    /// Reference count of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn count(&self, page: PageId) -> u32 {
        self.counts[page as usize]
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Ages every counter by a right shift (paper Section 4.2.1), so the
    /// layout adapts to workload drift without forgetting instantly.
    pub fn age(&mut self) {
        self.total = 0;
        for c in &mut self.counts {
            *c >>= 1;
            self.total += u64::from(*c);
        }
    }

    /// Pages with nonzero counts, hottest first (ties: lower page id
    /// first, for determinism).
    pub fn ranked(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = (0..self.counts.len() as u64)
            .filter(|&p| self.counts[p as usize] > 0)
            .collect();
        pages.sort_by(|&a, &b| {
            self.counts[b as usize]
                .cmp(&self.counts[a as usize])
                .then(a.cmp(&b))
        });
        pages
    }
}

/// The chip partition for one interval: `group_chips[i]` chips belong to
/// group `i` (hottest first); the final entry is the cold group. Groups own
/// contiguous chip-index ranges starting at chip 0, which keeps the hot
/// chips stable across intervals and minimizes shuffling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupLayout {
    group_chips: Vec<usize>,
}

impl GroupLayout {
    /// Splits `n_hot` hot chips (plus `total - n_hot` cold ones) into
    /// `groups` groups. The `groups - 1` hot groups grow exponentially
    /// (1, 2, 4, ...) with the last hot group absorbing the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `groups < 2`, `total` is zero, or `n_hot >= total` (at
    /// least one chip must stay cold).
    pub fn new(groups: usize, n_hot: usize, total: usize) -> Self {
        assert!(groups >= 2, "need a hot and a cold group");
        assert!(total > 0, "no chips");
        assert!(n_hot < total, "at least one chip must stay cold");
        let hot_groups = groups - 1;
        let mut group_chips = Vec::with_capacity(groups);
        let mut remaining = n_hot;
        for i in 0..hot_groups {
            let is_last_hot = i + 1 == hot_groups;
            let size = if is_last_hot {
                remaining
            } else {
                remaining.min(1 << i)
            };
            group_chips.push(size);
            remaining -= size;
        }
        group_chips.push(total - n_hot);
        GroupLayout { group_chips }
    }

    /// Number of groups (including the cold group).
    pub fn groups(&self) -> usize {
        self.group_chips.len()
    }

    /// Chips in group `g`.
    pub fn chips_in(&self, g: usize) -> usize {
        self.group_chips[g]
    }

    /// The contiguous chip-index range `[start, end)` owned by group `g`.
    pub fn chip_range(&self, g: usize) -> (usize, usize) {
        let start: usize = self.group_chips[..g].iter().sum();
        (start, start + self.group_chips[g])
    }

    /// The group owning chip index `chip`.
    pub fn group_of_chip(&self, chip: usize) -> usize {
        let mut acc = 0;
        for (g, &n) in self.group_chips.iter().enumerate() {
            acc += n;
            if chip < acc {
                return g;
            }
        }
        self.group_chips.len() - 1
    }
}

/// One planned page move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Page to relocate.
    pub page: PageId,
    /// Source chip.
    pub from: usize,
    /// Destination chip.
    pub to: usize,
}

/// Plans one interval's migrations: assigns ranked-hot pages to the hot
/// groups (capacity permitting) and produces the moves — including
/// evictions of cold pages that make room — that realize the layout.
/// Executes against a *copy* of the map logic by actually applying moves to
/// `map`, so the returned plan is guaranteed feasible in order.
///
/// Returns the applied moves; `map` reflects the new layout on return.
pub fn plan_and_apply(
    tracker: &PopularityTracker,
    map: &mut PageMap,
    config: &PlConfig,
    frames_per_chip: usize,
) -> Vec<Move> {
    plan_and_apply_with_floor(tracker, map, config, frames_per_chip, 1)
}

/// What one planning interval decided, for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Pages in the hot set (the prefix covering `p` of recent traffic).
    pub hot_pages: usize,
    /// Chips assigned to the hot groups.
    pub hot_chips: usize,
}

/// [`plan_and_apply`] with a capacity floor on the hot-chip count:
/// concentrating `p` of the traffic onto fewer chips than can absorb its
/// bandwidth would oversubscribe them (queueing instead of alignment), so
/// the caller passes `min_hot_chips = ceil(p * total_bus_bw / Rm)`.
pub fn plan_and_apply_with_floor(
    tracker: &PopularityTracker,
    map: &mut PageMap,
    config: &PlConfig,
    frames_per_chip: usize,
    min_hot_chips: usize,
) -> Vec<Move> {
    plan_and_apply_observed(tracker, map, config, frames_per_chip, min_hot_chips).0
}

/// [`plan_and_apply_with_floor`], additionally reporting the interval's
/// planning statistics for the observability layer.
pub fn plan_and_apply_observed(
    tracker: &PopularityTracker,
    map: &mut PageMap,
    config: &PlConfig,
    frames_per_chip: usize,
    min_hot_chips: usize,
) -> (Vec<Move>, PlanStats) {
    let total = tracker.total();
    if total == 0 {
        return (Vec::new(), PlanStats::default());
    }
    let ranked = tracker.ranked();

    // Hot set: smallest prefix of ranked pages covering p of the traffic.
    let target = (config.p * total as f64).ceil() as u64;
    let mut acc = 0u64;
    let mut hot_len = 0;
    for &p in &ranked {
        acc += u64::from(tracker.count(p));
        hot_len += 1;
        if acc >= target {
            break;
        }
    }
    let hot = &ranked[..hot_len];

    // Chips needed to hold the hot set (bandwidth floor included); leave
    // at least one cold chip.
    let n_hot = hot_len
        .div_ceil(frames_per_chip)
        .max(min_hot_chips)
        .min(map.chips() - 1)
        .max(1);
    let stats = PlanStats {
        hot_pages: hot_len,
        hot_chips: n_hot,
    };
    let layout = GroupLayout::new(config.groups, n_hot, map.chips());

    // Target group per hot page: hottest pages fill group 0, then 1, ...
    // Each group's page capacity is its chip count times frames_per_chip.
    let mut moves = Vec::new();
    let mut target_of: std::collections::BTreeMap<PageId, usize> =
        std::collections::BTreeMap::new();
    {
        let mut cursor = 0usize;
        for g in 0..layout.groups() - 1 {
            let capacity = layout.chips_in(g) * frames_per_chip;
            for &p in &hot[cursor..(cursor + capacity).min(hot_len)] {
                target_of.insert(p, g);
            }
            cursor = (cursor + capacity).min(hot_len);
        }
    }
    let mut cursor = 0usize; // index into `hot`
    for g in 0..layout.groups() - 1 {
        let (start, end) = layout.chip_range(g);
        let capacity = layout.chips_in(g) * frames_per_chip;
        let pages_for_group: Vec<PageId> = hot[cursor..(cursor + capacity).min(hot_len)].to_vec();
        cursor += pages_for_group.len();
        for page in pages_for_group {
            if moves.len() >= config.max_moves_per_interval {
                return (moves, stats);
            }
            let cur = map.chip_of(page);
            if (start..end).contains(&cur) {
                continue; // already placed
            }
            if config.min_count_to_migrate > 0 && tracker.count(page) < config.min_count_to_migrate
            {
                continue; // cost-benefit gate: too cold to pay for a move
            }
            // Destination: first group chip with a free frame.
            let dst = (start..end).find(|&c| map.free_frames(c) > 0);
            let dst = match dst {
                Some(c) => c,
                None => {
                    // Make room: evict a non-hot page from a group chip,
                    // preferably into a free cold-side frame; when memory
                    // is fully occupied, fall back to a direct swap with
                    // the incoming hot page (two copies either way).
                    let mut chosen = None;
                    'search: for c in start..end {
                        let incoming_chip = map.chip_of(page);
                        // A victim is any page not targeted at this group
                        // (cold pages, or hot pages belonging elsewhere).
                        if let Some(victim) =
                            map.find_victim(c, |p| target_of.get(&p) != Some(&g) && p != page)
                        {
                            let cold_dst = (0..map.chips())
                                .filter(|&cc| !(start..end).contains(&cc))
                                .find(|&cc| map.free_frames(cc) > 0);
                            if let Some(cc) = cold_dst {
                                let vfrom = map.chip_of(victim);
                                if map.move_page(victim, cc) {
                                    moves.push(Move {
                                        page: victim,
                                        from: vfrom,
                                        to: cc,
                                    });
                                    chosen = Some(c);
                                    break 'search;
                                }
                            } else if map.swap_pages(page, victim) {
                                // Fully occupied memory: swap in place.
                                moves.push(Move {
                                    page,
                                    from: incoming_chip,
                                    to: c,
                                });
                                moves.push(Move {
                                    page: victim,
                                    from: c,
                                    to: incoming_chip,
                                });
                                chosen = None; // already placed via swap
                                break 'search;
                            }
                        }
                    }
                    match chosen {
                        Some(c) => c,
                        None => continue, // placed by swap, or nowhere to go
                    }
                }
            };
            let from = map.chip_of(page);
            if map.move_page(page, dst) {
                moves.push(Move {
                    page,
                    from,
                    to: dst,
                });
            }
        }
    }
    (moves, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use mempower::PowerModel;

    fn small_map(pages: usize, chips: usize, frames: usize) -> (PageMap, SystemConfig) {
        let config = SystemConfig {
            chips,
            power_model: PowerModel::rdram().with_chip_bytes(frames as u64 * 8192),
            pages,
            ..Default::default()
        };
        (PageMap::new_sequential(&config), config)
    }

    #[test]
    fn tracker_records_and_ages() {
        let mut t = PopularityTracker::new(8);
        for _ in 0..5 {
            t.record(2);
        }
        t.record(7);
        assert_eq!(t.total(), 6);
        assert_eq!(t.ranked(), vec![2, 7]);
        t.age();
        assert_eq!(t.count(2), 2);
        assert_eq!(t.count(7), 0);
        assert_eq!(t.total(), 2);
        assert_eq!(t.ranked(), vec![2]);
    }

    #[test]
    fn ranked_breaks_ties_by_page_id() {
        let mut t = PopularityTracker::new(5);
        t.record(4);
        t.record(1);
        t.record(3);
        assert_eq!(t.ranked(), vec![1, 3, 4]);
    }

    #[test]
    fn group_layout_two_groups() {
        let l = GroupLayout::new(2, 4, 32);
        assert_eq!(l.groups(), 2);
        assert_eq!(l.chips_in(0), 4);
        assert_eq!(l.chips_in(1), 28);
        assert_eq!(l.chip_range(0), (0, 4));
        assert_eq!(l.chip_range(1), (4, 32));
        assert_eq!(l.group_of_chip(0), 0);
        assert_eq!(l.group_of_chip(4), 1);
        assert_eq!(l.group_of_chip(31), 1);
    }

    #[test]
    fn group_layout_exponential_sizes() {
        // 6 groups, 16 hot chips: hot groups 1, 2, 4, 8, then remainder 1.
        let l = GroupLayout::new(6, 16, 32);
        assert_eq!(
            (0..6).map(|g| l.chips_in(g)).collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 1, 16]
        );
    }

    #[test]
    fn group_layout_small_hot_set() {
        // 3 groups but only 1 hot chip: [1, 0, cold].
        let l = GroupLayout::new(3, 1, 8);
        assert_eq!(
            (0..3).map(|g| l.chips_in(g)).collect::<Vec<_>>(),
            vec![1, 0, 7]
        );
    }

    #[test]
    fn plan_concentrates_hot_pages() {
        // 16 pages over 4 chips (4 frames each, full). Make pages 12..16
        // (on chip 3) hot; they should migrate toward chip 0.
        let (mut map, _) = small_map(16, 4, 8); // 8 frames/chip: half free
        let mut t = PopularityTracker::new(16);
        for _ in 0..10 {
            for p in 12..16 {
                t.record(p);
            }
        }
        // A trickle on everything else.
        for p in 0..12 {
            t.record(p);
        }
        let moves = plan_and_apply(&t, &mut map, &PlConfig::new(2), 8);
        assert!(!moves.is_empty());
        map.check_invariants();
        // All four hot pages now live on chip 0 (one chip holds them all).
        for p in 12..16u64 {
            assert_eq!(map.chip_of(p), 0, "page {p} not on hot chip");
        }
    }

    #[test]
    fn observed_plan_reports_hot_set() {
        let (mut map, _) = small_map(16, 4, 8);
        let mut t = PopularityTracker::new(16);
        for _ in 0..10 {
            for p in 12..16 {
                t.record(p);
            }
        }
        // p = 0.6 of 40 accesses = 24, covered by the 3 hottest pages; one
        // 8-frame chip holds them all.
        let (moves, stats) = plan_and_apply_observed(&t, &mut map, &PlConfig::new(2), 8, 1);
        assert!(!moves.is_empty());
        assert_eq!(
            stats,
            PlanStats {
                hot_pages: 3,
                hot_chips: 1
            }
        );
        // Empty tracker: default stats.
        let empty = PopularityTracker::new(16);
        let (m2, s2) = plan_and_apply_observed(&empty, &mut map, &PlConfig::new(2), 8, 1);
        assert!(m2.is_empty());
        assert_eq!(s2, PlanStats::default());
    }

    #[test]
    fn plan_is_identical_across_repeated_runs() {
        // Regression for the `target_of` container: a hash-ordered map
        // here would make the eviction victim choice depend on the hash
        // seed. Plan from identical inputs many times — with heavy count
        // ties so ranking and victim selection are maximally contestable
        // — and require byte-identical move lists.
        let mut reference: Option<Vec<Move>> = None;
        for _ in 0..8 {
            let (mut map, _) = small_map(32, 4, 8);
            let mut t = PopularityTracker::new(32);
            // Two tiers, each internally tied: 8 hot pages with count 5,
            // 24 lukewarm pages with count 1.
            for p in 24..32 {
                for _ in 0..5 {
                    t.record(p);
                }
            }
            for p in 0..24 {
                t.record(p);
            }
            let moves = plan_and_apply(&t, &mut map, &PlConfig::new(3), 8);
            map.check_invariants();
            match &reference {
                None => reference = Some(moves),
                Some(first) => assert_eq!(first, &moves, "plan diverged across runs"),
            }
        }
        assert!(!reference.expect("ran at least once").is_empty());
    }

    #[test]
    fn plan_is_idempotent_once_placed() {
        let (mut map, _) = small_map(16, 4, 8);
        let mut t = PopularityTracker::new(16);
        for _ in 0..10 {
            for p in 12..16 {
                t.record(p);
            }
        }
        let first = plan_and_apply(&t, &mut map, &PlConfig::new(2), 8);
        assert!(!first.is_empty());
        let second = plan_and_apply(&t, &mut map, &PlConfig::new(2), 8);
        assert!(second.is_empty(), "re-plan moved pages again: {second:?}");
    }

    #[test]
    fn plan_evicts_when_hot_chip_full() {
        // Full occupancy: every move needs an eviction first.
        let (mut map, _) = small_map(16, 4, 4);
        let mut t = PopularityTracker::new(16);
        for _ in 0..10 {
            for p in 12..16 {
                t.record(p);
            }
        }
        let moves = plan_and_apply(&t, &mut map, &PlConfig::new(2), 4);
        map.check_invariants();
        // p = 0.6 of 40 accesses = 24, covered by the 3 hottest pages;
        // each needs a swap (2 copies): 6 moves, all via swaps.
        assert_eq!(moves.len(), 6, "{moves:?}");
        for p in 12..15u64 {
            assert_eq!(map.chip_of(p), 0);
        }
        // The fourth page fell outside the 60% hot set and stayed put.
        assert_eq!(map.chip_of(15), 3);
    }

    #[test]
    fn max_moves_caps_the_plan() {
        let (mut map, _) = small_map(16, 4, 8);
        let mut t = PopularityTracker::new(16);
        for _ in 0..10 {
            for p in 12..16 {
                t.record(p);
            }
        }
        let config = PlConfig {
            max_moves_per_interval: 2,
            ..PlConfig::new(2)
        };
        let moves = plan_and_apply(&t, &mut map, &config, 8);
        assert!(moves.len() <= 2);
        map.check_invariants();
    }

    #[test]
    fn min_count_gate_skips_lukewarm_pages() {
        let (mut map, _) = small_map(16, 4, 8);
        let mut t = PopularityTracker::new(16);
        // Page 15 is hot, page 14 lukewarm; p=0.6 hot set includes both.
        for _ in 0..20 {
            t.record(15);
        }
        for _ in 0..8 {
            t.record(14);
        }
        let config = PlConfig {
            min_count_to_migrate: 10,
            ..PlConfig::new(2)
        };
        let moves = plan_and_apply(&t, &mut map, &config, 8);
        assert!(moves.iter().any(|m| m.page == 15));
        assert!(!moves.iter().any(|m| m.page == 14));
    }

    #[test]
    fn empty_tracker_plans_nothing() {
        let (mut map, _) = small_map(16, 4, 8);
        let t = PopularityTracker::new(16);
        assert!(plan_and_apply(&t, &mut map, &PlConfig::new(2), 8).is_empty());
    }
}
