//! Temporal alignment (DMA-TA): slack accounting and the release rule.
//!
//! Paper Section 4.1.2. The controller may delay the *first* DMA-memory
//! request of a transfer whose target chip is in a low-power mode. A global
//! **slack** account bounds the delays so that the average request service
//! time stays within `(1 + mu) * T`:
//!
//! * every arriving DMA-memory request credits `mu * T`;
//! * each epoch pessimistically debits `epoch_length * n_pending`;
//! * waking a chip debits `wake_latency * n_pending(chip)`;
//! * processor interference debits `proc_service * n_pending(chip)`.
//!
//! A chip releases its gathered requests when either `k = ceil(Rm/Rb)`
//! transfers are pending for it (full utilization needs no more) or the
//! projected queueing delay `n * U / 2` reaches the available slack, with
//! `U = m * T * ceil(r / k)`.

use simcore::SimDuration;

/// The global performance-guarantee account (picosecond slack).
///
/// Negative slack means the guarantee is currently not being maintained;
/// the release rule prevents the controller from *adding* delay in that
/// state.
///
/// # Example
///
/// ```
/// use dmamem::controller::ta::SlackAccount;
/// use simcore::SimDuration;
///
/// let mut s = SlackAccount::new(0.5, SimDuration::from_ns(8));
/// s.credit_request();
/// assert_eq!(s.slack_ps(), 4_000.0); // mu * T = 4 ns
/// ```
#[derive(Debug, Clone)]
pub struct SlackAccount {
    slack_ps: f64,
    mu: f64,
    t_req: SimDuration,
    credited: u64,
    debited_epoch_ps: f64,
    debited_wake_ps: f64,
    debited_proc_ps: f64,
    debited_queue_ps: f64,
    min_slack_ps: f64,
}

impl SlackAccount {
    /// Creates an empty account for budget `mu` and reference request time
    /// `T`.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is negative or not finite, or `T` is zero.
    pub fn new(mu: f64, t_req: SimDuration) -> Self {
        assert!(mu >= 0.0 && mu.is_finite(), "invalid mu: {mu}");
        assert!(!t_req.is_zero(), "zero reference request time");
        SlackAccount {
            slack_ps: 0.0,
            mu,
            t_req,
            credited: 0,
            debited_epoch_ps: 0.0,
            debited_wake_ps: 0.0,
            debited_proc_ps: 0.0,
            debited_queue_ps: 0.0,
            min_slack_ps: 0.0,
        }
    }

    /// Current slack in picoseconds (may be negative).
    pub fn slack_ps(&self) -> f64 {
        self.slack_ps
    }

    /// The budget `mu`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Requests credited so far.
    pub fn credited_requests(&self) -> u64 {
        self.credited
    }

    /// Credits `mu * T` for one arriving DMA-memory request; returns the
    /// credited amount in picoseconds (for audit-trail mirroring).
    pub fn credit_request(&mut self) -> f64 {
        let amount = self.mu * self.t_req.as_ps() as f64;
        self.slack_ps += amount;
        self.credited += 1;
        amount
    }

    /// Epoch debit: every pending request is pessimistically assumed to
    /// wait the whole epoch.
    pub fn debit_epoch(&mut self, epoch: SimDuration, pending_total: usize) {
        let d = epoch.as_ps() as f64 * pending_total as f64;
        self.slack_ps -= d;
        self.debited_epoch_ps += d;
        self.note();
    }

    /// Wake debit: the activation latency delays every request pending for
    /// that chip.
    pub fn debit_wake(&mut self, wake_latency: SimDuration, pending_on_chip: usize) {
        let d = wake_latency.as_ps() as f64 * pending_on_chip as f64;
        self.slack_ps -= d;
        self.debited_wake_ps += d;
        self.note();
    }

    /// Processor-interference debit: a processor access occupies the chip
    /// for `service`, delaying the chip's pending DMA requests.
    pub fn debit_proc(&mut self, service: SimDuration, pending_on_chip: usize) {
        let d = service.as_ps() as f64 * pending_on_chip as f64;
        self.slack_ps -= d;
        self.debited_proc_ps += d;
        self.note();
    }

    /// Queueing debit: a served DMA-memory request waited this long at the
    /// chip beyond its service time (oversubscription when more than `k`
    /// streams converge on one chip). Charged after the fact so the
    /// release rule tightens when alignment starts to queue.
    pub fn debit_queue(&mut self, waited_ps: f64) {
        debug_assert!(waited_ps >= 0.0);
        self.slack_ps -= waited_ps;
        self.debited_queue_ps += waited_ps;
        self.note();
    }

    /// Residual debit at release time: delay incurred since the last epoch
    /// boundary (or since arrival, whichever is later) that the epoch
    /// accounting has not charged yet. Without this, a request that arrives
    /// and releases inside a single epoch escapes accounting entirely.
    pub fn debit_residual(&mut self, delay_ps: f64) {
        debug_assert!(delay_ps >= 0.0);
        self.slack_ps -= delay_ps;
        self.debited_epoch_ps += delay_ps;
        self.note();
    }

    /// The lowest slack balance observed (overdraft telemetry).
    pub fn min_slack_ps(&self) -> f64 {
        self.min_slack_ps
    }

    /// Records the current balance into the overdraft telemetry; called by
    /// debit paths.
    fn note(&mut self) {
        if self.slack_ps < self.min_slack_ps {
            self.min_slack_ps = self.slack_ps;
        }
    }

    /// Total picoseconds debited, by source `(epoch, wake, proc, queue)`.
    pub fn debits_ps(&self) -> (f64, f64, f64, f64) {
        (
            self.debited_epoch_ps,
            self.debited_wake_ps,
            self.debited_proc_ps,
            self.debited_queue_ps,
        )
    }
}

/// The per-chip gather/release rule.
#[derive(Debug, Clone, Copy)]
pub struct ReleaseRule {
    /// `k = ceil(Rm / Rb)`: buses needed to saturate a chip.
    pub k: usize,
    /// Total number of I/O buses `r`.
    pub r: usize,
    /// Reference request time `T`.
    pub t_req: SimDuration,
}

impl ReleaseRule {
    /// Creates the rule.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `r` is zero, or `T` is zero.
    pub fn new(k: usize, r: usize, t_req: SimDuration) -> Self {
        assert!(k > 0 && r > 0, "k and r must be positive");
        assert!(!t_req.is_zero(), "zero reference request time");
        ReleaseRule { k, r, t_req }
    }

    /// `U = m * T * ceil(r / k)`: upper bound (ps) on the time to drain all
    /// pending requests, where `m` is the maximum pending count on any one
    /// bus (paper Section 4.1.2).
    pub fn upper_bound_ps(&self, m: usize) -> f64 {
        let groups = self.r.div_ceil(self.k);
        m as f64 * self.t_req.as_ps() as f64 * groups as f64
    }

    /// Decides whether a chip with the given per-bus pending first-request
    /// counts must be released now. `slack_ps` is the global slack.
    ///
    /// Returns `true` when enough transfers are gathered for full
    /// utilization (`n >= k`), or when waiting longer would overrun the
    /// performance budget (`n * U / 2 >= slack`).
    pub fn should_release(&self, per_bus_pending: &[u32], slack_ps: f64) -> bool {
        debug_assert_eq!(per_bus_pending.len(), self.r);
        let n: u32 = per_bus_pending.iter().sum();
        if n == 0 {
            return false;
        }
        if n as usize >= self.k {
            return true;
        }
        // simlint::allow(panic-path, "the slice length is debug-asserted to equal r above, and r >= 1 by construction; max of a non-empty slice")
        let m = *per_bus_pending.iter().max().expect("r > 0") as usize;
        let projected_delay = n as f64 * self.upper_bound_ps(m) / 2.0;
        projected_delay >= slack_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> SimDuration {
        SimDuration::from_ns(8)
    }

    #[test]
    fn credit_and_debit_arithmetic() {
        let mut s = SlackAccount::new(0.25, t());
        for _ in 0..4 {
            // Each credit is mu * T = 2 ns and is reported back.
            assert_eq!(s.credit_request(), 2_000.0);
        }
        // 4 * 0.25 * 8ns = 8 ns.
        assert_eq!(s.slack_ps(), 8_000.0);
        assert_eq!(s.credited_requests(), 4);
        s.debit_epoch(SimDuration::from_ns(1), 3);
        assert_eq!(s.slack_ps(), 5_000.0);
        s.debit_wake(SimDuration::from_ns(2), 2);
        assert_eq!(s.slack_ps(), 1_000.0);
        s.debit_proc(SimDuration::from_ns(2), 1);
        assert_eq!(s.slack_ps(), -1_000.0);
        s.debit_queue(500.0);
        assert_eq!(s.slack_ps(), -1_500.0);
        let (e, w, p, q) = s.debits_ps();
        assert_eq!((e, w, p, q), (3_000.0, 4_000.0, 2_000.0, 500.0));
        assert_eq!(s.min_slack_ps(), -1_500.0);
    }

    #[test]
    fn zero_mu_accrues_no_slack() {
        let mut s = SlackAccount::new(0.0, t());
        for _ in 0..100 {
            s.credit_request();
        }
        assert_eq!(s.slack_ps(), 0.0);
    }

    #[test]
    fn releases_at_k_gathered() {
        let rule = ReleaseRule::new(3, 3, t());
        // Huge slack: only the n >= k condition can trigger.
        let slack = 1e15;
        assert!(!rule.should_release(&[1, 0, 0], slack));
        assert!(!rule.should_release(&[1, 1, 0], slack));
        assert!(rule.should_release(&[1, 1, 1], slack));
    }

    #[test]
    fn releases_when_slack_exhausted() {
        let rule = ReleaseRule::new(3, 3, t());
        // One pending request: U = 1 * 8ns * 1 = 8ns; nU/2 = 4ns.
        assert!(!rule.should_release(&[1, 0, 0], 4_001.0));
        assert!(rule.should_release(&[1, 0, 0], 4_000.0));
        assert!(rule.should_release(&[1, 0, 0], -5.0));
    }

    #[test]
    fn no_pending_never_releases() {
        let rule = ReleaseRule::new(3, 3, t());
        assert!(!rule.should_release(&[0, 0, 0], -1e12));
    }

    #[test]
    fn upper_bound_scales_with_m_and_groups() {
        // r=6 buses, k=3 => 2 groups.
        let rule = ReleaseRule::new(3, 6, t());
        assert_eq!(rule.upper_bound_ps(1), 16_000.0);
        assert_eq!(rule.upper_bound_ps(2), 32_000.0);
        // r=3, k=3 => 1 group.
        let rule = ReleaseRule::new(3, 3, t());
        assert_eq!(rule.upper_bound_ps(2), 16_000.0);
    }

    #[test]
    fn ratio_one_releases_immediately_on_first() {
        // k=1 (bus as fast as memory): gathering is pointless, first
        // request releases at once.
        let rule = ReleaseRule::new(1, 3, t());
        assert!(rule.should_release(&[1, 0, 0], 1e15));
    }
}
