//! The DMA-aware memory-controller logic.
//!
//! The decision logic of both techniques lives here as pure, independently
//! testable state machines; [`crate::ServerSimulator`] drives them from its
//! event loop:
//!
//! * [`ta`] — temporal alignment: the global slack account and the
//!   per-chip gather/release rule (paper Section 4.1).
//! * [`pl`] — popularity-based layout: reference counting, exponential
//!   grouping, and migration planning (paper Section 4.2).

pub mod pl;
pub mod ta;
