//! Simulator observability: typed events, metric handles, and the
//! slack-guarantee audit trail.
//!
//! Enable with [`crate::ServerSimulator::with_observability`]. The engine
//! then routes every notable decision through a single [`Obs`] hub:
//!
//! * **events** — a ring-buffered [`EventSink`] of [`SimEvent`]s (chip
//!   power-mode transitions, DMA-TA gather/release decisions, the complete
//!   slack ledger, PL page moves, epoch ticks, chip-activity changes),
//!   exportable as JSONL;
//! * **metrics** — counters/gauges/histograms in a
//!   [`MetricsRegistry`](simcore::obs::MetricsRegistry) under the
//!   `dmamem.*` namespace (see [`ObsMetrics`]);
//! * **timeline** — the existing [`TimelineRecorder`] now consumes the same
//!   activity stream instead of being fed separately.
//!
//! The slack ledger is *complete*: every credit and debit the
//! [`SlackAccount`](crate::controller::ta::SlackAccount) sees is mirrored
//! as a [`SimEvent::SlackCredit`]/[`SimEvent::SlackDebit`] (credits are
//! coalesced between debits to keep event volume proportional to
//! decisions, not requests), closed by one [`SimEvent::SlackClose`].
//! [`replay_slack`] re-derives the performance-guarantee verdict from the
//! ledger alone, independently of [`SimResult::guarantee_met`]
//! (see [`SlackReplay::guarantee_met`]).
//!
//! [`SimResult::guarantee_met`]: crate::SimResult::guarantee_met

use mempower::{PowerMode, TransitionEvent};
use simcore::obs::{EventSink, JsonObject, MetricsRegistry, MetricsSnapshot, ObsEvent};
use simcore::{SimDuration, SimTime};

use crate::timeline::{ChipActivity, TimelineRecorder};

/// Every metric key the engine registers, in registration order. This is
/// the source of truth for the `obs-key` simlint rule: any `dmamem.*`
/// string literal anywhere in the workspace must appear here, so a
/// typo'd key can never silently drop a stream from the slack audit
/// replay. The `metric_keys_match_registration` test pins this list to
/// what [`ObsMetrics::new`] actually registers.
pub const METRIC_KEYS: &[&str] = &[
    "dmamem.wakes",
    "dmamem.sleeps",
    "dmamem.ta.gathered",
    "dmamem.ta.release.rule",
    "dmamem.ta.release.max_delay",
    "dmamem.ta.release.proc_wake",
    "dmamem.slack.credits",
    "dmamem.slack.balance_ps",
    "dmamem.slack.debit_epoch_ps",
    "dmamem.slack.debit_wake_ps",
    "dmamem.slack.debit_proc_ps",
    "dmamem.slack.debit_queue_ps",
    "dmamem.slack.debit_residual_ps",
    "dmamem.pl.page_moves",
    "dmamem.epoch_ticks",
    "dmamem.request_service_ns",
    // Live sweep-progress counters. These are *not* registered by
    // `ObsMetrics::new` (they belong to the sweep driver, not a single
    // run): `SweepCtx` publishes them straight into the shared
    // `LiveState` snapshot served at `/metrics`. The
    // `metric_keys_match_registration` pin skips the `dmamem.sweep.`
    // prefix for exactly that reason.
    "dmamem.sweep.wave",
    "dmamem.sweep.jobs_done",
    "dmamem.sweep.jobs_total",
];

/// Every engine self-profiling metric key, in registration order — the
/// deterministic counters of [`simcore::EngineProfile`], published into
/// the metrics snapshot at end of run (see [`Obs::publish_prof`]).
/// Wall-clock phase timings are deliberately *not* published: the
/// snapshot must stay byte-identical whether profiling is armed or not.
/// The `prof_keys_match_publication` test pins this list to what
/// [`Obs::publish_prof`] actually writes; the simlint `obs-key` rule
/// checks `dmamem.prof.*` string literals against it.
pub const PROF_KEYS: &[&str] = &[
    "dmamem.prof.events",
    "dmamem.prof.heap_pushes",
    "dmamem.prof.heap_pops",
    "dmamem.prof.heap_depth_max",
    "dmamem.prof.transfers",
    "dmamem.prof.requests",
];

/// Every event `kind` tag a [`SimEvent`] can serialize as; the simlint
/// `obs-key` rule checks `"kind":"…"` literals (e.g. in JSONL
/// assertions) against this table. Pinned to [`ObsEvent::kind`] by the
/// `event_kinds_match_variants` test.
pub const EVENT_KINDS: &[&str] = &[
    "mode_transition",
    "chip_activity",
    "ta_gather",
    "ta_release",
    "slack_credit",
    "slack_debit",
    "slack_close",
    "page_move",
    "pl_plan",
    "epoch_tick",
];

/// Every span, instant-marker, and counter name the causal tracer can
/// emit (see [`crate::tracing::Tracer`]), under the `dmamem.trace.*`
/// namespace. The simlint `obs-key` rule checks `dmamem.trace.*` string
/// literals against this table, exactly as it checks plain `dmamem.*`
/// metric keys against [`METRIC_KEYS`]; the
/// `emitted_names_are_registered` test in [`crate::tracing`] pins the
/// list to the constants the tracer actually uses.
pub const TRACE_KEYS: &[&str] = &[
    "dmamem.trace.transfer",
    "dmamem.trace.gather_delay",
    "dmamem.trace.wakeup",
    "dmamem.trace.lockstep_active",
    "dmamem.trace.active_idle",
    "dmamem.trace.drain",
    "dmamem.trace.release",
    "dmamem.trace.serving",
    "dmamem.trace.idle_threshold",
    "dmamem.trace.transition",
    "dmamem.trace.low_power",
    "dmamem.trace.power_mw",
    // Spill-mode loss accounting (run metrics, not span names): see
    // `crate::tracing::COUNTER_SPILLED` / `COUNTER_DROPPED`.
    "dmamem.trace.spilled",
    "dmamem.trace.dropped",
];

/// Why a slack debit was charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebitCause {
    /// Epoch accounting: pending requests assumed to wait the whole epoch.
    Epoch,
    /// Chip activation latency at release.
    Wake,
    /// Processor interference on a chip with pending requests.
    Proc,
    /// Chip-level queueing of non-first requests (over-alignment).
    Queue,
    /// Residual gather delay charged at release (intra-epoch remainder).
    Residual,
}

impl DebitCause {
    /// Stable snake_case tag used in events and metric names.
    pub fn as_str(self) -> &'static str {
        match self {
            DebitCause::Epoch => "epoch",
            DebitCause::Wake => "wake",
            DebitCause::Proc => "proc",
            DebitCause::Queue => "queue",
            DebitCause::Residual => "residual",
        }
    }

    /// The debit-size histogram key for this cause. Static (not built
    /// with `format!`) so every registered key is a literal the
    /// `obs-key` lint can check against [`METRIC_KEYS`].
    pub fn metric_key(self) -> &'static str {
        match self {
            DebitCause::Epoch => "dmamem.slack.debit_epoch_ps",
            DebitCause::Wake => "dmamem.slack.debit_wake_ps",
            DebitCause::Proc => "dmamem.slack.debit_proc_ps",
            DebitCause::Queue => "dmamem.slack.debit_queue_ps",
            DebitCause::Residual => "dmamem.slack.debit_residual_ps",
        }
    }
}

/// Why a chip's gathered first requests were released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseCause {
    /// The release rule fired (`n >= k` or projected delay >= slack).
    Rule,
    /// The per-request maximum gather delay expired.
    MaxDelay,
    /// A processor access forced the chip awake.
    ProcWake,
}

impl ReleaseCause {
    /// Stable snake_case tag used in events and metric names.
    pub fn as_str(self) -> &'static str {
        match self {
            ReleaseCause::Rule => "rule",
            ReleaseCause::MaxDelay => "max_delay",
            ReleaseCause::ProcWake => "proc_wake",
        }
    }
}

/// One observable simulation event.
///
/// Serialized (via [`ObsEvent`]) as one JSONL object per event with the
/// envelope fields `seq`, `t_ps`, `kind` followed by the variant's fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// A chip started a power-mode transition (`kind: "mode_transition"`).
    ModeTransition {
        /// When the transition began.
        at: SimTime,
        /// Chip index.
        chip: usize,
        /// Mode being left.
        from: PowerMode,
        /// Mode being entered.
        to: PowerMode,
        /// Transition latency.
        latency: SimDuration,
    },
    /// A chip's activity classification changed (`kind: "chip_activity"`).
    Activity {
        /// When the activity changed.
        at: SimTime,
        /// Chip index.
        chip: usize,
        /// The new activity.
        activity: ChipActivity,
    },
    /// DMA-TA buffered a first request (`kind: "ta_gather"`).
    TaGather {
        /// When the request was gathered.
        at: SimTime,
        /// Target chip.
        chip: usize,
        /// Pending first requests on the chip after gathering.
        pending: usize,
    },
    /// DMA-TA released a chip's gathered requests (`kind: "ta_release"`).
    TaRelease {
        /// When the release happened.
        at: SimTime,
        /// Released chip.
        chip: usize,
        /// First requests released.
        released: usize,
        /// What triggered the release.
        cause: ReleaseCause,
    },
    /// Slack credits since the previous ledger entry, coalesced
    /// (`kind: "slack_credit"`).
    SlackCredit {
        /// Time of the *last* coalesced credit.
        at: SimTime,
        /// Requests credited.
        requests: u64,
        /// Total picoseconds credited.
        amount_ps: f64,
        /// Account balance after the credits.
        balance_ps: f64,
    },
    /// One slack debit (`kind: "slack_debit"`).
    SlackDebit {
        /// When the debit was charged.
        at: SimTime,
        /// Why it was charged.
        cause: DebitCause,
        /// Picoseconds debited.
        amount_ps: f64,
        /// Account balance after the debit.
        balance_ps: f64,
    },
    /// End-of-run ledger close (`kind: "slack_close"`).
    SlackClose {
        /// Simulation end time.
        at: SimTime,
        /// Total requests credited.
        credited: u64,
        /// Final balance.
        balance_ps: f64,
        /// Lowest balance observed.
        min_ps: f64,
        /// DMA-memory requests served.
        served: u64,
        /// Sum of per-request service times, in picoseconds.
        service_sum_ps: u64,
        /// The `mu` budget in force.
        mu: f64,
        /// Reference request time `T`, in picoseconds.
        t_req_ps: u64,
    },
    /// PL moved one page (`kind: "page_move"`).
    PageMove {
        /// When the move was planned.
        at: SimTime,
        /// The page.
        page: u64,
        /// Source chip.
        from: usize,
        /// Destination chip.
        to: usize,
    },
    /// One PL planning interval completed (`kind: "pl_plan"`).
    PlPlan {
        /// When the plan ran.
        at: SimTime,
        /// Pages in the hot set.
        hot_pages: usize,
        /// Chips assigned to hot groups.
        hot_chips: usize,
        /// Page moves planned.
        moves: usize,
    },
    /// DMA-TA epoch accounting tick (`kind: "epoch_tick"`).
    EpochTick {
        /// Tick time.
        at: SimTime,
        /// Total pending first requests across chips.
        pending: usize,
    },
}

impl ObsEvent for SimEvent {
    fn kind(&self) -> &'static str {
        match self {
            SimEvent::ModeTransition { .. } => "mode_transition",
            SimEvent::Activity { .. } => "chip_activity",
            SimEvent::TaGather { .. } => "ta_gather",
            SimEvent::TaRelease { .. } => "ta_release",
            SimEvent::SlackCredit { .. } => "slack_credit",
            SimEvent::SlackDebit { .. } => "slack_debit",
            SimEvent::SlackClose { .. } => "slack_close",
            SimEvent::PageMove { .. } => "page_move",
            SimEvent::PlPlan { .. } => "pl_plan",
            SimEvent::EpochTick { .. } => "epoch_tick",
        }
    }

    fn timestamp_ps(&self) -> u64 {
        match self {
            SimEvent::ModeTransition { at, .. }
            | SimEvent::Activity { at, .. }
            | SimEvent::TaGather { at, .. }
            | SimEvent::TaRelease { at, .. }
            | SimEvent::SlackCredit { at, .. }
            | SimEvent::SlackDebit { at, .. }
            | SimEvent::SlackClose { at, .. }
            | SimEvent::PageMove { at, .. }
            | SimEvent::PlPlan { at, .. }
            | SimEvent::EpochTick { at, .. } => at.as_ps(),
        }
    }

    fn write_fields(&self, obj: &mut JsonObject) {
        match *self {
            SimEvent::ModeTransition {
                chip,
                from,
                to,
                latency,
                ..
            } => {
                obj.field_u64("chip", chip as u64)
                    .field_str("from", mode_name(from))
                    .field_str("to", mode_name(to))
                    .field_u64("latency_ps", latency.as_ps());
            }
            SimEvent::Activity { chip, activity, .. } => {
                obj.field_u64("chip", chip as u64)
                    .field_str("activity", activity.name());
            }
            SimEvent::TaGather { chip, pending, .. } => {
                obj.field_u64("chip", chip as u64)
                    .field_u64("pending", pending as u64);
            }
            SimEvent::TaRelease {
                chip,
                released,
                cause,
                ..
            } => {
                obj.field_u64("chip", chip as u64)
                    .field_u64("released", released as u64)
                    .field_str("cause", cause.as_str());
            }
            SimEvent::SlackCredit {
                requests,
                amount_ps,
                balance_ps,
                ..
            } => {
                obj.field_u64("requests", requests)
                    .field_f64("amount_ps", amount_ps)
                    .field_f64("balance_ps", balance_ps);
            }
            SimEvent::SlackDebit {
                cause,
                amount_ps,
                balance_ps,
                ..
            } => {
                obj.field_str("cause", cause.as_str())
                    .field_f64("amount_ps", amount_ps)
                    .field_f64("balance_ps", balance_ps);
            }
            SimEvent::SlackClose {
                credited,
                balance_ps,
                min_ps,
                served,
                service_sum_ps,
                mu,
                t_req_ps,
                ..
            } => {
                obj.field_u64("credited", credited)
                    .field_f64("balance_ps", balance_ps)
                    .field_f64("min_ps", min_ps)
                    .field_u64("served", served)
                    .field_u64("service_sum_ps", service_sum_ps)
                    .field_f64("mu", mu)
                    .field_u64("t_req_ps", t_req_ps);
            }
            SimEvent::PageMove { page, from, to, .. } => {
                obj.field_u64("page", page)
                    .field_u64("from", from as u64)
                    .field_u64("to", to as u64);
            }
            SimEvent::PlPlan {
                hot_pages,
                hot_chips,
                moves,
                ..
            } => {
                obj.field_u64("hot_pages", hot_pages as u64)
                    .field_u64("hot_chips", hot_chips as u64)
                    .field_u64("moves", moves as u64);
            }
            SimEvent::EpochTick { pending, .. } => {
                obj.field_u64("pending", pending as u64);
            }
        }
    }
}

fn mode_name(m: PowerMode) -> &'static str {
    match m {
        PowerMode::Active => "active",
        PowerMode::Standby => "standby",
        PowerMode::Nap => "nap",
        PowerMode::Powerdown => "powerdown",
    }
}

/// Pre-resolved metric handles for the engine's hot paths (one registry
/// lookup at construction instead of one per emission).
#[derive(Debug, Clone)]
pub struct ObsMetrics {
    /// The registry every handle below belongs to.
    pub registry: MetricsRegistry,
    /// `dmamem.wakes` — chip wake transitions begun.
    pub wakes: simcore::obs::Counter,
    /// `dmamem.sleeps` — chip sleep transitions begun.
    pub sleeps: simcore::obs::Counter,
    /// `dmamem.ta.gathered` — first requests buffered by DMA-TA.
    pub ta_gathered: simcore::obs::Counter,
    /// `dmamem.ta.release.rule` / `.max_delay` / `.proc_wake`.
    pub releases: [simcore::obs::Counter; 3],
    /// `dmamem.slack.credits` — requests credited.
    pub slack_credits: simcore::obs::Counter,
    /// `dmamem.slack.balance_ps` — current account balance.
    pub slack_balance: simcore::obs::Gauge,
    /// `dmamem.slack.debit_<cause>_ps` — debit-size histograms, indexed by
    /// [`DebitCause`] declaration order.
    pub slack_debits: [simcore::obs::Histogram; 5],
    /// `dmamem.pl.page_moves` — PL page moves planned.
    pub page_moves: simcore::obs::Counter,
    /// `dmamem.epoch_ticks` — DMA-TA epoch ticks.
    pub epoch_ticks: simcore::obs::Counter,
    /// `dmamem.request_service_ns` — per-request service-time histogram.
    pub request_service_ns: simcore::obs::Histogram,
    /// `dmamem.prof.*` — engine self-profile counters, indexed in
    /// [`PROF_KEYS`] order (set once at end of run).
    pub prof: [simcore::obs::Counter; 6],
}

impl ObsMetrics {
    /// Registers (or reattaches to) the `dmamem.*` metrics in `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        let debit = |c: DebitCause| registry.histogram(c.metric_key());
        ObsMetrics {
            registry: registry.clone(),
            wakes: registry.counter("dmamem.wakes"),
            sleeps: registry.counter("dmamem.sleeps"),
            ta_gathered: registry.counter("dmamem.ta.gathered"),
            releases: [
                registry.counter("dmamem.ta.release.rule"),
                registry.counter("dmamem.ta.release.max_delay"),
                registry.counter("dmamem.ta.release.proc_wake"),
            ],
            slack_credits: registry.counter("dmamem.slack.credits"),
            slack_balance: registry.gauge("dmamem.slack.balance_ps"),
            slack_debits: [
                debit(DebitCause::Epoch),
                debit(DebitCause::Wake),
                debit(DebitCause::Proc),
                debit(DebitCause::Queue),
                debit(DebitCause::Residual),
            ],
            page_moves: registry.counter("dmamem.pl.page_moves"),
            epoch_ticks: registry.counter("dmamem.epoch_ticks"),
            request_service_ns: registry.histogram("dmamem.request_service_ns"),
            prof: [
                registry.counter("dmamem.prof.events"),
                registry.counter("dmamem.prof.heap_pushes"),
                registry.counter("dmamem.prof.heap_pops"),
                registry.counter("dmamem.prof.heap_depth_max"),
                registry.counter("dmamem.prof.transfers"),
                registry.counter("dmamem.prof.requests"),
            ],
        }
    }

    fn release_counter(&self, cause: ReleaseCause) -> &simcore::obs::Counter {
        match cause {
            ReleaseCause::Rule => &self.releases[0],
            ReleaseCause::MaxDelay => &self.releases[1],
            ReleaseCause::ProcWake => &self.releases[2],
        }
    }

    fn debit_histogram(&self, cause: DebitCause) -> &simcore::obs::Histogram {
        match cause {
            DebitCause::Epoch => &self.slack_debits[0],
            DebitCause::Wake => &self.slack_debits[1],
            DebitCause::Proc => &self.slack_debits[2],
            DebitCause::Queue => &self.slack_debits[3],
            DebitCause::Residual => &self.slack_debits[4],
        }
    }
}

/// The engine-side observability hub: every consumer (event sink, metrics,
/// timeline recorder) hangs off this one struct, and the engine talks only
/// to it.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Event sink, when event tracing is enabled.
    pub sink: Option<EventSink<SimEvent>>,
    /// Timeline recorder, when a window was requested.
    pub timeline: Option<TimelineRecorder>,
    /// Metric handles, when metrics are enabled.
    pub metrics: Option<ObsMetrics>,
    /// Causal span tracer, when transfer-level tracing was requested
    /// (see [`crate::ServerSimulator::with_tracing`]).
    pub tracer: Option<crate::tracing::Tracer>,
    last_activity: Vec<Option<ChipActivity>>,
    pending_credit_reqs: u64,
    pending_credit_ps: f64,
    pending_credit_balance: f64,
    pending_credit_at: SimTime,
}

impl Obs {
    /// A hub with every consumer disabled, sized for `chips` chips.
    pub fn new(chips: usize) -> Self {
        Obs {
            last_activity: vec![None; chips],
            ..Obs::default()
        }
    }

    /// True when chip-activity changes have a consumer.
    pub fn wants_activity(&self) -> bool {
        self.timeline.is_some() || self.sink.is_some() || self.tracer.is_some()
    }

    /// True when any consumer is attached.
    pub fn enabled(&self) -> bool {
        self.wants_activity() || self.metrics.is_some()
    }

    /// Publishes the *deterministic* engine self-profile counters into
    /// the metrics registry (once, at end of run). Wall-clock phase ns
    /// never reach the registry, so metric snapshots — and everything
    /// rendered from them — are byte-identical with profiling armed or
    /// not. Key order matches [`PROF_KEYS`].
    pub fn publish_prof(&self, profile: &simcore::EngineProfile) {
        let Some(m) = &self.metrics else { return };
        let values = [
            profile.events,
            profile.heap_pushes,
            profile.heap_pops,
            profile.max_heap_depth,
            profile.transfers,
            profile.requests,
        ];
        for (counter, v) in m.prof.iter().zip(values) {
            counter.add(v);
        }
    }

    /// Routes a chip-activity observation to the timeline and the event
    /// sink, deduplicating repeats per chip so the sink sees only changes
    /// (the recorder dedups internally, but flooding the ring would evict
    /// useful history).
    pub fn note_activity(&mut self, chip: usize, now: SimTime, activity: ChipActivity) {
        if self.last_activity[chip] == Some(activity) {
            return;
        }
        self.last_activity[chip] = Some(activity);
        if let Some(rec) = &mut self.timeline {
            rec.record(chip, now, activity);
        }
        if let Some(sink) = &mut self.sink {
            sink.record(SimEvent::Activity {
                at: now,
                chip,
                activity,
            });
        }
        if let Some(tr) = &mut self.tracer {
            tr.chip_activity(chip, now, activity);
        }
    }

    /// Records chip power-mode transitions drained from a
    /// [`mempower::Chip`] transition log.
    pub fn note_transitions(&mut self, chip: usize, events: Vec<TransitionEvent>) {
        for t in events {
            if let Some(m) = &self.metrics {
                if t.to == PowerMode::Active {
                    m.wakes.inc();
                } else {
                    m.sleeps.inc();
                }
            }
            if let Some(sink) = &mut self.sink {
                sink.record(SimEvent::ModeTransition {
                    at: t.at,
                    chip,
                    from: t.from,
                    to: t.to,
                    latency: t.latency,
                });
            }
            if let Some(tr) = &mut self.tracer {
                tr.transition(chip, &t);
            }
        }
    }

    /// Forwards a transfer arrival to the causal tracer, if attached.
    pub fn trace_transfer_started(&mut self, tid: u64, bus: usize, now: SimTime) {
        if let Some(tr) = &mut self.tracer {
            tr.transfer_started(tid, bus, now);
        }
    }

    /// Forwards a bus request delivery to the causal tracer, if attached.
    pub fn trace_issued(
        &mut self,
        tid: u64,
        is_first: bool,
        is_last: bool,
        wake_pending: bool,
        now: SimTime,
    ) {
        if let Some(tr) = &mut self.tracer {
            tr.issued(tid, is_first, is_last, wake_pending, now);
        }
    }

    /// Forwards a DMA-TA gather decision to the causal tracer, if attached.
    pub fn trace_gathered(&mut self, tid: u64, now: SimTime) {
        if let Some(tr) = &mut self.tracer {
            tr.gathered(tid, now);
        }
    }

    /// Forwards a DMA-TA release to the causal tracer, if attached.
    pub fn trace_released(&mut self, tid: u64, now: SimTime) {
        if let Some(tr) = &mut self.tracer {
            tr.released(tid, now);
        }
    }

    /// Forwards a service start to the causal tracer, if attached.
    pub fn trace_serve_start(&mut self, tid: u64, now: SimTime) {
        if let Some(tr) = &mut self.tracer {
            tr.serve_start(tid, now);
        }
    }

    /// Forwards a service completion to the causal tracer, if attached.
    pub fn trace_serve_done(&mut self, tid: u64, is_last: bool, now: SimTime) {
        if let Some(tr) = &mut self.tracer {
            tr.serve_done(tid, is_last, now);
        }
    }

    /// Accumulates one slack credit; the coalesced [`SimEvent::SlackCredit`]
    /// is flushed before the next debit (or at close).
    pub fn slack_credit(&mut self, now: SimTime, amount_ps: f64, balance_ps: f64) {
        if let Some(m) = &self.metrics {
            m.slack_credits.inc();
            m.slack_balance.set(balance_ps);
        }
        if self.sink.is_some() {
            self.pending_credit_reqs += 1;
            self.pending_credit_ps += amount_ps;
            self.pending_credit_balance = balance_ps;
            self.pending_credit_at = now;
        }
    }

    /// Emits any coalesced credits as one ledger entry.
    pub fn flush_credits(&mut self) {
        if self.pending_credit_reqs == 0 {
            return;
        }
        let ev = SimEvent::SlackCredit {
            at: self.pending_credit_at,
            requests: self.pending_credit_reqs,
            amount_ps: self.pending_credit_ps,
            balance_ps: self.pending_credit_balance,
        };
        self.pending_credit_reqs = 0;
        self.pending_credit_ps = 0.0;
        if let Some(sink) = &mut self.sink {
            sink.record(ev);
        }
    }

    /// Records one slack debit in the ledger and the metrics.
    pub fn slack_debit(
        &mut self,
        now: SimTime,
        cause: DebitCause,
        amount_ps: f64,
        balance_ps: f64,
    ) {
        self.flush_credits();
        if let Some(m) = &self.metrics {
            m.debit_histogram(cause).record(amount_ps.max(0.0) as u64);
            m.slack_balance.set(balance_ps);
        }
        if let Some(sink) = &mut self.sink {
            sink.record(SimEvent::SlackDebit {
                at: now,
                cause,
                amount_ps,
                balance_ps,
            });
        }
    }

    /// Records a DMA-TA gather decision.
    pub fn ta_gather(&mut self, now: SimTime, chip: usize, pending: usize) {
        if let Some(m) = &self.metrics {
            m.ta_gathered.inc();
        }
        if let Some(sink) = &mut self.sink {
            sink.record(SimEvent::TaGather {
                at: now,
                chip,
                pending,
            });
        }
    }

    /// Records a DMA-TA release decision.
    pub fn ta_release(&mut self, now: SimTime, chip: usize, released: usize, cause: ReleaseCause) {
        if let Some(m) = &self.metrics {
            m.release_counter(cause).inc();
        }
        if let Some(sink) = &mut self.sink {
            sink.record(SimEvent::TaRelease {
                at: now,
                chip,
                released,
                cause,
            });
        }
    }

    /// Records one PL planning interval and its page moves.
    pub fn pl_plan(
        &mut self,
        now: SimTime,
        hot_pages: usize,
        hot_chips: usize,
        moves: &[crate::controller::pl::Move],
    ) {
        if let Some(m) = &self.metrics {
            m.page_moves.add(moves.len() as u64);
        }
        if let Some(sink) = &mut self.sink {
            sink.record(SimEvent::PlPlan {
                at: now,
                hot_pages,
                hot_chips,
                moves: moves.len(),
            });
            for m in moves {
                sink.record(SimEvent::PageMove {
                    at: now,
                    page: m.page,
                    from: m.from,
                    to: m.to,
                });
            }
        }
    }

    /// Records a DMA-TA epoch tick.
    pub fn epoch_tick(&mut self, now: SimTime, pending: usize) {
        if let Some(m) = &self.metrics {
            m.epoch_ticks.inc();
        }
        if let Some(sink) = &mut self.sink {
            sink.record(SimEvent::EpochTick { at: now, pending });
        }
    }

    /// Records one served DMA-memory request's service time.
    pub fn request_served(&mut self, service: SimDuration) {
        if let Some(m) = &self.metrics {
            m.request_service_ns.record(service.as_ps() / 1_000);
        }
    }

    /// Closes the slack ledger at end of run.
    #[allow(clippy::too_many_arguments)]
    pub fn slack_close(
        &mut self,
        now: SimTime,
        credited: u64,
        balance_ps: f64,
        min_ps: f64,
        served: u64,
        service_sum_ps: u64,
        mu: f64,
        t_req: SimDuration,
    ) {
        self.flush_credits();
        if let Some(m) = &self.metrics {
            m.slack_balance.set(balance_ps);
        }
        if let Some(sink) = &mut self.sink {
            sink.record(SimEvent::SlackClose {
                at: now,
                credited,
                balance_ps,
                min_ps,
                served,
                service_sum_ps,
                mu,
                t_req_ps: t_req.as_ps(),
            });
        }
    }
}

/// The end-of-run slack-account totals (always populated when DMA-TA is
/// on, independent of whether full observability was enabled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackSummary {
    /// Requests credited.
    pub credited: u64,
    /// Total epoch (+ residual) debits, in picoseconds.
    pub debit_epoch_ps: f64,
    /// Total wake debits, in picoseconds.
    pub debit_wake_ps: f64,
    /// Total processor-interference debits, in picoseconds.
    pub debit_proc_ps: f64,
    /// Total queueing debits, in picoseconds.
    pub debit_queue_ps: f64,
    /// Final balance, in picoseconds.
    pub final_ps: f64,
    /// Lowest balance observed, in picoseconds.
    pub min_ps: f64,
}

/// What an observability-enabled run captured (see
/// [`crate::ServerSimulator::with_observability`]).
#[derive(Debug, Clone)]
pub struct RunObs {
    /// Final metric values.
    pub metrics: MetricsSnapshot,
    /// The recorded event stream.
    pub events: EventSink<SimEvent>,
}

/// The result of replaying a slack ledger (see [`replay_slack`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackReplay {
    /// Requests credited across all `slack_credit` entries.
    pub credited: u64,
    /// Total picoseconds credited.
    pub credit_ps: f64,
    /// Total picoseconds debited.
    pub debit_ps: f64,
    /// Balance after replaying every entry.
    pub balance_ps: f64,
    /// Served-request count from the `slack_close` entry (0 if absent).
    pub served: u64,
    /// Service-time sum (ps) from the `slack_close` entry.
    pub service_sum_ps: u64,
    /// The `mu` budget from the `slack_close` entry.
    pub mu: f64,
    /// Whether a `slack_close` entry was seen.
    pub closed: bool,
    /// Whether every ledger entry's recorded balance matched the replayed
    /// running balance (within float tolerance).
    pub ledger_consistent: bool,
}

impl SlackReplay {
    /// Re-derives the performance-guarantee verdict from the ledger alone:
    /// mean service time (from the close entry's exact integer totals)
    /// within `(1 + mu) * t_ref`. Matches
    /// [`crate::SimResult::guarantee_met`] by construction.
    pub fn guarantee_met(&self, t_ref: SimDuration) -> bool {
        if self.served == 0 {
            return true;
        }
        let mean_ns = self.service_sum_ps as f64 / self.served as f64 / 1_000.0;
        mean_ns <= (1.0 + self.mu) * t_ref.as_ns_f64() + 1e-9
    }
}

/// Replays slack-ledger events (any [`SimEvent`] iterator; non-ledger
/// events are ignored) into totals and a consistency check.
pub fn replay_slack<'a>(events: impl IntoIterator<Item = &'a SimEvent>) -> SlackReplay {
    let mut r = SlackReplay {
        credited: 0,
        credit_ps: 0.0,
        debit_ps: 0.0,
        balance_ps: 0.0,
        served: 0,
        service_sum_ps: 0,
        mu: 0.0,
        closed: false,
        ledger_consistent: true,
    };
    let check = |running: f64, recorded: f64, ok: &mut bool| {
        let tol = 1e-6 * recorded.abs().max(1.0);
        if (running - recorded).abs() > tol {
            *ok = false;
        }
    };
    for ev in events {
        match *ev {
            SimEvent::SlackCredit {
                requests,
                amount_ps,
                balance_ps,
                ..
            } => {
                r.credited += requests;
                r.credit_ps += amount_ps;
                r.balance_ps += amount_ps;
                check(r.balance_ps, balance_ps, &mut r.ledger_consistent);
            }
            SimEvent::SlackDebit {
                amount_ps,
                balance_ps,
                ..
            } => {
                r.debit_ps += amount_ps;
                r.balance_ps -= amount_ps;
                check(r.balance_ps, balance_ps, &mut r.ledger_consistent);
            }
            SimEvent::SlackClose {
                credited,
                balance_ps,
                served,
                service_sum_ps,
                mu,
                ..
            } => {
                r.closed = true;
                r.served = served;
                r.service_sum_ps = service_sum_ps;
                r.mu = mu;
                if credited != r.credited {
                    r.ledger_consistent = false;
                }
                check(r.balance_ps, balance_ps, &mut r.ledger_consistent);
            }
            _ => {}
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    #[test]
    fn events_serialize_with_kind_and_fields() {
        let mut sink = EventSink::new(16);
        sink.record(SimEvent::ModeTransition {
            at: t(10),
            chip: 3,
            from: PowerMode::Active,
            to: PowerMode::Nap,
            latency: SimDuration::from_ns(5),
        });
        sink.record(SimEvent::TaRelease {
            at: t(20),
            chip: 3,
            released: 2,
            cause: ReleaseCause::MaxDelay,
        });
        let jsonl = sink.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(
            lines[0].contains(r#""kind":"mode_transition""#),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains(r#""to":"nap""#) && lines[0].contains(r#""latency_ps":5000"#));
        assert!(lines[1].contains(r#""cause":"max_delay""#) && lines[1].contains(r#""t_ps":20"#));
    }

    #[test]
    fn credits_coalesce_until_a_debit() {
        let mut obs = Obs::new(1);
        obs.sink = Some(EventSink::new(64));
        obs.slack_credit(t(1), 100.0, 100.0);
        obs.slack_credit(t(2), 100.0, 200.0);
        obs.slack_debit(t(3), DebitCause::Epoch, 50.0, 150.0);
        obs.slack_credit(t(4), 100.0, 250.0);
        obs.flush_credits();
        let sink = obs.sink.as_ref().unwrap();
        let kinds: Vec<&str> = sink.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, ["slack_credit", "slack_debit", "slack_credit"]);
        let replay = replay_slack(sink.iter());
        assert_eq!(replay.credited, 3);
        assert!((replay.balance_ps - 250.0).abs() < 1e-9);
        assert!(replay.ledger_consistent);
    }

    #[test]
    fn activity_dedup_per_chip() {
        let mut obs = Obs::new(2);
        obs.sink = Some(EventSink::new(64));
        obs.note_activity(0, t(1), ChipActivity::Serving);
        obs.note_activity(0, t(2), ChipActivity::Serving); // dup: dropped
        obs.note_activity(1, t(2), ChipActivity::Serving); // other chip: kept
        obs.note_activity(0, t(3), ChipActivity::LowPower);
        assert_eq!(obs.sink.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn replay_flags_inconsistent_ledger() {
        let events = [
            SimEvent::SlackCredit {
                at: t(1),
                requests: 1,
                amount_ps: 100.0,
                balance_ps: 100.0,
            },
            SimEvent::SlackDebit {
                at: t(2),
                cause: DebitCause::Wake,
                amount_ps: 30.0,
                balance_ps: 99.0, // should be 70
            },
        ];
        let r = replay_slack(events.iter());
        assert!(!r.ledger_consistent);
        assert!((r.balance_ps - 70.0).abs() < 1e-9);
    }

    #[test]
    fn replay_guarantee_matches_formula() {
        let close = SimEvent::SlackClose {
            at: t(100),
            credited: 4,
            balance_ps: 0.0,
            min_ps: -5.0,
            served: 4,
            service_sum_ps: 40_000, // mean 10 ns
            mu: 0.25,
            t_req_ps: 8_000,
        };
        let r = replay_slack([&close]);
        assert!(r.closed);
        assert!(r.guarantee_met(SimDuration::from_ns(8))); // limit 10 ns
        assert!(!r.guarantee_met(SimDuration::from_ns(7))); // limit 8.75 ns
    }

    #[test]
    fn metric_keys_match_registration() {
        let reg = MetricsRegistry::new();
        let _metrics = ObsMetrics::new(&reg);
        let snap = reg.snapshot();
        let mut registered: Vec<String> = snap
            .counters
            .keys()
            .chain(snap.gauges.keys())
            .chain(snap.histograms.keys())
            .map(|k| k.to_string())
            .collect();
        registered.sort();
        // Sweep-progress keys are published by the sweep driver into the
        // live telemetry snapshot, never registered per run.
        let mut expected: Vec<String> = METRIC_KEYS
            .iter()
            // simlint::allow(obs-key, "prefix filter over the table itself, not an emitted key")
            .filter(|k| !k.starts_with("dmamem.sweep."))
            .chain(PROF_KEYS)
            .map(|k| k.to_string())
            .collect();
        expected.sort();
        assert_eq!(
            registered, expected,
            "METRIC_KEYS + PROF_KEYS must list exactly what ObsMetrics::new registers"
        );
    }

    #[test]
    fn prof_keys_match_publication() {
        let reg = MetricsRegistry::new();
        let mut obs = Obs::new(1);
        obs.metrics = Some(ObsMetrics::new(&reg));
        let mut profile = simcore::EngineProfile {
            events: 11,
            heap_pushes: 12,
            heap_pops: 13,
            max_heap_depth: 14,
            transfers: 15,
            requests: 16,
            timed: true,
            ..simcore::EngineProfile::default()
        };
        profile
            .phases
            .add_ns(simcore::prof::Phase::Dispatch, 99_999);
        obs.publish_prof(&profile);
        let snap = reg.snapshot();
        let expect: [(&str, u64); 6] = [
            ("dmamem.prof.events", 11),
            ("dmamem.prof.heap_pushes", 12),
            ("dmamem.prof.heap_pops", 13),
            ("dmamem.prof.heap_depth_max", 14),
            ("dmamem.prof.transfers", 15),
            ("dmamem.prof.requests", 16),
        ];
        for (key, v) in expect {
            assert!(PROF_KEYS.contains(&key));
            assert_eq!(snap.counter(key), Some(v), "{key}");
        }
        // Wall-clock ns must never reach the registry: nothing beyond the
        // registered keys appears, even though the profile carried phase ns.
        for key in snap.counters.keys() {
            let key: &str = key;
            assert!(
                METRIC_KEYS.contains(&key) || PROF_KEYS.contains(&key),
                "unexpected published key {key}"
            );
        }
    }

    #[test]
    fn event_kinds_match_variants() {
        let probe = SimTime::ZERO;
        let dur = SimDuration::from_ns(1);
        // One value of every variant; adding a variant without extending
        // EVENT_KINDS fails here (and new kinds escape the audit replay).
        let events = [
            SimEvent::ModeTransition {
                at: probe,
                chip: 0,
                from: PowerMode::Active,
                to: PowerMode::Nap,
                latency: dur,
            },
            SimEvent::Activity {
                at: probe,
                chip: 0,
                activity: ChipActivity::Serving,
            },
            SimEvent::TaGather {
                at: probe,
                chip: 0,
                pending: 1,
            },
            SimEvent::TaRelease {
                at: probe,
                chip: 0,
                released: 1,
                cause: ReleaseCause::Rule,
            },
            SimEvent::SlackCredit {
                at: probe,
                requests: 1,
                amount_ps: 0.0,
                balance_ps: 0.0,
            },
            SimEvent::SlackDebit {
                at: probe,
                cause: DebitCause::Epoch,
                amount_ps: 0.0,
                balance_ps: 0.0,
            },
            SimEvent::SlackClose {
                at: probe,
                credited: 0,
                balance_ps: 0.0,
                min_ps: 0.0,
                served: 0,
                service_sum_ps: 0,
                mu: 0.0,
                t_req_ps: 0,
            },
            SimEvent::PageMove {
                at: probe,
                page: 0,
                from: 0,
                to: 1,
            },
            SimEvent::PlPlan {
                at: probe,
                hot_pages: 0,
                hot_chips: 0,
                moves: 0,
            },
            SimEvent::EpochTick {
                at: probe,
                pending: 0,
            },
        ];
        assert_eq!(events.len(), EVENT_KINDS.len());
        for ev in &events {
            assert!(
                EVENT_KINDS.contains(&ev.kind()),
                "kind `{}` missing from EVENT_KINDS",
                ev.kind()
            );
        }
    }

    #[test]
    fn debit_metric_keys_are_registered() {
        for cause in [
            DebitCause::Epoch,
            DebitCause::Wake,
            DebitCause::Proc,
            DebitCause::Queue,
            DebitCause::Residual,
        ] {
            assert!(METRIC_KEYS.contains(&cause.metric_key()));
        }
    }

    #[test]
    fn metrics_handles_count_decisions() {
        let reg = MetricsRegistry::new();
        let mut obs = Obs::new(1);
        obs.metrics = Some(ObsMetrics::new(&reg));
        obs.ta_gather(t(1), 0, 1);
        obs.ta_release(t(2), 0, 1, ReleaseCause::Rule);
        obs.slack_debit(t(3), DebitCause::Queue, 123.0, -123.0);
        obs.epoch_tick(t(4), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("dmamem.ta.gathered"), Some(1));
        assert_eq!(snap.counter("dmamem.ta.release.rule"), Some(1));
        assert_eq!(snap.counter("dmamem.epoch_ticks"), Some(1));
        assert_eq!(snap.histograms["dmamem.slack.debit_queue_ps"].count, 1);
        assert_eq!(snap.gauge("dmamem.slack.balance_ps"), Some(-123.0));
    }
}
