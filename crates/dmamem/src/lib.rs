//! DMA-aware memory energy management — the paper's core contribution.
//!
//! This crate implements the memory controller techniques of *"DMA-Aware
//! Memory Energy Management"* (Pandey, Jiang, Zhou, Bianchini — HPCA 2006)
//! and the whole-system simulator that evaluates them:
//!
//! * **DMA-TA (temporal alignment, Section 4.1)** — the controller delays
//!   the first DMA-memory request of a transfer that targets a chip in a
//!   low-power mode, gathering transfers from different I/O buses until the
//!   chip can run them in lockstep at full utilization, bounded by a
//!   slack-based soft performance guarantee.
//! * **PL (popularity-based layout, Section 4.2)** — interval-based page
//!   migration concentrates hot pages on a few hot chips (exponential group
//!   sizes; 2 groups is the paper's sweet spot), multiplying DMA-TA's
//!   alignment opportunities and letting cold chips sleep.
//! * **[`ServerSimulator`]** — a discrete-event simulation of the full data
//!   server path: trace-driven DMA transfers paced over PCI-X buses
//!   ([`iobus`]), multi-power-mode RDRAM chips under a low-level policy
//!   ([`mempower`]), processor accesses with priority, and the controller
//!   schemes above.
//! * **[`experiments`]** — one runner per table/figure of the paper's
//!   evaluation section.
//! * **[`sweep`]** — the parallel sweep engine the runners use: memoized
//!   simulation results and shared traces over a work-stealing pool, with
//!   bit-identical output at any thread count.
//!
//! # Quickstart
//!
//! ```
//! use dmamem::{Scheme, ServerSimulator, SystemConfig};
//! use dma_trace::{SyntheticStorageGen, TraceGen};
//! use simcore::SimDuration;
//!
//! let trace = SyntheticStorageGen::default().generate(SimDuration::from_ms(2), 7);
//! let config = SystemConfig::default();
//! let baseline = ServerSimulator::new(config.clone(), Scheme::baseline()).run(&trace);
//! let ta = ServerSimulator::new(config, Scheme::dma_ta(0.5)).run(&trace);
//! // Temporal alignment never uses more energy than the baseline here.
//! assert!(ta.energy.total_mj() <= baseline.energy.total_mj() * 1.02);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Engine code must not panic on recoverable conditions; test code may
// unwrap freely (CI runs clippy with -D warnings, so this stays a
// lib-only gate).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod calibrate;
mod config;
pub mod controller;
pub mod experiments;
mod layout;
mod metrics;
pub mod obs;
pub mod sweep;
mod system;
pub mod timeline;
pub mod tracing;

pub use config::{PlConfig, PolicyKind, Scheme, SystemConfig, TaConfig};
pub use layout::PageMap;
pub use metrics::SimResult;
pub use obs::{replay_slack, RunObs, SimEvent, SlackReplay, SlackSummary};
pub use system::ServerSimulator;
pub use tracing::{attribution_json, RunAttribution, Tracer, WasteBuckets};
