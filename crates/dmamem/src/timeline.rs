//! Per-chip power/activity timelines (the paper's Figure 2(a) and Figure 3
//! time-line diagrams, as data).
//!
//! A [`TimelineRecorder`] captures, inside a bounded observation window,
//! every change of each chip's activity state. The simulator feeds it; the
//! renderer turns it into the paper's up-down timeline pictures in ASCII.

use simcore::{SimDuration, SimTime};

/// What a chip is doing, as drawn in the paper's timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChipActivity {
    /// Actively serving a DMA-memory request or processor access.
    Serving,
    /// Active but idle between DMA-memory requests.
    IdleDma,
    /// Active and idle with no transfer in flight.
    IdleOther,
    /// Transitioning between power modes.
    Transitioning,
    /// In a low-power mode.
    LowPower,
}

impl ChipActivity {
    /// One-character glyph for ASCII rendering.
    pub fn glyph(self) -> char {
        match self {
            ChipActivity::Serving => '#',
            ChipActivity::IdleDma => '~',
            ChipActivity::IdleOther => '.',
            ChipActivity::Transitioning => '/',
            ChipActivity::LowPower => '_',
        }
    }

    /// Stable snake_case tag used in exported events.
    pub fn name(self) -> &'static str {
        match self {
            ChipActivity::Serving => "serving",
            ChipActivity::IdleDma => "idle_dma",
            ChipActivity::IdleOther => "idle_other",
            ChipActivity::Transitioning => "transitioning",
            ChipActivity::LowPower => "low_power",
        }
    }
}

/// One recorded state segment: `[start, end)` in `activity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Chip index.
    pub chip: usize,
    /// Segment start.
    pub start: SimTime,
    /// Segment end.
    pub end: SimTime,
    /// Activity during the segment.
    pub activity: ChipActivity,
}

/// Records chip-activity segments inside an observation window.
///
/// # Example
///
/// ```
/// use dmamem::timeline::{ChipActivity, TimelineRecorder};
/// use simcore::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let mut rec = TimelineRecorder::new(t0, t0 + SimDuration::from_ns(100), 4);
/// rec.record(0, t0, ChipActivity::Serving);
/// rec.record(0, t0 + SimDuration::from_ns(10), ChipActivity::IdleDma);
/// rec.finish(t0 + SimDuration::from_ns(30));
/// assert_eq!(rec.segments().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TimelineRecorder {
    window_start: SimTime,
    window_end: SimTime,
    open: Vec<Option<(SimTime, ChipActivity)>>,
    segments: Vec<Segment>,
}

impl TimelineRecorder {
    /// Creates a recorder observing `[start, end)` for `chips` chips.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn new(start: SimTime, end: SimTime, chips: usize) -> Self {
        assert!(start < end, "empty observation window");
        TimelineRecorder {
            window_start: start,
            window_end: end,
            open: vec![None; chips],
            segments: Vec::new(),
        }
    }

    /// The observation window.
    pub fn window(&self) -> (SimTime, SimTime) {
        (self.window_start, self.window_end)
    }

    /// Records that `chip` entered `activity` at `now`, closing any open
    /// segment. Events outside the window are clipped.
    pub fn record(&mut self, chip: usize, now: SimTime, activity: ChipActivity) {
        if let Some((_, act)) = self.open[chip] {
            if act == activity {
                return; // no state change
            }
        }
        let now = now.max(self.window_start).min(self.window_end);
        if let Some((start, act)) = self.open[chip].take() {
            if now > start {
                self.segments.push(Segment {
                    chip,
                    start,
                    end: now,
                    activity: act,
                });
            }
        }
        if now < self.window_end {
            self.open[chip] = Some((now, activity));
        }
    }

    /// Closes all open segments at `now` (call once at the end of the
    /// simulation).
    pub fn finish(&mut self, now: SimTime) {
        for chip in 0..self.open.len() {
            // Close by re-recording the same activity at the clip point;
            // the open slot is dropped because `now` may exceed the
            // window end.
            if let Some((start, act)) = self.open[chip].take() {
                let end = now.max(self.window_start).min(self.window_end);
                if end > start {
                    self.segments.push(Segment {
                        chip,
                        start,
                        end,
                        activity: act,
                    });
                }
            }
        }
        self.segments.sort_by_key(|s| (s.chip, s.start));
    }

    /// The recorded segments (sorted by chip, then time, after
    /// [`TimelineRecorder::finish`]).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Renders the chips that have any recorded activity as ASCII timelines,
    /// `width` characters across the observation window. Glyphs: `#`
    /// serving, `~` idle between DMA requests, `.` other active idle, `/`
    /// transitioning, `_` low power.
    pub fn render(&self, width: usize) -> String {
        let chips: Vec<usize> = {
            let mut c: Vec<usize> = self.segments.iter().map(|s| s.chip).collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        self.render_chips(width, &chips)
    }

    /// Like [`TimelineRecorder::render`] but only for chips that actually
    /// served or idled on DMA work in the window (hides the rows of chips
    /// that slept throughout).
    pub fn render_active(&self, width: usize) -> String {
        let chips: Vec<usize> = {
            let mut c: Vec<usize> = self
                .segments
                .iter()
                .filter(|s| matches!(s.activity, ChipActivity::Serving | ChipActivity::IdleDma))
                .map(|s| s.chip)
                .collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        self.render_chips(width, &chips)
    }

    /// Renders the given chips' rows.
    pub fn render_chips(&self, width: usize, chips: &[usize]) -> String {
        let width = width.max(10);
        let span = self.window_end - self.window_start;
        let mut out = String::new();
        out.push_str(&format!(
            "window {} .. {} ({} per column)\n",
            self.window_start,
            self.window_end,
            span / width as u64
        ));
        for &chip in chips {
            let mut row = vec![' '; width];
            for s in self.segments.iter().filter(|s| s.chip == chip) {
                let a = (s.start - self.window_start).as_ps() as u128 * width as u128
                    / span.as_ps() as u128;
                let b = (s.end - self.window_start).as_ps() as u128 * width as u128
                    / span.as_ps() as u128;
                let b = (b.max(a + 1) as usize).min(width);
                for cell in &mut row[a as usize..b] {
                    *cell = s.activity.glyph();
                }
            }
            out.push_str(&format!(
                "chip {chip:>3} |{}|\n",
                row.iter().collect::<String>()
            ));
        }
        out.push_str("legend: # serving  ~ idle-DMA  . idle  / transition  _ low power\n");
        out
    }

    /// The fraction of recorded (non-low-power, non-transition) active time
    /// spent serving — the windowed utilization factor.
    pub fn windowed_uf(&self) -> f64 {
        let mut serving = SimDuration::ZERO;
        let mut idle_dma = SimDuration::ZERO;
        for s in &self.segments {
            match s.activity {
                ChipActivity::Serving => serving += s.end - s.start,
                ChipActivity::IdleDma => idle_dma += s.end - s.start,
                _ => {}
            }
        }
        let tot = serving + idle_dma;
        if tot.is_zero() {
            1.0
        } else {
            serving.ratio(tot)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(n)
    }

    #[test]
    fn segments_are_closed_and_clipped() {
        let mut rec = TimelineRecorder::new(ns(10), ns(50), 2);
        rec.record(0, ns(0), ChipActivity::LowPower); // clipped to 10
        rec.record(0, ns(20), ChipActivity::Serving);
        rec.record(1, ns(30), ChipActivity::IdleDma);
        rec.finish(ns(100)); // clipped to 50
        let segs = rec.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].start, ns(10));
        assert_eq!(segs[0].end, ns(20));
        assert_eq!(segs[1].activity, ChipActivity::Serving);
        assert_eq!(segs[1].end, ns(50));
        assert_eq!(segs[2].chip, 1);
    }

    #[test]
    fn events_past_window_open_nothing() {
        let mut rec = TimelineRecorder::new(ns(0), ns(10), 1);
        rec.record(0, ns(50), ChipActivity::Serving);
        rec.finish(ns(60));
        assert!(rec.segments().is_empty());
    }

    #[test]
    fn render_shows_glyph_rows() {
        let mut rec = TimelineRecorder::new(ns(0), ns(12), 1);
        rec.record(0, ns(0), ChipActivity::Serving);
        rec.record(0, ns(4), ChipActivity::IdleDma);
        rec.finish(ns(12));
        let art = rec.render(12);
        assert!(art.contains("chip   0 |####~~~~~~~~|"), "render:\n{art}");
        assert!(art.contains("legend"));
    }

    #[test]
    fn windowed_uf_matches_figure2a() {
        let mut rec = TimelineRecorder::new(ns(0), ns(12), 1);
        rec.record(0, ns(0), ChipActivity::Serving);
        rec.record(0, ns(4), ChipActivity::IdleDma);
        rec.finish(ns(12));
        assert!((rec.windowed_uf() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_length_changes_do_not_emit() {
        let mut rec = TimelineRecorder::new(ns(0), ns(10), 1);
        rec.record(0, ns(5), ChipActivity::Serving);
        rec.record(0, ns(5), ChipActivity::IdleDma);
        rec.finish(ns(10));
        assert_eq!(rec.segments().len(), 1);
        assert_eq!(rec.segments()[0].activity, ChipActivity::IdleDma);
    }
}
