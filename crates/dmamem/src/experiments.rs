//! Experiment runners: one per table and figure of the paper's evaluation.
//!
//! Each function regenerates the data behind a specific exhibit of the
//! paper (Section 5) and returns it as plain rows, so the `bench` crate can
//! print tables and Criterion benches can time the underlying simulations.
//!
//! Every simulation-heavy runner comes in two forms: `figN(exp, ...)`, the
//! original serial entry point, and `figN_ctx(&SweepCtx, exp, ...)`, which
//! runs its simulations through the [`crate::sweep`] engine — traces are
//! generated once and shared, baselines repeated across figures are
//! memoized, and independent runs execute in parallel. The serial form
//! delegates to a fresh single-threaded context, so both produce
//! bit-identical rows.
//!
//! | exhibit | runner |
//! |---|---|
//! | Table 1 (power model)            | [`table1_text`] |
//! | Table 2 (trace characteristics)  | [`table2`] |
//! | Figure 2(a) (cycle waste)        | [`fig2a`] |
//! | Figure 2(b) (energy breakdown)   | [`fig2b`] |
//! | Figure 3 (lockstep alignment)    | [`fig3`] |
//! | Figure 4 (popularity CDF)        | [`fig4`] |
//! | Figure 5 (savings vs CP-Limit)   | [`fig5`] |
//! | Figure 6 (scheme breakdowns)     | [`fig6`] |
//! | Figure 7 (utilization factors)   | [`fig7`] |
//! | Figure 8 (workload intensity)    | [`fig8`] |
//! | Figure 9 (processor accesses)    | [`fig9`] |
//! | Figure 10 (bandwidth ratio)      | [`fig10`] |

use dma_trace::{
    OltpDbGen, OltpStGen, SyntheticDbGen, SyntheticStorageGen, TpchScanGen, Trace, TraceGen,
    TraceStats,
};
use iobus::BusConfig;
use mempower::{EnergyBreakdown, PowerMode, PowerModel};
use simcore::obs::SpillSink;
use simcore::SimDuration;

use crate::config::{Scheme, SystemConfig};
use crate::metrics::SimResult;
use crate::sweep::{SharedTrace, SimJob, SweepCtx};
use crate::system::ServerSimulator;

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Trace length to simulate.
    pub duration: SimDuration,
    /// Workload generator seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            duration: SimDuration::from_ms(20),
            seed: 42,
        }
    }
}

impl ExpConfig {
    /// A fast configuration for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        ExpConfig {
            duration: SimDuration::from_ms(2),
            seed: 42,
        }
    }
}

/// The paper's four evaluation workloads (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Real-storage-server stand-in: network + disk DMAs.
    OltpSt,
    /// Synthetic storage workload: Zipf(1), Poisson 100 transfers/ms.
    SyntheticSt,
    /// Database-server stand-in: network DMAs + processor accesses.
    OltpDb,
    /// Synthetic database workload.
    SyntheticDb,
}

impl Workload {
    /// All four workloads, in the paper's order.
    pub const ALL: [Workload; 4] = [
        Workload::OltpSt,
        Workload::SyntheticSt,
        Workload::OltpDb,
        Workload::SyntheticDb,
    ];

    /// The paper's trace name.
    pub fn label(self) -> &'static str {
        match self {
            Workload::OltpSt => "OLTP-St",
            Workload::SyntheticSt => "Synthetic-St",
            Workload::OltpDb => "OLTP-Db",
            Workload::SyntheticDb => "Synthetic-Db",
        }
    }

    /// Generates the workload's trace.
    pub fn generate(self, duration: SimDuration, seed: u64) -> Trace {
        match self {
            Workload::OltpSt => OltpStGen::default().generate(duration, seed),
            Workload::SyntheticSt => SyntheticStorageGen::default().generate(duration, seed),
            Workload::OltpDb => OltpDbGen::default().generate(duration, seed),
            Workload::SyntheticDb => SyntheticDbGen::default().generate(duration, seed),
        }
    }

    /// The workload's trace via the sweep engine's cache: generated once
    /// per `(workload, duration, seed)` and shared across figures.
    pub fn shared_trace(self, ctx: &SweepCtx, exp: ExpConfig) -> SharedTrace {
        ctx.trace(
            format!("{}|{:?}|{}", self.label(), exp.duration, exp.seed),
            || self.generate(exp.duration, exp.seed),
        )
    }

    /// The part of the *client-perceived* response time that lies outside
    /// the memory DMA path. The paper transforms CP-Limit into `mu`
    /// off-line against the full client response (Section 5.1); for storage
    /// workloads that response is dominated by disk time on buffer-cache
    /// misses, for database workloads by query processing.
    ///
    /// Storage: miss_ratio x mean mechanical access of the
    /// [`disksim::DiskParams::server_15k`] model (~7 ms) — ~0.3 x 7 ms for
    /// OLTP-St, ~0.25 x 7 ms for Synthetic-St. Database: ~1 ms of
    /// transaction processing (a light TPC-C transaction).
    pub fn client_extra_latency(self) -> SimDuration {
        let disk = disksim::DiskParams::server_15k();
        let mean_access = disk.seek_time(disk.cylinders / 3)
            + disk.revolution() / 2
            + SimDuration::from_bytes_at_rate(8192, disk.media_bytes_per_sec())
            + disk.controller_overhead;
        match self {
            Workload::OltpSt => mean_access.mul_f64(0.30),
            Workload::SyntheticSt => mean_access.mul_f64(0.25),
            Workload::OltpDb | Workload::SyntheticDb => SimDuration::from_ms(1),
        }
    }
}

/// The simulated system of Section 5.1 (32 RDRAM chips, 3 PCI-X buses).
pub fn paper_system() -> SystemConfig {
    SystemConfig::default()
}

/// Derives `mu` from an already-run baseline: slowing each of a transfer's
/// `q` requests by `mu * T` adds `q * mu * T` to the client response
/// `R_dma + extra`, so a degradation limit `cp` allows
/// `mu = cp * (R_dma + extra) / (q * T)` (the paper's off-line CP-Limit
/// transformation; see also [`crate::calibrate::mu_for_cp_limit`]).
pub fn mu_from_baseline(
    config: &SystemConfig,
    baseline: &SimResult,
    cp_limit: f64,
    extra: SimDuration,
) -> f64 {
    assert!(baseline.transfers > 0, "baseline completed no transfers");
    let q = baseline.dma_requests as f64 / baseline.transfers as f64;
    let r_ns = baseline.transfer_response.mean_ns() + extra.as_ns_f64();
    let t_ns = config.t_request().as_ns_f64();
    cp_limit * r_ns / (q * t_ns)
}

/// Measured client-perceived degradation of `r` versus `baseline`: the
/// added DMA-path latency relative to the full client response
/// (DMA path + `extra`).
pub fn client_degradation(r: &SimResult, baseline: &SimResult, extra: SimDuration) -> f64 {
    let base_ns = baseline.transfer_response.mean_ns() + extra.as_ns_f64();
    if base_ns == 0.0 {
        0.0
    } else {
        (r.transfer_response.mean_ns() - baseline.transfer_response.mean_ns()) / base_ns
    }
}

// ---------------------------------------------------------------------
// Tables

/// Table 1: the RDRAM power model, formatted.
pub fn table1_text() -> String {
    let m = PowerModel::rdram();
    let mut out = String::from("state/transition      power      time\n");
    for mode in PowerMode::ALL {
        out.push_str(&format!(
            "{:<22}{:>6.0} mW         -\n",
            mode.to_string(),
            m.mode_power_mw(mode)
        ));
    }
    for mode in [PowerMode::Standby, PowerMode::Nap, PowerMode::Powerdown] {
        let d = m.down(mode);
        out.push_str(&format!(
            "active -> {:<12}{:>6.0} mW  {:>8}\n",
            mode.to_string(),
            d.power_mw,
            d.latency.to_string()
        ));
    }
    for mode in [PowerMode::Standby, PowerMode::Nap, PowerMode::Powerdown] {
        let w = m.wake(mode);
        out.push_str(&format!(
            "{:<10}-> active  {:>6.0} mW  {:>8}\n",
            mode.to_string(),
            w.power_mw,
            w.latency.to_string()
        ));
    }
    out
}

/// Table 2: measured characteristics of the four generated traces.
pub fn table2(exp: ExpConfig) -> Vec<(String, TraceStats)> {
    table2_ctx(&SweepCtx::serial(), exp)
}

/// [`table2`] on a sweep context: the traces land in the context's cache,
/// so the figure runs that follow reuse them instead of regenerating.
pub fn table2_ctx(ctx: &SweepCtx, exp: ExpConfig) -> Vec<(String, TraceStats)> {
    Workload::ALL
        .iter()
        .map(|w| {
            let t = w.shared_trace(ctx, exp);
            (w.label().to_string(), t.trace().stats())
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 2

/// Figure 2(a) data: cycles per DMA-memory request at the memory chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2a {
    /// Memory cycles spent serving each request.
    pub serving_cycles: f64,
    /// Memory cycles idle before the next request arrives.
    pub idle_cycles: f64,
    /// Measured single-transfer utilization factor.
    pub measured_uf: f64,
}

/// Reproduces the Figure 2(a) analysis: one 8-KB transfer over one PCI-X
/// bus against one RDRAM chip wastes two-thirds of the active cycles.
pub fn fig2a() -> Fig2a {
    let config = paper_system();
    let cycle = SimDuration::from_cycles(1, 1.6e9);
    let serving = config
        .power_model
        .service_time(config.buses[0].request_bytes);
    let period = config.t_request();
    let trace = Trace::from_events(vec![dma_trace::TraceEvent::Dma(dma_trace::DmaRecord {
        time: simcore::SimTime::ZERO,
        bus: 0,
        page: 0,
        bytes: config.page_bytes,
        direction: iobus::DmaDirection::FromMemory,
        source: iobus::DmaSource::Network,
    })]);
    let r = ServerSimulator::new(config, Scheme::baseline()).run(&trace);
    Fig2a {
        serving_cycles: serving.ratio(cycle),
        idle_cycles: (period - serving).ratio(cycle),
        measured_uf: r.utilization_factor(),
    }
}

/// Figure 2(b): baseline energy breakdowns for the storage and database
/// workloads.
pub fn fig2b(exp: ExpConfig) -> Vec<(String, EnergyBreakdown)> {
    fig2b_ctx(&SweepCtx::serial(), exp)
}

/// [`fig2b`] on a sweep context (the two baselines are the same runs
/// Figures 5–7 memoize).
pub fn fig2b_ctx(ctx: &SweepCtx, exp: ExpConfig) -> Vec<(String, EnergyBreakdown)> {
    let workloads = [Workload::OltpSt, Workload::OltpDb];
    let jobs = workloads
        .iter()
        .map(|w| SimJob::new(paper_system(), Scheme::baseline(), w.shared_trace(ctx, exp)))
        .collect();
    workloads
        .iter()
        .zip(ctx.run_batch(jobs))
        .map(|(w, r)| (w.label().to_string(), r.energy.clone()))
        .collect()
}

/// Figure 2(a) as an ASCII timeline: one transfer, one chip, the 4-serving
/// + 8-idle cycle pattern rendered over the first microsecond.
pub fn fig2a_timeline() -> String {
    use simcore::SimTime;
    let config = paper_system();
    let trace = Trace::from_events(vec![dma_trace::TraceEvent::Dma(dma_trace::DmaRecord {
        time: SimTime::ZERO,
        bus: 0,
        page: 0,
        bytes: config.page_bytes,
        direction: iobus::DmaDirection::FromMemory,
        source: iobus::DmaSource::Network,
    })]);
    let window_end = SimTime::ZERO + SimDuration::from_ns(180);
    let r = ServerSimulator::new(config, Scheme::baseline())
        .with_timeline(SimTime::ZERO, window_end)
        .run(&trace);
    r.timeline.expect("timeline requested").render_active(96)
}

// ---------------------------------------------------------------------
// Figure 3

/// Figure 3 demonstration: four staggered transfers from four buses to one
/// chip, baseline versus DMA-TA.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    /// Utilization factor without alignment.
    pub baseline_uf: f64,
    /// Utilization factor with DMA-TA gathering.
    pub ta_uf: f64,
    /// First requests DMA-TA delayed.
    pub delayed_firsts: u64,
}

/// Reproduces the Figure 3 scenario (four I/O buses, transfers gathered
/// then run in lockstep).
pub fn fig3() -> Fig3 {
    let config = paper_system().with_buses(4, BusConfig::pci_x());
    let mk = |us: u64, bus: usize, page: u64| {
        dma_trace::TraceEvent::Dma(dma_trace::DmaRecord {
            time: simcore::SimTime::ZERO + SimDuration::from_us(us),
            bus,
            page,
            bytes: 8192,
            direction: iobus::DmaDirection::FromMemory,
            source: iobus::DmaSource::Network,
        })
    };
    // Warm-up transfers to a far chip accumulate slack credits (the
    // guarantee account starts empty, so gathering needs earned budget).
    // Then four staggered transfers target chip 0 (pages 0..4 share it
    // under the sequential layout) after it has gone to sleep.
    let mut events: Vec<dma_trace::TraceEvent> = (0..8u64)
        .map(|i| mk(i * 10, (i % 4) as usize, 40_000))
        .collect();
    events.extend([mk(500, 0, 0), mk(502, 1, 1), mk(504, 2, 2), mk(506, 3, 3)]);
    let trace = Trace::from_events(events);
    let baseline = ServerSimulator::new(config.clone(), Scheme::baseline()).run(&trace);
    let ta = ServerSimulator::new(config, Scheme::dma_ta(3.0)).run(&trace);
    Fig3 {
        baseline_uf: baseline.utilization_factor(),
        ta_uf: ta.utilization_factor(),
        delayed_firsts: ta.delayed_firsts,
    }
}

/// Figure 3 as an ASCII timeline: the gathered transfers' lockstep service
/// on the target chip, rendered around the release instant.
pub fn fig3_timeline() -> String {
    use simcore::SimTime;
    let config = paper_system().with_buses(4, BusConfig::pci_x());
    let mk = |us: u64, bus: usize, page: u64| {
        dma_trace::TraceEvent::Dma(dma_trace::DmaRecord {
            time: SimTime::ZERO + SimDuration::from_us(us),
            bus,
            page,
            bytes: 8192,
            direction: iobus::DmaDirection::FromMemory,
            source: iobus::DmaSource::Network,
        })
    };
    let mut events: Vec<dma_trace::TraceEvent> = (0..8u64)
        .map(|i| mk(i * 10, (i % 4) as usize, 40_000))
        .collect();
    events.extend([mk(500, 0, 0), mk(502, 1, 1), mk(504, 2, 2), mk(506, 3, 3)]);
    let trace = Trace::from_events(events);
    let window = (
        SimTime::ZERO + SimDuration::from_us(499),
        SimTime::ZERO + SimDuration::from_us(540),
    );
    let r = ServerSimulator::new(config, Scheme::dma_ta(3.0))
        .with_timeline(window.0, window.1)
        .run(&trace);
    r.timeline.expect("timeline requested").render_active(96)
}

// ---------------------------------------------------------------------
// Figure 4

/// Figure 4: the OLTP-St page-popularity CDF, as `(pages_frac,
/// accesses_frac)` points.
///
/// The CDF only needs the trace, not a simulation, so the workload is
/// generated over a 40x longer window than `exp.duration` (the paper's
/// measured CDF comes from a long production trace; short windows
/// undersample the skew).
pub fn fig4(exp: ExpConfig, points: usize) -> Vec<(f64, f64)> {
    let trace = Workload::OltpSt.generate(exp.duration * 40, exp.seed);
    trace.popularity_cdf().points(points)
}

// ---------------------------------------------------------------------
// Figure 5

/// One point of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Workload name.
    pub workload: String,
    /// CP-Limit (fractional, e.g. 0.10).
    pub cp_limit: f64,
    /// Scheme label.
    pub scheme: String,
    /// Energy savings versus baseline (fractional).
    pub savings: f64,
    /// Measured client-perceived response degradation (fractional).
    pub degradation: f64,
    /// Whether measured degradation stayed within CP-Limit (+measurement
    /// tolerance).
    pub within_limit: bool,
}

/// Figure 5: energy savings versus CP-Limit for DMA-TA and DMA-TA-PL with
/// 2/3/6 groups, over the given workloads.
pub fn fig5(exp: ExpConfig, workloads: &[Workload], cp_limits: &[f64]) -> Vec<Fig5Row> {
    fig5_ctx(&SweepCtx::serial(), exp, workloads, cp_limits)
}

/// [`fig5`] on a sweep context: one memoized baseline per workload (wave
/// one), then every `(workload, CP-Limit, scheme)` point in parallel
/// (wave two).
pub fn fig5_ctx(
    ctx: &SweepCtx,
    exp: ExpConfig,
    workloads: &[Workload],
    cp_limits: &[f64],
) -> Vec<Fig5Row> {
    let config = paper_system();
    let traces: Vec<SharedTrace> = workloads.iter().map(|w| w.shared_trace(ctx, exp)).collect();
    let baselines = ctx.run_batch(
        traces
            .iter()
            .map(|t| SimJob::new(config.clone(), Scheme::baseline(), t.clone()))
            .collect(),
    );
    let mut jobs = Vec::new();
    let mut points = Vec::new();
    for ((wi, &w), trace) in workloads.iter().enumerate().zip(&traces) {
        let extra = w.client_extra_latency();
        for &cp in cp_limits {
            let mu = mu_from_baseline(&config, &baselines[wi], cp, extra);
            for scheme in [
                Scheme::dma_ta(mu),
                Scheme::dma_ta_pl(mu, 2),
                Scheme::dma_ta_pl(mu, 3),
                Scheme::dma_ta_pl(mu, 6),
            ] {
                jobs.push(SimJob::new(config.clone(), scheme, trace.clone()));
                points.push((wi, w, cp, scheme, extra));
            }
        }
    }
    points
        .into_iter()
        .zip(ctx.run_batch(jobs))
        .map(|((wi, w, cp, scheme, extra), r)| {
            let degradation = client_degradation(&r, &baselines[wi], extra);
            Fig5Row {
                workload: w.label().to_string(),
                cp_limit: cp,
                scheme: scheme.label(),
                savings: r.savings_vs(&baselines[wi]),
                degradation,
                within_limit: degradation <= cp + 0.02,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 6

/// Figure 6: energy breakdowns of baseline, DMA-TA, and DMA-TA-PL(2) for
/// OLTP-St at the given CP-Limit (the paper uses 10 %).
pub fn fig6(exp: ExpConfig, cp_limit: f64) -> Vec<(String, EnergyBreakdown)> {
    fig6_ctx(&SweepCtx::serial(), exp, cp_limit)
}

/// [`fig6`] on a sweep context (shares the OLTP-St baseline with Figures
/// 5 and 7).
pub fn fig6_ctx(ctx: &SweepCtx, exp: ExpConfig, cp_limit: f64) -> Vec<(String, EnergyBreakdown)> {
    let config = paper_system();
    let trace = Workload::OltpSt.shared_trace(ctx, exp);
    let extra = Workload::OltpSt.client_extra_latency();
    let baseline = ctx.run(&config, Scheme::baseline(), &trace);
    let mu = mu_from_baseline(&config, &baseline, cp_limit, extra);
    let schemes = ctx.run_batch(vec![
        SimJob::new(config.clone(), Scheme::dma_ta(mu), trace.clone()),
        SimJob::new(config, Scheme::dma_ta_pl(mu, 2), trace),
    ]);
    vec![
        ("baseline".into(), baseline.energy.clone()),
        ("DMA-TA".into(), schemes[0].energy.clone()),
        ("DMA-TA-PL(2)".into(), schemes[1].energy.clone()),
    ]
}

// ---------------------------------------------------------------------
// Figure 7

/// One point of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Row {
    /// CP-Limit.
    pub cp_limit: f64,
    /// Baseline utilization factor (~1/3).
    pub uf_baseline: f64,
    /// DMA-TA utilization factor.
    pub uf_ta: f64,
    /// DMA-TA-PL(2) utilization factor.
    pub uf_tapl: f64,
}

/// Figure 7: utilization factors versus CP-Limit for OLTP-St.
pub fn fig7(exp: ExpConfig, cp_limits: &[f64]) -> Vec<Fig7Row> {
    fig7_ctx(&SweepCtx::serial(), exp, cp_limits)
}

/// [`fig7`] on a sweep context (shares the OLTP-St baseline and, at
/// matching CP-Limits, the DMA-TA / DMA-TA-PL(2) runs with Figure 5).
pub fn fig7_ctx(ctx: &SweepCtx, exp: ExpConfig, cp_limits: &[f64]) -> Vec<Fig7Row> {
    let config = paper_system();
    let trace = Workload::OltpSt.shared_trace(ctx, exp);
    let extra = Workload::OltpSt.client_extra_latency();
    let baseline = ctx.run(&config, Scheme::baseline(), &trace);
    let mut jobs = Vec::new();
    for &cp in cp_limits {
        let mu = mu_from_baseline(&config, &baseline, cp, extra);
        jobs.push(SimJob::new(
            config.clone(),
            Scheme::dma_ta(mu),
            trace.clone(),
        ));
        jobs.push(SimJob::new(
            config.clone(),
            Scheme::dma_ta_pl(mu, 2),
            trace.clone(),
        ));
    }
    let results = ctx.run_batch(jobs);
    cp_limits
        .iter()
        .zip(results.chunks(2))
        .map(|(&cp, pair)| Fig7Row {
            cp_limit: cp,
            uf_baseline: baseline.utilization_factor(),
            uf_ta: pair[0].utilization_factor(),
            uf_tapl: pair[1].utilization_factor(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 8

/// One point of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Row {
    /// DMA transfer arrival rate (per ms).
    pub transfers_per_ms: f64,
    /// DMA-TA savings versus baseline.
    pub savings_ta: f64,
    /// DMA-TA-PL(2) savings versus baseline.
    pub savings_tapl: f64,
}

/// Figure 8: energy savings versus workload intensity (Synthetic-St with
/// varying arrival rate; CP-Limit fixed, paper uses 10 %).
pub fn fig8(exp: ExpConfig, rates: &[f64], cp_limit: f64) -> Vec<Fig8Row> {
    fig8_ctx(&SweepCtx::serial(), exp, rates, cp_limit)
}

/// [`fig8`] on a sweep context: per-rate baselines in wave one, the
/// DMA-TA / DMA-TA-PL(2) pairs in wave two.
pub fn fig8_ctx(ctx: &SweepCtx, exp: ExpConfig, rates: &[f64], cp_limit: f64) -> Vec<Fig8Row> {
    let config = paper_system();
    let extra = Workload::SyntheticSt.client_extra_latency();
    let traces: Vec<SharedTrace> = rates
        .iter()
        .map(|&rate| {
            let gen = SyntheticStorageGen {
                transfers_per_ms: rate,
                ..Default::default()
            };
            ctx.trace(format!("{gen:?}|{:?}|{}", exp.duration, exp.seed), || {
                gen.generate(exp.duration, exp.seed)
            })
        })
        .collect();
    let baselines = ctx.run_batch(
        traces
            .iter()
            .map(|t| SimJob::new(config.clone(), Scheme::baseline(), t.clone()))
            .collect(),
    );
    let mut jobs = Vec::new();
    for (trace, baseline) in traces.iter().zip(&baselines) {
        let mu = mu_from_baseline(&config, baseline, cp_limit, extra);
        jobs.push(SimJob::new(
            config.clone(),
            Scheme::dma_ta(mu),
            trace.clone(),
        ));
        jobs.push(SimJob::new(
            config.clone(),
            Scheme::dma_ta_pl(mu, 2),
            trace.clone(),
        ));
    }
    let results = ctx.run_batch(jobs);
    rates
        .iter()
        .zip(&baselines)
        .zip(results.chunks(2))
        .map(|((&rate, baseline), pair)| Fig8Row {
            transfers_per_ms: rate,
            savings_ta: pair[0].savings_vs(baseline),
            savings_tapl: pair[1].savings_vs(baseline),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 9

/// One point of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Row {
    /// Mean processor accesses per DMA transfer.
    pub proc_per_transfer: f64,
    /// DMA-TA savings versus baseline.
    pub savings_ta: f64,
    /// DMA-TA-PL(2) savings versus baseline.
    pub savings_tapl: f64,
}

/// Figure 9: energy savings versus processor accesses per transfer
/// (Synthetic-Db with injected processor bursts; CP-Limit fixed).
pub fn fig9(exp: ExpConfig, counts: &[f64], cp_limit: f64) -> Vec<Fig9Row> {
    fig9_ctx(&SweepCtx::serial(), exp, counts, cp_limit)
}

/// [`fig9`] on a sweep context: per-intensity baselines in wave one, the
/// DMA-TA / DMA-TA-PL(2) pairs in wave two.
pub fn fig9_ctx(ctx: &SweepCtx, exp: ExpConfig, counts: &[f64], cp_limit: f64) -> Vec<Fig9Row> {
    let config = paper_system();
    let extra = Workload::SyntheticDb.client_extra_latency();
    let traces: Vec<SharedTrace> = counts
        .iter()
        .map(|&n| {
            let gen = SyntheticDbGen::default().with_proc_per_transfer(n);
            ctx.trace(format!("{gen:?}|{:?}|{}", exp.duration, exp.seed), || {
                gen.generate(exp.duration, exp.seed)
            })
        })
        .collect();
    let baselines = ctx.run_batch(
        traces
            .iter()
            .map(|t| SimJob::new(config.clone(), Scheme::baseline(), t.clone()))
            .collect(),
    );
    let mut jobs = Vec::new();
    for (trace, baseline) in traces.iter().zip(&baselines) {
        let mu = mu_from_baseline(&config, baseline, cp_limit, extra);
        jobs.push(SimJob::new(
            config.clone(),
            Scheme::dma_ta(mu),
            trace.clone(),
        ));
        jobs.push(SimJob::new(
            config.clone(),
            Scheme::dma_ta_pl(mu, 2),
            trace.clone(),
        ));
    }
    let results = ctx.run_batch(jobs);
    counts
        .iter()
        .zip(&baselines)
        .zip(results.chunks(2))
        .map(|((&n, baseline), pair)| Fig9Row {
            proc_per_transfer: n,
            savings_ta: pair[0].savings_vs(baseline),
            savings_tapl: pair[1].savings_vs(baseline),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 10

/// One point of Figure 10.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Workload name.
    pub workload: String,
    /// Memory-to-I/O bandwidth ratio.
    pub ratio: f64,
    /// DMA-TA savings versus baseline.
    pub savings_ta: f64,
    /// DMA-TA-PL(2) savings versus baseline.
    pub savings_tapl: f64,
}

/// Figure 10: energy savings versus the ratio between memory and I/O bus
/// bandwidth. Memory stays at 3.2 GB/s while the bus rate sweeps
/// (paper: 0.5, 1.064, 2, 3 GB/s), for OLTP-St and Synthetic-St.
pub fn fig10(exp: ExpConfig, bus_rates: &[f64], cp_limit: f64) -> Vec<Fig10Row> {
    fig10_ctx(&SweepCtx::serial(), exp, bus_rates, cp_limit)
}

/// [`fig10`] on a sweep context: one baseline per `(workload, bus rate)`
/// in wave one, the scheme pairs in wave two.
pub fn fig10_ctx(
    ctx: &SweepCtx,
    exp: ExpConfig,
    bus_rates: &[f64],
    cp_limit: f64,
) -> Vec<Fig10Row> {
    let workloads = [Workload::OltpSt, Workload::SyntheticSt];
    let mut points = Vec::new();
    for &w in &workloads {
        let trace = w.shared_trace(ctx, exp);
        for &rate in bus_rates {
            let config = paper_system().with_buses(3, BusConfig::with_rate(rate));
            points.push((w, rate, config, trace.clone()));
        }
    }
    let baselines = ctx.run_batch(
        points
            .iter()
            .map(|(_, _, config, trace)| {
                SimJob::new(config.clone(), Scheme::baseline(), trace.clone())
            })
            .collect(),
    );
    let mut jobs = Vec::new();
    for ((w, _, config, trace), baseline) in points.iter().zip(&baselines) {
        let mu = mu_from_baseline(config, baseline, cp_limit, w.client_extra_latency());
        jobs.push(SimJob::new(
            config.clone(),
            Scheme::dma_ta(mu),
            trace.clone(),
        ));
        jobs.push(SimJob::new(
            config.clone(),
            Scheme::dma_ta_pl(mu, 2),
            trace.clone(),
        ));
    }
    let results = ctx.run_batch(jobs);
    points
        .iter()
        .zip(&baselines)
        .zip(results.chunks(2))
        .map(|(((w, rate, _, _), baseline), pair)| Fig10Row {
            workload: w.label().to_string(),
            ratio: 3.2e9 / rate,
            savings_ta: pair[0].savings_vs(baseline),
            savings_tapl: pair[1].savings_vs(baseline),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Group-structure ablation

/// One row of the PL group-count ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAblationRow {
    /// Number of PL groups.
    pub groups: usize,
    /// Energy savings versus baseline.
    pub savings: f64,
    /// Page moves performed.
    pub page_moves: u64,
}

/// PL group-count ablation on a scaled system.
///
/// On the paper's full-size chips (4096 frames each) a millisecond-scale
/// trace's hot set fits inside one chip, so the exponential group structure
/// degenerates and K barely matters (see DESIGN.md). This ablation shrinks
/// the chips to 64 frames and flattens the popularity skew (Zipf 0.5) so
/// the hot set spans several chips, recovering the paper's Figure 5 group
/// effect: more groups force strict ordering across more boundaries, and
/// rank fluctuations across them pay increasing migration churn — K = 2
/// migrates least.
pub fn group_ablation(exp: ExpConfig, cp_limit: f64) -> Vec<GroupAblationRow> {
    group_ablation_ctx(&SweepCtx::serial(), exp, cp_limit)
}

/// [`group_ablation`] on a sweep context.
pub fn group_ablation_ctx(ctx: &SweepCtx, exp: ExpConfig, cp_limit: f64) -> Vec<GroupAblationRow> {
    let config = SystemConfig {
        chips: 32,
        power_model: PowerModel::rdram().with_chip_bytes(64 * 8192),
        pages: 1536,
        ..SystemConfig::default()
    };
    let gen = SyntheticStorageGen {
        pages: 1536,
        transfers_per_ms: 200.0,
        zipf_alpha: 0.5,
        ..Default::default()
    };
    let trace = ctx.trace(format!("{gen:?}|{:?}|{}", exp.duration, exp.seed), || {
        gen.generate(exp.duration, exp.seed)
    });
    let baseline = ctx.run(&config, Scheme::baseline(), &trace);
    let extra = Workload::SyntheticSt.client_extra_latency();
    let mu = mu_from_baseline(&config, &baseline, cp_limit, extra);
    let groups = [2usize, 3, 6];
    let results = ctx.run_batch(
        groups
            .iter()
            .map(|&g| SimJob::new(config.clone(), Scheme::dma_ta_pl(mu, g), trace.clone()))
            .collect(),
    );
    groups
        .iter()
        .zip(results)
        .map(|(&groups, r)| GroupAblationRow {
            groups,
            savings: r.savings_vs(&baseline),
            page_moves: r.page_moves,
        })
        .collect()
}

// ---------------------------------------------------------------------
// TPC-H extension (paper future work)

/// One row of the TPC-H scan experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchRow {
    /// Scheme label.
    pub scheme: String,
    /// Energy savings versus baseline.
    pub savings: f64,
    /// Pages migrated.
    pub page_moves: u64,
    /// Utilization factor.
    pub uf: f64,
}

/// The paper's future-work workload: TPC-H-style concurrent sequential
/// scans. Popularity is nearly uniform, so PL has little to concentrate —
/// its migrations should stay near zero (the cost-benefit gate and the
/// sparse per-interval counts see no stable hot set) while DMA-TA still
/// aligns scans that collide on a chip.
pub fn tpch(exp: ExpConfig, cp_limit: f64) -> Vec<TpchRow> {
    tpch_ctx(&SweepCtx::serial(), exp, cp_limit)
}

/// [`tpch`] on a sweep context.
pub fn tpch_ctx(ctx: &SweepCtx, exp: ExpConfig, cp_limit: f64) -> Vec<TpchRow> {
    let config = paper_system();
    let gen = TpchScanGen::default();
    let trace = ctx.trace(format!("{gen:?}|{:?}|{}", exp.duration, exp.seed), || {
        gen.generate(exp.duration, exp.seed)
    });
    let baseline = ctx.run(&config, Scheme::baseline(), &trace);
    // Scan service is memory-resident; client response ~ the transfer path.
    let mu = mu_from_baseline(&config, &baseline, cp_limit, SimDuration::from_ms(1));
    let schemes = [Scheme::dma_ta(mu), Scheme::dma_ta_pl(mu, 2)];
    let results = ctx.run_batch(
        schemes
            .iter()
            .map(|&s| SimJob::new(config.clone(), s, trace.clone()))
            .collect(),
    );
    schemes
        .iter()
        .zip(results)
        .map(|(scheme, r)| TpchRow {
            scheme: scheme.label(),
            savings: r.savings_vs(&baseline),
            page_moves: r.page_moves,
            uf: r.utilization_factor(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Observability

/// An observability-instrumented run (see
/// [`crate::ServerSimulator::with_observability`]): metrics registry,
/// structured event sink, and span timers all enabled.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// Workload label.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// The `mu` budget derived from the baseline at the CP-Limit.
    pub mu: f64,
    /// Reference request time the guarantee is measured against.
    pub t_ref: SimDuration,
    /// The instrumented result; `result.obs` is always `Some`.
    pub result: SimResult,
}

/// Runs the paper's OLTP-St workload under DMA-TA-PL(2) with full
/// observability. The scheme exercises every event family — power-mode
/// transitions, TA gather/release decisions, the slack ledger, and PL page
/// migrations — so its export is the canonical audit-trail sample.
pub fn observed_run(exp: ExpConfig, cp_limit: f64, event_capacity: usize) -> ObservedRun {
    observed_run_ctx(&SweepCtx::serial(), exp, cp_limit, event_capacity)
}

/// [`observed_run`] on a sweep context. The baseline and trace come from
/// the shared caches; the instrumented run itself stays outside the memo
/// (its observability state makes it unlike the plain figure runs).
pub fn observed_run_ctx(
    ctx: &SweepCtx,
    exp: ExpConfig,
    cp_limit: f64,
    event_capacity: usize,
) -> ObservedRun {
    let config = paper_system();
    let trace = Workload::OltpSt.shared_trace(ctx, exp);
    let extra = Workload::OltpSt.client_extra_latency();
    let baseline = ctx.run(&config, Scheme::baseline(), &trace);
    let mu = mu_from_baseline(&config, &baseline, cp_limit, extra);
    let mut sim = ServerSimulator::new(config.clone(), Scheme::dma_ta_pl(mu, 2))
        .with_observability(event_capacity);
    if let Some(live) = ctx.live() {
        sim = sim.with_live(std::sync::Arc::clone(live));
    }
    let result = sim.run(trace.trace());
    ObservedRun {
        workload: Workload::OltpSt.label().to_string(),
        scheme: result.scheme.clone(),
        mu,
        t_ref: config.t_request(),
        result,
    }
}

// ---------------------------------------------------------------------
// Causal tracing and energy-waste attribution

/// One causally-traced run (see
/// [`crate::ServerSimulator::with_tracing`]): `result.trace` is always
/// `Some` and carries the transfer span forest.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// Workload label.
    pub workload: String,
    /// The traced result.
    pub result: SimResult,
}

impl TracedRun {
    /// The run's energy-waste attribution (run-level and per-chip
    /// buckets; see [`crate::tracing::RunAttribution`]).
    pub fn attribution(&self) -> crate::tracing::RunAttribution {
        crate::tracing::RunAttribution::from_result(&self.workload, &self.result)
    }
}

/// Runs the Figure-2 workloads (OLTP-St, OLTP-Db) under the baseline
/// scheme, plus OLTP-St under DMA-TA-PL(2) at the given CP-Limit so
/// gather/release causality shows up in the trace, all with
/// transfer-level tracing into a `capacity`-record span ring.
///
/// Baselines and traces come from the context's shared caches; the
/// traced runs themselves stay outside the memo (like
/// [`observed_run_ctx`], their instrumentation makes them unlike the
/// plain figure runs), so the exported trace is byte-identical for any
/// worker-thread count.
pub fn traced_runs_ctx(
    ctx: &SweepCtx,
    exp: ExpConfig,
    cp_limit: f64,
    capacity: usize,
) -> Vec<TracedRun> {
    traced_runs_spill_ctx(ctx, exp, cp_limit, capacity, None)
}

/// [`traced_runs_ctx`] with bounded-memory spill armed on the final
/// DMA-TA-PL(2) run (the one whose trace `--trace-out` exports): records
/// displaced from the `capacity`-record ring stream to `spill` instead
/// of being dropped. The baseline-traced runs keep the plain ring — only
/// the exported trace needs the full record stream.
pub fn traced_runs_spill_ctx(
    ctx: &SweepCtx,
    exp: ExpConfig,
    cp_limit: f64,
    capacity: usize,
    spill: Option<SpillSink>,
) -> Vec<TracedRun> {
    let config = paper_system();
    let mut runs = Vec::new();
    for w in [Workload::OltpSt, Workload::OltpDb] {
        let trace = w.shared_trace(ctx, exp);
        let mut sim =
            ServerSimulator::new(config.clone(), Scheme::baseline()).with_tracing(capacity);
        if let Some(live) = ctx.live() {
            sim = sim.with_live(std::sync::Arc::clone(live));
        }
        let result = sim.run(trace.trace());
        runs.push(TracedRun {
            workload: w.label().to_string(),
            result,
        });
    }
    let trace = Workload::OltpSt.shared_trace(ctx, exp);
    let extra = Workload::OltpSt.client_extra_latency();
    let baseline = ctx.run(&config, Scheme::baseline(), &trace);
    let mu = mu_from_baseline(&config, &baseline, cp_limit, extra);
    let mut sim =
        ServerSimulator::new(config.clone(), Scheme::dma_ta_pl(mu, 2)).with_tracing(capacity);
    if let Some(live) = ctx.live() {
        sim = sim.with_live(std::sync::Arc::clone(live));
    }
    if let Some(sink) = spill {
        sim = sim.with_trace_spill(sink);
    }
    let result = sim.run(trace.trace());
    runs.push(TracedRun {
        workload: Workload::OltpSt.label().to_string(),
        result,
    });
    runs
}

/// A system sized so the baseline's active-idle-during-DMA share lands
/// in the paper's measured 48–51 % band (Figure 2(b)): 4 chips holding
/// an 8192-page working set. The default 32-chip system spreads the same
/// load so thin that per-chip DMA inter-arrival gaps exceed the
/// power-down threshold, capping the share near 35 %; concentrating the
/// working set reproduces the utilization the paper measured.
pub fn fig2b_paper_util_config() -> SystemConfig {
    SystemConfig {
        chips: 4,
        pages: 8192,
        ..SystemConfig::default()
    }
}

/// The OLTP-St trace matching [`fig2b_paper_util_config`]: the client
/// request rate is scaled 1.75x (45 -> 78.75/ms) to hold per-chip load
/// at the paper's operating point on the smaller chip count.
pub fn fig2b_paper_util_trace(exp: ExpConfig) -> Trace {
    OltpStGen {
        client_req_per_ms: 78.75,
        pages: 8192,
        ..OltpStGen::default()
    }
    .generate(exp.duration, exp.seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempower::EnergyCategory;

    #[test]
    fn fig2a_matches_paper_analysis() {
        let f = fig2a();
        assert!((f.serving_cycles - 4.0).abs() < 0.1, "{f:?}");
        assert!((f.idle_cycles - 8.0).abs() < 0.2, "{f:?}");
        assert!((f.measured_uf - 1.0 / 3.0).abs() < 0.02, "{f:?}");
    }

    #[test]
    fn fig3_ta_aligns_staggered_transfers() {
        let f = fig3();
        assert!(f.delayed_firsts >= 2, "{f:?}");
        assert!(f.ta_uf > f.baseline_uf + 0.05, "{f:?}");
    }

    #[test]
    fn table1_lists_all_states() {
        let t = table1_text();
        for s in ["active", "standby", "nap", "powerdown", "300", "6us"] {
            assert!(t.contains(s), "missing {s} in:\n{t}");
        }
    }

    #[test]
    fn table2_covers_all_workloads() {
        let rows = table2(ExpConfig::quick());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|(_, s)| s.dma_transfers() > 0));
    }

    #[test]
    fn fig2b_idle_dma_dominates_threshold() {
        let rows = fig2b(ExpConfig::quick());
        for (name, e) in rows {
            let idle = e.fraction(EnergyCategory::ActiveIdleDma);
            let threshold = e.fraction(EnergyCategory::ActiveIdleThreshold);
            assert!(
                idle > threshold,
                "{name}: idle {idle} vs threshold {threshold}"
            );
        }
    }

    #[test]
    fn fig5_smoke_produces_expected_rows() {
        let rows = fig5(ExpConfig::quick(), &[Workload::SyntheticSt], &[0.10]);
        assert_eq!(rows.len(), 4);
        let ta = rows.iter().find(|r| r.scheme == "DMA-TA").unwrap();
        assert!(ta.savings > -0.05, "TA made things much worse: {ta:?}");
    }

    #[test]
    fn group_ablation_reports_rows_with_churn_ordering() {
        let rows = group_ablation(
            ExpConfig {
                duration: SimDuration::from_ms(20),
                seed: 42,
            },
            0.10,
        );
        assert_eq!(rows.len(), 3);
        // Strict ordering across more group boundaries costs more moves.
        assert!(
            rows[2].page_moves > rows[0].page_moves,
            "K=6 moves {} <= K=2 moves {}",
            rows[2].page_moves,
            rows[0].page_moves
        );
    }

    #[test]
    fn tpch_runs_and_pl_migrates_little() {
        let rows = tpch(ExpConfig::quick(), 0.10);
        assert_eq!(rows.len(), 2);
        let tapl = rows.iter().find(|r| r.scheme.contains("PL")).unwrap();
        // Uniform scans give PL no stable hot set to concentrate.
        assert!(
            tapl.page_moves < 500,
            "PL churned {} moves",
            tapl.page_moves
        );
    }

    #[test]
    fn fig4_cdf_is_monotone() {
        let pts = fig4(ExpConfig::quick(), 10);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        assert!((pts[10].1 - 1.0).abs() < 1e-9);
    }
}
