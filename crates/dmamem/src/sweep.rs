//! The parallel sweep engine: memoized simulation runs over shared traces.
//!
//! Every figure of the paper's evaluation is a matrix of independent
//! [`ServerSimulator::run`] calls, and the matrix is highly redundant: the
//! same baseline configuration is re-simulated for nearly every row, and
//! the same synthetic trace is regenerated per point. [`SweepCtx`] removes
//! both redundancies and runs what remains in parallel:
//!
//! * **Shared traces** — [`SweepCtx::trace`] caches generated traces as
//!   [`Arc<Trace>`] under a caller-supplied key, so every scheme run over
//!   a workload reads one in-memory copy.
//! * **Memoized runs** — results are cached under an injective key built
//!   from the full `(SystemConfig, Scheme, trace)` tuple (`Debug`-derived;
//!   Rust's shortest-roundtrip float formatting makes it collision-free),
//!   so a baseline shared by six CP-Limit points executes once.
//! * **Parallel batches** — [`SweepCtx::run_batch`] executes the
//!   non-memoized jobs on a [`simcore::par`] work-stealing pool and
//!   returns results in job order.
//!
//! Determinism: the simulator itself is deterministic, batch results come
//! back in input order, and memoization only ever substitutes a result
//! for an identical `(config, scheme, trace)` run — so figure outputs are
//! **bit-identical** at any thread count, with memoization on or off.
//! `crates/dmamem/tests/sweep_determinism.rs` property-tests exactly that.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dma_trace::Trace;
use simcore::obs::LiveState;
use simcore::par;
use simcore::prof::{EngineProfile, Phase};

use crate::config::{Scheme, SystemConfig};
use crate::metrics::SimResult;
use crate::system::ServerSimulator;

// The engine moves these across worker threads; keep the requirement
// visible at compile time rather than deep inside a closure error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimResult>();
    assert_send_sync::<Trace>();
    assert_send_sync::<SystemConfig>();
    assert_send_sync::<Scheme>();
};

/// A generated trace shared across sweep jobs: an [`Arc<Trace>`] plus the
/// cache key identifying how it was generated.
#[derive(Debug, Clone)]
pub struct SharedTrace {
    key: Arc<str>,
    trace: Arc<Trace>,
}

impl SharedTrace {
    /// Wraps an already-built trace under an explicit identity key.
    ///
    /// The key must uniquely describe the trace's contents (generator
    /// parameters, duration, seed); two different traces under one key
    /// would alias in the memo table.
    pub fn new(key: impl Into<String>, trace: Trace) -> Self {
        SharedTrace {
            key: Arc::from(key.into()),
            trace: Arc::new(trace),
        }
    }

    /// The identity key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The shared trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

/// One sweep job: a full simulation of `scheme` on `config` over `trace`.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// System configuration for the run.
    pub config: SystemConfig,
    /// Scheme under evaluation.
    pub scheme: Scheme,
    /// The (shared) input trace.
    pub trace: SharedTrace,
}

impl SimJob {
    /// Creates a job.
    pub fn new(config: SystemConfig, scheme: Scheme, trace: SharedTrace) -> Self {
        SimJob {
            config,
            scheme,
            trace,
        }
    }

    /// The memoization key: injective over `(config, scheme, trace key)`.
    ///
    /// Built from `Debug` output; Rust formats floats as the shortest
    /// string that round-trips, so distinct configurations always produce
    /// distinct keys (property-tested in this module and in
    /// `tests/sweep_determinism.rs`).
    pub fn memo_key(&self) -> String {
        // \u{1} cannot appear in Debug output of these plain data types,
        // so the three parts cannot bleed into each other.
        format!(
            "{:?}\u{1}{:?}\u{1}{}",
            self.config, self.scheme, self.trace.key
        )
    }
}

/// Memoization statistics of a [`SweepCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Jobs answered from the result cache (or deduplicated in-batch).
    pub hits: u64,
    /// Jobs that executed a simulation.
    pub misses: u64,
    /// Traces served from the trace cache.
    pub trace_hits: u64,
    /// Traces generated.
    pub trace_misses: u64,
}

/// Aggregated engine self-profile across every simulation a [`SweepCtx`]
/// actually executed (memo hits do not re-run the engine, so they do not
/// re-count). All fields except `phase_ns` are deterministic: sums and
/// maxima of per-run deterministic counters commute, so totals are
/// bit-identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfTotals {
    /// Simulations executed.
    pub sims: u64,
    /// Simulations that ran with wall-clock phase timing armed.
    pub timed_sims: u64,
    /// Events dispatched across all runs.
    pub events: u64,
    /// Calendar heap pushes across all runs.
    pub heap_pushes: u64,
    /// Calendar heap pops across all runs.
    pub heap_pops: u64,
    /// Max calendar depth over all runs.
    pub max_heap_depth: u64,
    /// DMA transfers allocated across all runs.
    pub transfers: u64,
    /// Chip-level DMA-memory requests allocated across all runs.
    pub requests: u64,
    /// Per-phase call counts, indexed in [`Phase::ALL`] order.
    pub phase_calls: [u64; 4],
    /// Per-phase wall-clock ns (zero unless profiling was armed;
    /// host-dependent — never gate on these).
    pub phase_ns: [u64; 4],
}

impl ProfTotals {
    /// The counter growth since an `earlier` snapshot of the same
    /// context. Monotonic counters are differenced; `max_heap_depth` is
    /// kept from `self` (a lifetime max cannot be differenced — use
    /// [`SweepCtx::take_window_max_depth`] for per-window maxima).
    pub fn since(&self, earlier: &ProfTotals) -> ProfTotals {
        let sub4 = |a: [u64; 4], b: [u64; 4]| [a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]];
        ProfTotals {
            sims: self.sims - earlier.sims,
            timed_sims: self.timed_sims - earlier.timed_sims,
            events: self.events - earlier.events,
            heap_pushes: self.heap_pushes - earlier.heap_pushes,
            heap_pops: self.heap_pops - earlier.heap_pops,
            max_heap_depth: self.max_heap_depth,
            transfers: self.transfers - earlier.transfers,
            requests: self.requests - earlier.requests,
            phase_calls: sub4(self.phase_calls, earlier.phase_calls),
            phase_ns: sub4(self.phase_ns, earlier.phase_ns),
        }
    }
}

/// Atomic accumulator behind [`SweepCtx::prof_totals`]: every executed
/// simulation folds its [`EngineProfile`] in with commutative ops
/// (adds and maxes), so the totals are order-independent.
#[derive(Debug, Default)]
struct ProfAccum {
    sims: AtomicU64,
    timed_sims: AtomicU64,
    events: AtomicU64,
    heap_pushes: AtomicU64,
    heap_pops: AtomicU64,
    depth_max: AtomicU64,
    depth_window_max: AtomicU64,
    transfers: AtomicU64,
    requests: AtomicU64,
    phase_calls: [AtomicU64; 4],
    phase_ns: [AtomicU64; 4],
}

impl ProfAccum {
    fn record(&self, p: &EngineProfile) {
        self.sims.fetch_add(1, Ordering::Relaxed);
        self.timed_sims.fetch_add(p.timed as u64, Ordering::Relaxed);
        self.events.fetch_add(p.events, Ordering::Relaxed);
        self.heap_pushes.fetch_add(p.heap_pushes, Ordering::Relaxed);
        self.heap_pops.fetch_add(p.heap_pops, Ordering::Relaxed);
        self.depth_max
            .fetch_max(p.max_heap_depth, Ordering::Relaxed);
        self.depth_window_max
            .fetch_max(p.max_heap_depth, Ordering::Relaxed);
        self.transfers.fetch_add(p.transfers, Ordering::Relaxed);
        self.requests.fetch_add(p.requests, Ordering::Relaxed);
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let stat = p.phases.get(*phase);
            self.phase_calls[i].fetch_add(stat.calls, Ordering::Relaxed);
            self.phase_ns[i].fetch_add(stat.ns, Ordering::Relaxed);
        }
    }

    fn totals(&self) -> ProfTotals {
        let load4 = |a: &[AtomicU64; 4]| {
            [
                a[0].load(Ordering::Relaxed),
                a[1].load(Ordering::Relaxed),
                a[2].load(Ordering::Relaxed),
                a[3].load(Ordering::Relaxed),
            ]
        };
        ProfTotals {
            sims: self.sims.load(Ordering::Relaxed),
            timed_sims: self.timed_sims.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            heap_pushes: self.heap_pushes.load(Ordering::Relaxed),
            heap_pops: self.heap_pops.load(Ordering::Relaxed),
            max_heap_depth: self.depth_max.load(Ordering::Relaxed),
            transfers: self.transfers.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            phase_calls: load4(&self.phase_calls),
            phase_ns: load4(&self.phase_ns),
        }
    }
}

/// The sweep engine: a thread pool plus result and trace caches.
///
/// # Example
///
/// ```
/// use dmamem::sweep::{SimJob, SweepCtx};
/// use dmamem::{Scheme, SystemConfig};
/// use dma_trace::TraceGen;
/// use simcore::SimDuration;
///
/// let ctx = SweepCtx::new(2);
/// let trace = ctx.trace("demo", || {
///     dma_trace::SyntheticStorageGen::default().generate(SimDuration::from_us(200), 7)
/// });
/// let jobs = vec![
///     SimJob::new(SystemConfig::default(), Scheme::baseline(), trace.clone()),
///     SimJob::new(SystemConfig::default(), Scheme::dma_ta(0.5), trace.clone()),
///     // Duplicate of the first job: memoized, simulated only once.
///     SimJob::new(SystemConfig::default(), Scheme::baseline(), trace),
/// ];
/// let results = ctx.run_batch(jobs);
/// assert_eq!(results[0].energy, results[2].energy);
/// assert_eq!(ctx.memo_stats().misses, 2);
/// ```
#[derive(Debug)]
pub struct SweepCtx {
    threads: usize,
    memoize: bool,
    profiling: bool,
    live: Option<Arc<LiveState>>,
    prof: ProfAccum,
    // simlint::allow(nondet-iter, "memo cache: results are read back per key, never iterated; order cannot reach sim output")
    memo: Mutex<HashMap<Arc<str>, Arc<SimResult>>>,
    // simlint::allow(nondet-iter, "trace cache: keyed lookups only, never iterated; order cannot reach sim output")
    traces: Mutex<HashMap<Arc<str>, SharedTrace>>,
    hits: AtomicU64,
    misses: AtomicU64,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
}

impl SweepCtx {
    /// Creates a sweep context running jobs on up to `threads` workers
    /// (`0` = all available cores), with memoization enabled.
    pub fn new(threads: usize) -> Self {
        SweepCtx {
            threads: par::resolve_threads(threads),
            memoize: true,
            profiling: false,
            live: None,
            prof: ProfAccum::default(),
            // simlint::allow(nondet-iter, "memo cache construction; see field comment — lookups only")
            memo: Mutex::new(HashMap::new()),
            // simlint::allow(nondet-iter, "trace cache construction; see field comment — lookups only")
            traces: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            trace_hits: AtomicU64::new(0),
            trace_misses: AtomicU64::new(0),
        }
    }

    /// A single-threaded context — the drop-in replacement for the old
    /// serial figure loops.
    pub fn serial() -> Self {
        SweepCtx::new(1)
    }

    /// Enables or disables result memoization (traces stay cached either
    /// way). Exists so tests can prove memoization does not change
    /// results; sweeps want it on.
    pub fn with_memoize(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Arms wall-clock phase timers on every simulation this context
    /// executes (see [`ServerSimulator::with_profiling`]). Deterministic
    /// [`ProfTotals`] counters accumulate either way; this only adds the
    /// host-dependent `phase_ns` totals. Results stay bit-identical.
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Attaches shared live-telemetry state: every batch that actually
    /// simulates becomes a wave in [`LiveState`], every executed job
    /// bumps the done-count and heartbeat, the `dmamem.sweep.*` progress
    /// counters mirror into the live `/metrics` snapshot, and every
    /// simulator gets the state for its sim-clock watermark. Simulated
    /// results are byte-identical with or without this — progress flows
    /// one way, out of the sweep.
    pub fn with_live(mut self, live: Arc<LiveState>) -> Self {
        self.live = Some(live);
        self
    }

    /// The attached live-telemetry state, if any.
    pub fn live(&self) -> Option<&Arc<LiveState>> {
        self.live.as_ref()
    }

    /// Aggregated engine self-profile over every simulation executed so
    /// far (memo hits excluded — they ran no engine).
    pub fn prof_totals(&self) -> ProfTotals {
        self.prof.totals()
    }

    /// Returns the max calendar depth seen since the last call and
    /// resets the window — lets a figure harness attribute heap depth
    /// per figure while [`ProfTotals::max_heap_depth`] stays lifetime.
    pub fn take_window_max_depth(&self) -> u64 {
        self.prof.depth_window_max.swap(0, Ordering::Relaxed)
    }

    /// Runs one job's simulator with this context's profiling setting and
    /// folds the run's profile into the accumulator.
    fn simulate(&self, job: SimJob) -> Arc<SimResult> {
        let mut sim = ServerSimulator::new(job.config, job.scheme);
        if self.profiling {
            sim = sim.with_profiling();
        }
        if let Some(live) = &self.live {
            sim = sim.with_live(Arc::clone(live));
        }
        let r = Arc::new(sim.run(job.trace.trace()));
        self.prof.record(&r.profile);
        if let Some(live) = &self.live {
            live.job_done();
            live.add_engine_events(r.profile.events);
            let (wave, done, total) = live.progress();
            live.counter_set("dmamem.sweep.wave", wave);
            live.counter_set("dmamem.sweep.jobs_done", done);
            live.counter_set("dmamem.sweep.jobs_total", total);
        }
        r
    }

    /// Worker threads in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Memoization statistics so far.
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
        }
    }

    /// Returns the trace cached under `key`, generating it with `gen` on
    /// first use. The key must uniquely describe the generator, duration,
    /// and seed (see [`SharedTrace::new`]).
    pub fn trace(&self, key: impl Into<String>, gen: impl FnOnce() -> Trace) -> SharedTrace {
        let key: Arc<str> = Arc::from(key.into());
        // simlint::allow(panic-path, "lock poisoning means a sibling sweep thread already panicked; propagating the abort is the only sound continuation")
        let mut traces = self.traces.lock().expect("trace cache lock poisoned");
        if let Some(t) = traces.get(&key) {
            self.trace_hits.fetch_add(1, Ordering::Relaxed);
            return t.clone();
        }
        self.trace_misses.fetch_add(1, Ordering::Relaxed);
        let shared = SharedTrace {
            key: Arc::clone(&key),
            trace: Arc::new(gen()),
        };
        traces.insert(key, shared.clone());
        shared
    }

    /// Runs one job (memoized). Equivalent to a one-job [`run_batch`].
    pub fn run(
        &self,
        config: &SystemConfig,
        scheme: Scheme,
        trace: &SharedTrace,
    ) -> Arc<SimResult> {
        self.run_batch(vec![SimJob::new(config.clone(), scheme, trace.clone())])
            .pop()
            // simlint::allow(panic-path, "run_batch returns exactly one result per job by construction; a miscount is a logic bug, not a runtime input")
            .expect("one job in, one result out")
    }

    /// Runs a batch of jobs, in parallel, and returns their results in
    /// job order.
    ///
    /// With memoization on, jobs whose key already has a cached result —
    /// or that repeat an earlier job in this same batch — do not
    /// simulate; everything else runs on the work-stealing pool.
    pub fn run_batch(&self, jobs: Vec<SimJob>) -> Vec<Arc<SimResult>> {
        if !self.memoize {
            self.misses.fetch_add(jobs.len() as u64, Ordering::Relaxed);
            if let Some(live) = &self.live {
                if !jobs.is_empty() {
                    live.begin_wave(jobs.len() as u64);
                }
            }
            return par::map(self.threads, jobs, |job| self.simulate(job));
        }

        let keys: Vec<Arc<str>> = jobs.iter().map(|j| Arc::from(j.memo_key())).collect();
        // First occurrence of each un-cached key becomes a pending run.
        let mut pending: Vec<(Arc<str>, SimJob)> = Vec::new();
        {
            // simlint::allow(panic-path, "lock poisoning means a sibling sweep thread already panicked; propagating the abort is the only sound continuation")
            let memo = self.memo.lock().expect("memo cache lock poisoned");
            // simlint::allow(nondet-iter, "first-occurrence dedup set: membership tests only, never iterated")
            let mut claimed: HashMap<&str, ()> = HashMap::new();
            for (job, key) in jobs.iter().zip(&keys) {
                if memo.contains_key(key) || claimed.contains_key(key.as_ref()) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    claimed.insert(key, ());
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    pending.push((Arc::clone(key), job.clone()));
                }
            }
        }
        if let Some(live) = &self.live {
            // Only batches that actually simulate count as waves; fully
            // memoized batches finish instantly and would skew progress.
            if !pending.is_empty() {
                live.begin_wave(pending.len() as u64);
            }
        }
        let fresh = par::map(self.threads, pending, |(key, job)| {
            (key, self.simulate(job))
        });
        // simlint::allow(panic-path, "lock poisoning means a sibling sweep thread already panicked; propagating the abort is the only sound continuation")
        let mut memo = self.memo.lock().expect("memo cache lock poisoned");
        for (key, r) in fresh {
            memo.insert(key, r);
        }
        keys.iter()
            // simlint::allow(panic-path, "every key was either memo-cached or claimed as pending and inserted above; absence is a logic bug worth aborting on")
            .map(|k| Arc::clone(memo.get(k).expect("every batch key resolved")))
            .collect()
    }
}

impl Default for SweepCtx {
    fn default() -> Self {
        SweepCtx::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_trace::TraceGen;
    use simcore::SimDuration;

    fn tiny_trace(ctx: &SweepCtx, seed: u64) -> SharedTrace {
        ctx.trace(format!("tiny|{seed}"), || {
            dma_trace::SyntheticStorageGen {
                pages: 4096,
                ..Default::default()
            }
            .generate(SimDuration::from_us(300), seed)
        })
    }

    fn small_config() -> SystemConfig {
        SystemConfig {
            pages: 4096,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn duplicate_jobs_simulate_once_and_share_results() {
        let ctx = SweepCtx::new(2);
        let trace = tiny_trace(&ctx, 5);
        let jobs: Vec<SimJob> = (0..6)
            .map(|_| SimJob::new(small_config(), Scheme::baseline(), trace.clone()))
            .collect();
        let results = ctx.run_batch(jobs);
        assert_eq!(results.len(), 6);
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r), "memo must share the Arc");
        }
        let stats = ctx.memo_stats();
        assert_eq!((stats.hits, stats.misses), (5, 1));
    }

    #[test]
    fn memo_persists_across_batches() {
        let ctx = SweepCtx::serial();
        let trace = tiny_trace(&ctx, 5);
        let a = ctx.run(&small_config(), Scheme::baseline(), &trace);
        let b = ctx.run(&small_config(), Scheme::baseline(), &trace);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.memo_stats().misses, 1);
    }

    #[test]
    fn trace_cache_generates_once_per_key() {
        let ctx = SweepCtx::serial();
        let a = tiny_trace(&ctx, 5);
        let b = tiny_trace(&ctx, 5);
        let c = tiny_trace(&ctx, 6);
        assert!(Arc::ptr_eq(&a.trace, &b.trace));
        assert!(!Arc::ptr_eq(&a.trace, &c.trace));
        let stats = ctx.memo_stats();
        assert_eq!((stats.trace_hits, stats.trace_misses), (1, 2));
    }

    #[test]
    fn memo_keys_distinguish_every_tuple_part() {
        let ctx = SweepCtx::serial();
        let trace = tiny_trace(&ctx, 5);
        let other_trace = tiny_trace(&ctx, 6);
        let base = SimJob::new(small_config(), Scheme::baseline(), trace.clone());
        let variants = [
            SimJob::new(
                SystemConfig {
                    chips: 16,
                    pages: 4096,
                    ..SystemConfig::default()
                },
                Scheme::baseline(),
                trace.clone(),
            ),
            SimJob::new(small_config(), Scheme::dma_ta(0.0), trace.clone()),
            SimJob::new(small_config(), Scheme::dma_ta(0.1), trace.clone()),
            // Floats that print alike under naive rounding must not
            // collide: shortest-roundtrip Debug keeps them distinct.
            SimJob::new(small_config(), Scheme::dma_ta(0.1 + 1e-12), trace.clone()),
            SimJob::new(small_config(), Scheme::dma_ta_pl(0.1, 2), trace.clone()),
            SimJob::new(small_config(), Scheme::dma_ta_pl(0.1, 3), trace),
            SimJob::new(small_config(), Scheme::baseline(), other_trace),
        ];
        let base_key = base.memo_key();
        let mut seen = std::collections::HashSet::new();
        seen.insert(base_key.clone());
        for v in &variants {
            let k = v.memo_key();
            assert_ne!(k, base_key);
            assert!(seen.insert(k), "memo key collision for {v:?}");
        }
    }

    #[test]
    fn memoize_off_still_returns_identical_results() {
        let on = SweepCtx::new(2);
        let off = SweepCtx::new(2).with_memoize(false);
        let jobs = |ctx: &SweepCtx| {
            let trace = tiny_trace(ctx, 9);
            vec![
                SimJob::new(small_config(), Scheme::baseline(), trace.clone()),
                SimJob::new(small_config(), Scheme::baseline(), trace.clone()),
                SimJob::new(small_config(), Scheme::dma_ta(0.5), trace),
            ]
        };
        let a = on.run_batch(jobs(&on));
        let b = off.run_batch(jobs(&off));
        assert_eq!(off.memo_stats().hits, 0);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.energy, y.energy);
            assert_eq!(x.dma_requests, y.dma_requests);
            assert_eq!(x.transfers, y.transfers);
        }
    }

    #[test]
    fn prof_totals_accumulate_and_window_resets() {
        let ctx = SweepCtx::new(2);
        let trace = tiny_trace(&ctx, 5);
        assert_eq!(ctx.prof_totals(), ProfTotals::default());
        let _ = ctx.run(&small_config(), Scheme::baseline(), &trace);
        let t = ctx.prof_totals();
        assert_eq!(t.sims, 1);
        assert!(t.events > 0 && t.heap_pushes >= t.heap_pops);
        assert!(t.max_heap_depth > 0);
        assert_eq!(t.phase_ns, [0; 4], "profiling off: no wall-clock ns");
        // Loop phases dispatch every event; the stats phase runs once per sim.
        assert_eq!(t.phase_calls.iter().sum::<u64>(), t.events + t.sims);
        assert_eq!(ctx.take_window_max_depth(), t.max_heap_depth);
        assert_eq!(ctx.take_window_max_depth(), 0, "window resets on take");
        // A memo hit runs no engine, so nothing new accumulates.
        let _ = ctx.run(&small_config(), Scheme::baseline(), &trace);
        let d = ctx.prof_totals().since(&t);
        assert_eq!((d.sims, d.events, d.heap_pushes), (0, 0, 0));
    }

    #[test]
    fn profiling_arms_wall_clock_without_changing_results() {
        let plain = SweepCtx::serial();
        let prof = SweepCtx::serial().with_profiling(true);
        let a = {
            let tr = tiny_trace(&plain, 7);
            plain.run(&small_config(), Scheme::dma_ta(0.5), &tr)
        };
        let b = {
            let tr = tiny_trace(&prof, 7);
            prof.run(&small_config(), Scheme::dma_ta(0.5), &tr)
        };
        assert_eq!(a.energy, b.energy);
        assert!(a.profile.deterministic_eq(&b.profile));
        assert!(!a.profile.timed && b.profile.timed);
        assert_eq!(prof.prof_totals().timed_sims, 1);
        assert!(prof.prof_totals().phase_ns.iter().sum::<u64>() > 0);
    }
}
