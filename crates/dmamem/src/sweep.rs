//! The parallel sweep engine: memoized simulation runs over shared traces.
//!
//! Every figure of the paper's evaluation is a matrix of independent
//! [`ServerSimulator::run`] calls, and the matrix is highly redundant: the
//! same baseline configuration is re-simulated for nearly every row, and
//! the same synthetic trace is regenerated per point. [`SweepCtx`] removes
//! both redundancies and runs what remains in parallel:
//!
//! * **Shared traces** — [`SweepCtx::trace`] caches generated traces as
//!   [`Arc<Trace>`] under a caller-supplied key, so every scheme run over
//!   a workload reads one in-memory copy.
//! * **Memoized runs** — results are cached under an injective key built
//!   from the full `(SystemConfig, Scheme, trace)` tuple (`Debug`-derived;
//!   Rust's shortest-roundtrip float formatting makes it collision-free),
//!   so a baseline shared by six CP-Limit points executes once.
//! * **Parallel batches** — [`SweepCtx::run_batch`] executes the
//!   non-memoized jobs on a [`simcore::par`] work-stealing pool and
//!   returns results in job order.
//!
//! Determinism: the simulator itself is deterministic, batch results come
//! back in input order, and memoization only ever substitutes a result
//! for an identical `(config, scheme, trace)` run — so figure outputs are
//! **bit-identical** at any thread count, with memoization on or off.
//! `crates/dmamem/tests/sweep_determinism.rs` property-tests exactly that.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dma_trace::Trace;
use simcore::par;

use crate::config::{Scheme, SystemConfig};
use crate::metrics::SimResult;
use crate::system::ServerSimulator;

// The engine moves these across worker threads; keep the requirement
// visible at compile time rather than deep inside a closure error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimResult>();
    assert_send_sync::<Trace>();
    assert_send_sync::<SystemConfig>();
    assert_send_sync::<Scheme>();
};

/// A generated trace shared across sweep jobs: an [`Arc<Trace>`] plus the
/// cache key identifying how it was generated.
#[derive(Debug, Clone)]
pub struct SharedTrace {
    key: Arc<str>,
    trace: Arc<Trace>,
}

impl SharedTrace {
    /// Wraps an already-built trace under an explicit identity key.
    ///
    /// The key must uniquely describe the trace's contents (generator
    /// parameters, duration, seed); two different traces under one key
    /// would alias in the memo table.
    pub fn new(key: impl Into<String>, trace: Trace) -> Self {
        SharedTrace {
            key: Arc::from(key.into()),
            trace: Arc::new(trace),
        }
    }

    /// The identity key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The shared trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

/// One sweep job: a full simulation of `scheme` on `config` over `trace`.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// System configuration for the run.
    pub config: SystemConfig,
    /// Scheme under evaluation.
    pub scheme: Scheme,
    /// The (shared) input trace.
    pub trace: SharedTrace,
}

impl SimJob {
    /// Creates a job.
    pub fn new(config: SystemConfig, scheme: Scheme, trace: SharedTrace) -> Self {
        SimJob {
            config,
            scheme,
            trace,
        }
    }

    /// The memoization key: injective over `(config, scheme, trace key)`.
    ///
    /// Built from `Debug` output; Rust formats floats as the shortest
    /// string that round-trips, so distinct configurations always produce
    /// distinct keys (property-tested in this module and in
    /// `tests/sweep_determinism.rs`).
    pub fn memo_key(&self) -> String {
        // \u{1} cannot appear in Debug output of these plain data types,
        // so the three parts cannot bleed into each other.
        format!(
            "{:?}\u{1}{:?}\u{1}{}",
            self.config, self.scheme, self.trace.key
        )
    }
}

/// Memoization statistics of a [`SweepCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Jobs answered from the result cache (or deduplicated in-batch).
    pub hits: u64,
    /// Jobs that executed a simulation.
    pub misses: u64,
    /// Traces served from the trace cache.
    pub trace_hits: u64,
    /// Traces generated.
    pub trace_misses: u64,
}

/// The sweep engine: a thread pool plus result and trace caches.
///
/// # Example
///
/// ```
/// use dmamem::sweep::{SimJob, SweepCtx};
/// use dmamem::{Scheme, SystemConfig};
/// use dma_trace::TraceGen;
/// use simcore::SimDuration;
///
/// let ctx = SweepCtx::new(2);
/// let trace = ctx.trace("demo", || {
///     dma_trace::SyntheticStorageGen::default().generate(SimDuration::from_us(200), 7)
/// });
/// let jobs = vec![
///     SimJob::new(SystemConfig::default(), Scheme::baseline(), trace.clone()),
///     SimJob::new(SystemConfig::default(), Scheme::dma_ta(0.5), trace.clone()),
///     // Duplicate of the first job: memoized, simulated only once.
///     SimJob::new(SystemConfig::default(), Scheme::baseline(), trace),
/// ];
/// let results = ctx.run_batch(jobs);
/// assert_eq!(results[0].energy, results[2].energy);
/// assert_eq!(ctx.memo_stats().misses, 2);
/// ```
#[derive(Debug)]
pub struct SweepCtx {
    threads: usize,
    memoize: bool,
    // simlint::allow(nondet-iter, "memo cache: results are read back per key, never iterated; order cannot reach sim output")
    memo: Mutex<HashMap<Arc<str>, Arc<SimResult>>>,
    // simlint::allow(nondet-iter, "trace cache: keyed lookups only, never iterated; order cannot reach sim output")
    traces: Mutex<HashMap<Arc<str>, SharedTrace>>,
    hits: AtomicU64,
    misses: AtomicU64,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
}

impl SweepCtx {
    /// Creates a sweep context running jobs on up to `threads` workers
    /// (`0` = all available cores), with memoization enabled.
    pub fn new(threads: usize) -> Self {
        SweepCtx {
            threads: par::resolve_threads(threads),
            memoize: true,
            // simlint::allow(nondet-iter, "memo cache construction; see field comment — lookups only")
            memo: Mutex::new(HashMap::new()),
            // simlint::allow(nondet-iter, "trace cache construction; see field comment — lookups only")
            traces: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            trace_hits: AtomicU64::new(0),
            trace_misses: AtomicU64::new(0),
        }
    }

    /// A single-threaded context — the drop-in replacement for the old
    /// serial figure loops.
    pub fn serial() -> Self {
        SweepCtx::new(1)
    }

    /// Enables or disables result memoization (traces stay cached either
    /// way). Exists so tests can prove memoization does not change
    /// results; sweeps want it on.
    pub fn with_memoize(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Worker threads in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Memoization statistics so far.
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
        }
    }

    /// Returns the trace cached under `key`, generating it with `gen` on
    /// first use. The key must uniquely describe the generator, duration,
    /// and seed (see [`SharedTrace::new`]).
    pub fn trace(&self, key: impl Into<String>, gen: impl FnOnce() -> Trace) -> SharedTrace {
        let key: Arc<str> = Arc::from(key.into());
        let mut traces = self.traces.lock().expect("trace cache lock poisoned");
        if let Some(t) = traces.get(&key) {
            self.trace_hits.fetch_add(1, Ordering::Relaxed);
            return t.clone();
        }
        self.trace_misses.fetch_add(1, Ordering::Relaxed);
        let shared = SharedTrace {
            key: Arc::clone(&key),
            trace: Arc::new(gen()),
        };
        traces.insert(key, shared.clone());
        shared
    }

    /// Runs one job (memoized). Equivalent to a one-job [`run_batch`].
    pub fn run(
        &self,
        config: &SystemConfig,
        scheme: Scheme,
        trace: &SharedTrace,
    ) -> Arc<SimResult> {
        self.run_batch(vec![SimJob::new(config.clone(), scheme, trace.clone())])
            .pop()
            .expect("one job in, one result out")
    }

    /// Runs a batch of jobs, in parallel, and returns their results in
    /// job order.
    ///
    /// With memoization on, jobs whose key already has a cached result —
    /// or that repeat an earlier job in this same batch — do not
    /// simulate; everything else runs on the work-stealing pool.
    pub fn run_batch(&self, jobs: Vec<SimJob>) -> Vec<Arc<SimResult>> {
        if !self.memoize {
            self.misses.fetch_add(jobs.len() as u64, Ordering::Relaxed);
            return par::map(self.threads, jobs, |job| {
                Arc::new(ServerSimulator::new(job.config, job.scheme).run(job.trace.trace()))
            });
        }

        let keys: Vec<Arc<str>> = jobs.iter().map(|j| Arc::from(j.memo_key())).collect();
        // First occurrence of each un-cached key becomes a pending run.
        let mut pending: Vec<(Arc<str>, SimJob)> = Vec::new();
        {
            let memo = self.memo.lock().expect("memo cache lock poisoned");
            // simlint::allow(nondet-iter, "first-occurrence dedup set: membership tests only, never iterated")
            let mut claimed: HashMap<&str, ()> = HashMap::new();
            for (job, key) in jobs.iter().zip(&keys) {
                if memo.contains_key(key) || claimed.contains_key(key.as_ref()) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    claimed.insert(key, ());
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    pending.push((Arc::clone(key), job.clone()));
                }
            }
        }
        let fresh = par::map(self.threads, pending, |(key, job)| {
            let r = Arc::new(ServerSimulator::new(job.config, job.scheme).run(job.trace.trace()));
            (key, r)
        });
        let mut memo = self.memo.lock().expect("memo cache lock poisoned");
        for (key, r) in fresh {
            memo.insert(key, r);
        }
        keys.iter()
            .map(|k| Arc::clone(memo.get(k).expect("every batch key resolved")))
            .collect()
    }
}

impl Default for SweepCtx {
    fn default() -> Self {
        SweepCtx::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_trace::TraceGen;
    use simcore::SimDuration;

    fn tiny_trace(ctx: &SweepCtx, seed: u64) -> SharedTrace {
        ctx.trace(format!("tiny|{seed}"), || {
            dma_trace::SyntheticStorageGen {
                pages: 4096,
                ..Default::default()
            }
            .generate(SimDuration::from_us(300), seed)
        })
    }

    fn small_config() -> SystemConfig {
        SystemConfig {
            pages: 4096,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn duplicate_jobs_simulate_once_and_share_results() {
        let ctx = SweepCtx::new(2);
        let trace = tiny_trace(&ctx, 5);
        let jobs: Vec<SimJob> = (0..6)
            .map(|_| SimJob::new(small_config(), Scheme::baseline(), trace.clone()))
            .collect();
        let results = ctx.run_batch(jobs);
        assert_eq!(results.len(), 6);
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r), "memo must share the Arc");
        }
        let stats = ctx.memo_stats();
        assert_eq!((stats.hits, stats.misses), (5, 1));
    }

    #[test]
    fn memo_persists_across_batches() {
        let ctx = SweepCtx::serial();
        let trace = tiny_trace(&ctx, 5);
        let a = ctx.run(&small_config(), Scheme::baseline(), &trace);
        let b = ctx.run(&small_config(), Scheme::baseline(), &trace);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.memo_stats().misses, 1);
    }

    #[test]
    fn trace_cache_generates_once_per_key() {
        let ctx = SweepCtx::serial();
        let a = tiny_trace(&ctx, 5);
        let b = tiny_trace(&ctx, 5);
        let c = tiny_trace(&ctx, 6);
        assert!(Arc::ptr_eq(&a.trace, &b.trace));
        assert!(!Arc::ptr_eq(&a.trace, &c.trace));
        let stats = ctx.memo_stats();
        assert_eq!((stats.trace_hits, stats.trace_misses), (1, 2));
    }

    #[test]
    fn memo_keys_distinguish_every_tuple_part() {
        let ctx = SweepCtx::serial();
        let trace = tiny_trace(&ctx, 5);
        let other_trace = tiny_trace(&ctx, 6);
        let base = SimJob::new(small_config(), Scheme::baseline(), trace.clone());
        let variants = [
            SimJob::new(
                SystemConfig {
                    chips: 16,
                    pages: 4096,
                    ..SystemConfig::default()
                },
                Scheme::baseline(),
                trace.clone(),
            ),
            SimJob::new(small_config(), Scheme::dma_ta(0.0), trace.clone()),
            SimJob::new(small_config(), Scheme::dma_ta(0.1), trace.clone()),
            // Floats that print alike under naive rounding must not
            // collide: shortest-roundtrip Debug keeps them distinct.
            SimJob::new(small_config(), Scheme::dma_ta(0.1 + 1e-12), trace.clone()),
            SimJob::new(small_config(), Scheme::dma_ta_pl(0.1, 2), trace.clone()),
            SimJob::new(small_config(), Scheme::dma_ta_pl(0.1, 3), trace),
            SimJob::new(small_config(), Scheme::baseline(), other_trace),
        ];
        let base_key = base.memo_key();
        let mut seen = std::collections::HashSet::new();
        seen.insert(base_key.clone());
        for v in &variants {
            let k = v.memo_key();
            assert_ne!(k, base_key);
            assert!(seen.insert(k), "memo key collision for {v:?}");
        }
    }

    #[test]
    fn memoize_off_still_returns_identical_results() {
        let on = SweepCtx::new(2);
        let off = SweepCtx::new(2).with_memoize(false);
        let jobs = |ctx: &SweepCtx| {
            let trace = tiny_trace(ctx, 9);
            vec![
                SimJob::new(small_config(), Scheme::baseline(), trace.clone()),
                SimJob::new(small_config(), Scheme::baseline(), trace.clone()),
                SimJob::new(small_config(), Scheme::dma_ta(0.5), trace),
            ]
        };
        let a = on.run_batch(jobs(&on));
        let b = off.run_batch(jobs(&off));
        assert_eq!(off.memo_stats().hits, 0);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.energy, y.energy);
            assert_eq!(x.dma_requests, y.dma_requests);
            assert_eq!(x.transfers, y.transfers);
        }
    }
}
