//! The whole-system discrete-event simulator.
//!
//! [`ServerSimulator`] wires the substrate models together and drives them
//! from a single deterministic event loop:
//!
//! * trace events feed DMA transfers into [`iobus::Bus`]es and processor
//!   accesses straight to the controller;
//! * buses pace DMA-memory requests at slot granularity; a transfer's first
//!   request gates the stream until the controller acknowledges it (at
//!   service start);
//! * each [`mempower::Chip`] serves one request at a time, with processor
//!   accesses prioritized over DMA and migration traffic last;
//! * the low-level policy sleeps idle chips; DMA-TA intercepts first
//!   requests to sleeping chips and gathers them under the slack guarantee;
//!   PL recomputes the page layout every interval and executes migrations
//!   as chip-busy copy work.

use std::collections::VecDeque;
use std::sync::Arc;

use dma_trace::{Trace, TraceEvent};
use iobus::{Bus, BusId, DmaRequest, DmaTransfer, IssueOutcome, PageId, TransferId};
use mempower::policy::PowerPolicy;
use mempower::{Chip, ChipPhase, EnergyBreakdown, EnergyCategory, PowerMode};
use simcore::obs::{EventSink, LiveState, MetricsRegistry, SpanTimer, SpillSink};
use simcore::prof::{EngineProfile, Phase, PhaseProfile, Stopwatch};
use simcore::stats::DurationStats;
use simcore::{EventQueue, SimDuration, SimTime, Slab};

use crate::config::{Scheme, SystemConfig};
use crate::controller::pl::{plan_and_apply_observed, PopularityTracker};
use crate::controller::ta::{ReleaseRule, SlackAccount};
use crate::layout::PageMap;
use crate::metrics::SimResult;
use crate::obs::{DebitCause, Obs, ObsMetrics, ReleaseCause, RunObs, SlackSummary};
use crate::timeline::{ChipActivity, TimelineRecorder};
use crate::tracing::Tracer;

/// Simulates a data server running one [`Scheme`] over a trace.
///
/// See the crate-level example. Construction is cheap; [`run`] does the
/// work and can be called repeatedly with different traces.
///
/// [`run`]: ServerSimulator::run
#[derive(Debug, Clone)]
pub struct ServerSimulator {
    config: SystemConfig,
    scheme: Scheme,
    timeline_window: Option<(SimTime, SimTime)>,
    observability: Option<usize>,
    tracing: Option<usize>,
    trace_spill: Option<SpillSink>,
    live: Option<Arc<LiveState>>,
    profiling: bool,
    classic: bool,
}

impl ServerSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SystemConfig::validate`]).
    pub fn new(config: SystemConfig, scheme: Scheme) -> Self {
        config.validate();
        ServerSimulator {
            config,
            scheme,
            timeline_window: None,
            observability: None,
            tracing: None,
            trace_spill: None,
            live: None,
            profiling: false,
            classic: false,
        }
    }

    /// Disables the virtual-time fast-forward, dispatching every
    /// periodic tick individually as the pre-calendar engine did.
    ///
    /// Simulated results are identical either way (the fast-forward only
    /// skips provably no-op ticks; `tests/fast_forward.rs` pins the
    /// conservation identity) — this knob exists as the test oracle for
    /// that claim and as an escape hatch while debugging event-order
    /// issues.
    pub fn with_classic_event_core(mut self) -> Self {
        self.classic = true;
        self
    }

    /// Arms wall-clock phase timers in the engine self-profile.
    ///
    /// The deterministic [`EngineProfile`] counters (events, heap ops,
    /// allocations, phase call counts) are collected on every run; this
    /// switch only adds per-phase elapsed-nanosecond totals, which are
    /// host-dependent. Simulated results stay byte-identical either way
    /// (see `tests/prof_determinism.rs`).
    pub fn with_profiling(mut self) -> Self {
        self.profiling = true;
        self
    }

    /// Enables full observability: metric collection, chip power-mode
    /// transition logging, and event tracing into a ring buffer of
    /// `event_capacity` events (oldest dropped first). The result's
    /// [`SimResult::obs`] then carries the metrics snapshot and the event
    /// stream; see [`crate::obs`] for the event schema and
    /// [`crate::obs::replay_slack`] for the guarantee audit trail.
    ///
    /// # Panics
    ///
    /// Panics if `event_capacity` is zero.
    pub fn with_observability(mut self, event_capacity: usize) -> Self {
        assert!(event_capacity > 0, "zero-capacity event sink");
        self.observability = Some(event_capacity);
        self
    }

    /// Records per-chip activity timelines inside `[start, end)`; the
    /// result's [`SimResult::timeline`] renders them as the paper's
    /// Figure 2(a)/3 diagrams. Keep the window short (microseconds to a few
    /// milliseconds) — every chip state change in it is stored.
    pub fn with_timeline(mut self, start: SimTime, end: SimTime) -> Self {
        assert!(start < end, "empty timeline window");
        self.timeline_window = Some((start, end));
        self
    }

    /// Enables transfer-level causal tracing into a span ring of
    /// `capacity` records (oldest dropped first). Every DMA transfer
    /// becomes a root span on its I/O-bus track with child spans for its
    /// gather delay, wakeup, lockstep service, active-idle gaps, and
    /// final drain; chips get activity-span tracks and a power counter.
    /// The result's [`SimResult::trace`] carries the buffer; export it
    /// with
    /// [`to_chrome_json`](simcore::obs::trace::TraceBuffer::to_chrome_json)
    /// and open the file in Perfetto. See [`crate::tracing`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity trace buffer");
        self.tracing = Some(capacity);
        self
    }

    /// Arms bounded-memory spill mode on the tracer: records displaced
    /// from the span ring stream to `sink` instead of being dropped, and
    /// `dmamem.trace.spilled` / `dmamem.trace.dropped` land in the
    /// metrics snapshot (when observability is on) so loss is never
    /// silent. Requires [`with_tracing`](ServerSimulator::with_tracing);
    /// ignored otherwise.
    pub fn with_trace_spill(mut self, sink: SpillSink) -> Self {
        self.trace_spill = Some(sink);
        self
    }

    /// Attaches shared live-telemetry state: the engine publishes a
    /// coarse sim-clock watermark into it while running (so a stuck run
    /// is distinguishable from a slow one on `/status`). Pure one-way
    /// telemetry — simulated results are byte-identical with or without
    /// it.
    pub fn with_live(mut self, live: Arc<LiveState>) -> Self {
        self.live = Some(live);
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The scheme under evaluation.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Runs the trace to completion and returns the measurements.
    ///
    /// Pages referenced by the trace must lie inside the configured working
    /// set (`page < config.pages`).
    ///
    /// # Panics
    ///
    /// Panics if the trace references an out-of-range page or bus.
    pub fn run(&self, trace: &Trace) -> SimResult {
        let mut engine = Engine::new(&self.config, &self.scheme);
        engine.prof_timed = self.profiling;
        engine.classic = self.classic;
        engine.live = self.live.clone();
        if let Some((start, end)) = self.timeline_window {
            engine.obs.timeline = Some(TimelineRecorder::new(start, end, self.config.chips));
        }
        if let Some(capacity) = self.observability {
            let registry = MetricsRegistry::new();
            engine.obs.sink = Some(EventSink::new(capacity));
            engine.obs.metrics = Some(ObsMetrics::new(&registry));
            engine.dispatch_span = Some(SpanTimer::new(&registry, "engine_dispatch"));
            for c in &mut engine.chips {
                c.chip.enable_transition_log();
            }
        }
        if let Some(capacity) = self.tracing {
            let m = &self.config.power_model;
            let powers = [
                m.mode_power_mw(PowerMode::Active),
                m.mode_power_mw(PowerMode::Standby),
                m.mode_power_mw(PowerMode::Nap),
                m.mode_power_mw(PowerMode::Powerdown),
            ];
            let mut tracer =
                Tracer::new(capacity, self.config.chips, self.config.buses.len(), powers);
            if let Some(sink) = &self.trace_spill {
                tracer = tracer.with_spill(sink.clone());
            }
            engine.obs.tracer = Some(tracer);
            for c in &mut engine.chips {
                c.chip.enable_transition_log();
            }
        }
        engine.run(trace)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Consume trace events at the cursor.
    Trace,
    /// A bus may issue a request.
    BusTick { bus: BusId, gen: u64 },
    /// A chip finished its current service.
    ServiceDone { chip: usize },
    /// A chip finished a power-mode transition.
    TransitionDone { chip: usize },
    /// The low-level policy wants to sleep an idle chip.
    PolicyTimer { chip: usize, gen: u64 },
    /// End of a reserved-for-CPU idle gap (Section 4.1.3 alternative).
    CpuGapDone { chip: usize },
    /// DMA-TA epoch accounting tick.
    EpochTick,
    /// PL layout recomputation.
    PlInterval,
}

#[derive(Debug, Clone, Copy)]
enum Serving {
    Dma {
        req: DmaRequest,
        arrival: SimTime,
        /// Service duration computed at serve start, carried here so
        /// completion does not redo the bandwidth division.
        service: SimDuration,
    },
    Proc,
    Migration,
}

#[derive(Debug, Clone, Copy)]
struct ReadyDma {
    req: DmaRequest,
    arrival: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct PendingFirst {
    req: DmaRequest,
    arrival: SimTime,
}

/// Per-chip cold state: the chip model, its queues, and its policy.
///
/// The dispatch-hot scalars (current service, policy-timer generation,
/// idle bookkeeping) live in parallel struct-of-arrays vectors on
/// [`Engine`] — the inner loop touches those on every event, and packing
/// them densely keeps the hot working set to a few cache lines instead
/// of striding across whole `ChipCtl`s.
struct ChipCtl {
    chip: Chip,
    dma_ready: VecDeque<ReadyDma>,
    proc_ready: VecDeque<SimTime>,
    mig_ready: VecDeque<SimDuration>,
    pending: Vec<PendingFirst>,
    pending_per_bus: Vec<u32>,
    policy: Box<dyn PowerPolicy>,
}

impl ChipCtl {
    fn queues_empty(&self) -> bool {
        self.dma_ready.is_empty() && self.proc_ready.is_empty() && self.mig_ready.is_empty()
    }

    fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

/// Live-transfer bookkeeping record; lives in the engine's [`Slab`]
/// arena for the duration of the transfer.
struct Track {
    arrival: SimTime,
    chip: usize,
}

struct Engine<'a> {
    config: &'a SystemConfig,
    scheme: &'a Scheme,
    queue: EventQueue<Ev>,
    now: SimTime,
    chips: Vec<ChipCtl>,
    // Dispatch-hot per-chip state, struct-of-arrays (indexed like
    // `chips`; see the `ChipCtl` docs).
    serving: Vec<Option<Serving>>,
    timer_gen: Vec<u64>,
    planned_mode: Vec<Option<PowerMode>>,
    wake_requested: Vec<bool>,
    idle_start: Vec<SimTime>,
    /// Consecutive DMA services since the last CPU gap (cpu_reservation).
    dma_streak: Vec<u32>,
    buses: Vec<Bus>,
    bus_gen: Vec<u64>,
    page_map: PageMap,
    /// Live-transfer records in a free-list arena. A transfer's slot is
    /// stamped onto its [`DmaTransfer`] (and every [`DmaRequest`] the bus
    /// issues from it), so the hot per-request path resolves request →
    /// record with one stable index. Slots recycle as transfers finish:
    /// the arena stays sized to the *live* transfer count instead of
    /// growing with every transfer the run has ever started.
    tracks: Slab<Track>,
    next_tid: TransferId,
    // DMA-TA state.
    slack: Option<SlackAccount>,
    rule: Option<ReleaseRule>,
    ta_pending_total: usize,
    last_epoch_tick: SimTime,
    // PL state.
    tracker: Option<PopularityTracker>,
    // Progress accounting for termination.
    cursor: usize,
    active_transfers: usize,
    live_requests: usize,
    serving_count: usize,
    // Metrics.
    dma_requests: u64,
    transfers_done: u64,
    proc_done: u64,
    request_service: DurationStats,
    transfer_response: DurationStats,
    dma_serving: SimDuration,
    delayed_firsts: u64,
    page_moves: u64,
    proc_service: SimDuration,
    /// One-entry `(bytes, service_time(bytes))` memo for the hot DMA
    /// serve path (request sizes are uniform within a run).
    service_memo: (u64, SimDuration),
    dbg_pending_delay_ps: f64,
    dbg_first_post_release_ps: f64,
    dbg_nonfirst_delay_ps: f64,
    // Exact service-time totals, kept alongside `request_service` so the
    // slack-ledger close carries integer data the replay can reproduce
    // `guarantee_met` from without float-accumulation drift.
    served: u64,
    service_sum_ps: u64,
    obs: Obs,
    dispatch_span: Option<SpanTimer>,
    // Engine self-profile: per-phase call counts are always maintained
    // (deterministic); wall-clock ns only when `prof_timed` is set.
    phases: PhaseProfile,
    prof_timed: bool,
    /// Dispatch every periodic tick (no fast-forward); see
    /// [`ServerSimulator::with_classic_event_core`].
    classic: bool,
    /// No observability consumer is attached, so skipping a no-op tick
    /// cannot lose an event-stream record or metric increment. Cached at
    /// run start (consumers never attach mid-run).
    obs_quiet: bool,
    /// Live telemetry: the engine stores a coarse sim-clock watermark
    /// into it every 1024 dispatched events (a pure atomic store — see
    /// [`LiveState::watermark_ps`]). Never read back by the simulation.
    live: Option<Arc<LiveState>>,
}

impl<'a> Engine<'a> {
    fn new(config: &'a SystemConfig, scheme: &'a Scheme) -> Self {
        let chips = (0..config.chips)
            .map(|i| ChipCtl {
                chip: Chip::new(i, config.power_model.clone()),
                dma_ready: VecDeque::new(),
                proc_ready: VecDeque::new(),
                mig_ready: VecDeque::new(),
                pending: Vec::new(),
                pending_per_bus: vec![0; config.buses.len()],
                policy: config.policy.build(&config.power_model),
            })
            .collect();
        let buses = config
            .buses
            .iter()
            .enumerate()
            .map(|(i, b)| Bus::new(i, *b))
            .collect();
        let t_req = config.t_request();
        let (slack, rule) = match scheme.ta {
            Some(ta) => (
                Some(SlackAccount::new(ta.mu, t_req)),
                Some(ReleaseRule::new(
                    config.k_buses_to_saturate(),
                    config.buses.len(),
                    t_req,
                )),
            ),
            None => (None, None),
        };
        let tracker = scheme.pl.map(|_| PopularityTracker::new(config.pages));
        Engine {
            config,
            scheme,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            chips,
            serving: vec![None; config.chips],
            timer_gen: vec![0; config.chips],
            planned_mode: vec![None; config.chips],
            wake_requested: vec![false; config.chips],
            idle_start: vec![SimTime::ZERO; config.chips],
            dma_streak: vec![0; config.chips],
            buses,
            bus_gen: vec![0; config.buses.len()],
            page_map: PageMap::new_sequential(config),
            tracks: Slab::new(),
            next_tid: 1,
            slack,
            rule,
            ta_pending_total: 0,
            last_epoch_tick: SimTime::ZERO,
            tracker,
            cursor: 0,
            active_transfers: 0,
            live_requests: 0,
            serving_count: 0,
            dma_requests: 0,
            transfers_done: 0,
            proc_done: 0,
            request_service: DurationStats::new(),
            transfer_response: DurationStats::new(),
            dma_serving: SimDuration::ZERO,
            delayed_firsts: 0,
            page_moves: 0,
            proc_service: config.power_model.service_time(config.cache_line_bytes),
            service_memo: (
                config.cache_line_bytes,
                config.power_model.service_time(config.cache_line_bytes),
            ),
            dbg_pending_delay_ps: 0.0,
            dbg_first_post_release_ps: 0.0,
            dbg_nonfirst_delay_ps: 0.0,
            served: 0,
            service_sum_ps: 0,
            obs: Obs::new(config.chips),
            dispatch_span: None,
            phases: PhaseProfile::default(),
            prof_timed: false,
            classic: false,
            obs_quiet: true,
            live: None,
        }
    }

    /// Feeds the activity consumers (timeline recorder, event sink) the
    /// chip's current activity.
    fn tl_note(&mut self, chip: usize) {
        if !self.obs.wants_activity() {
            return;
        }
        let c = &self.chips[chip];
        let activity = match c.chip.phase() {
            ChipPhase::Steady(PowerMode::Active) => {
                if self.serving[chip].is_some() {
                    ChipActivity::Serving
                } else if c.chip.inflight_dma() > 0 {
                    ChipActivity::IdleDma
                } else {
                    ChipActivity::IdleOther
                }
            }
            ChipPhase::Steady(_) => ChipActivity::LowPower,
            _ => ChipActivity::Transitioning,
        };
        self.obs.note_activity(chip, self.now, activity);
    }

    /// Drains the chip's power-transition log into the event stream.
    fn note_transitions(&mut self, chip: usize) {
        if !self.obs.enabled() {
            return;
        }
        let events = self.chips[chip].chip.take_transition_events();
        if !events.is_empty() {
            self.obs.note_transitions(chip, events);
        }
    }

    fn run(mut self, trace: &Trace) -> SimResult {
        self.obs_quiet = !self.obs.enabled();
        let events = trace.events();
        if let Some(first) = events.first() {
            self.queue.schedule(first.time(), Ev::Trace);
        }
        // Chips boot active and idle: hand them to the policy immediately.
        for chip in 0..self.chips.len() {
            self.arm_policy(chip);
        }
        if let Some(ta) = self.scheme.ta {
            self.queue.schedule(SimTime::ZERO + ta.epoch, Ev::EpochTick);
        }
        if let Some(pl) = self.scheme.pl {
            // Cost-benefit gate (the paper's planned run-time check): the
            // waste PL can help reclaim is the inter-request idleness,
            // a fraction (1 - Rb/Rm) of each transfer's active time. Below
            // a memory/bus ratio of 2 that pool is under half the serving
            // energy and page migration cannot pay for itself — skip PL.
            let rm = self.config.power_model.bandwidth_bytes_per_sec();
            let rb = self.config.buses[0].bytes_per_sec;
            if rm / rb >= 2.0 {
                self.queue
                    .schedule(SimTime::ZERO + pl.interval, Ev::PlInterval);
            }
        }

        let dispatch_span = self.dispatch_span.clone();
        // Phase timing is batched over *runs* of same-phase events: the
        // stopwatch starts at a phase boundary and stops at the next one,
        // so the common case (long dispatch bursts) pays no wall-clock
        // reads at all. Call counts stay exact and deterministic; the ns
        // attribution is host-dependent anyway and now includes the queue
        // pop between events of one run.
        let mut timed_run: Option<(Phase, Stopwatch)> = None;
        let mut watermark_tick: u64 = 0;
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now, "event time went backwards");
            self.now = t;
            if let Some(live) = &self.live {
                watermark_tick += 1;
                if watermark_tick & 1023 == 0 {
                    live.watermark_ps(self.now.as_ps());
                }
            }
            if self.finished(events.len()) {
                break;
            }
            let _span = dispatch_span.as_ref().map(|s| s.start());
            let phase = match ev {
                Ev::PolicyTimer { .. } | Ev::EpochTick | Ev::PlInterval => Phase::Policy,
                Ev::TransitionDone { .. } => Phase::Transition,
                _ => Phase::Dispatch,
            };
            self.phases.note(phase);
            if self.prof_timed && timed_run.as_ref().is_none_or(|(p, _)| *p != phase) {
                if let Some((p, sw)) = timed_run.take() {
                    self.phases.add_ns(p, sw.elapsed_ns());
                }
                timed_run = Some((phase, Stopwatch::start()));
            }
            match ev {
                Ev::Trace => self.on_trace(events),
                Ev::BusTick { bus, gen } => self.on_bus_tick(bus, gen),
                Ev::ServiceDone { chip } => self.on_service_done(chip),
                Ev::TransitionDone { chip } => self.on_transition_done(chip),
                Ev::PolicyTimer { chip, gen } => self.on_policy_timer(chip, gen),
                Ev::CpuGapDone { chip } => self.try_serve(chip),
                Ev::EpochTick => self.on_epoch_tick(events.len()),
                Ev::PlInterval => self.on_pl_interval(events.len()),
            }
        }
        if let Some((p, sw)) = timed_run.take() {
            self.phases.add_ns(p, sw.elapsed_ns());
        }
        // Stat collection is its own profiled phase: ledger close, energy
        // merge, snapshotting, and result assembly below.
        self.phases.note(Phase::Stats);
        let stats_sw = self.prof_timed.then(Stopwatch::start);

        if std::env::var_os("DMAMEM_DEBUG_SLACK").is_some() {
            if let Some(slack) = &self.slack {
                let (e, w, p, q) = slack.debits_ps();
                eprintln!(
                    "delay debug: pending {:.3} ms, first-total {:.3} ms, nonfirst {:.3} ms",
                    self.dbg_pending_delay_ps / 1e9,
                    self.dbg_first_post_release_ps / 1e9,
                    self.dbg_nonfirst_delay_ps / 1e9
                );
                eprintln!(
                    "slack debug: final {:.3} ms, min {:.3} ms, credits {} reqs, debits epoch {:.3} ms wake {:.3} ms proc {:.3} ms queue {:.3} ms",
                    slack.slack_ps() / 1e9,
                    slack.min_slack_ps() / 1e9,
                    slack.credited_requests(),
                    e / 1e9,
                    w / 1e9,
                    p / 1e9,
                    q / 1e9
                );
            }
        }
        let horizon = self.now.max(SimTime::ZERO + trace.duration());
        if let Some(live) = &self.live {
            live.watermark_ps(horizon.as_ps());
        }
        if let Some(rec) = &mut self.obs.timeline {
            rec.finish(horizon);
        }
        // Close the slack ledger so the audit trail is self-contained.
        let slack_summary = self.slack.as_ref().map(|s| {
            let (epoch, wake, proc, queue) = s.debits_ps();
            SlackSummary {
                credited: s.credited_requests(),
                debit_epoch_ps: epoch,
                debit_wake_ps: wake,
                debit_proc_ps: proc,
                debit_queue_ps: queue,
                final_ps: s.slack_ps(),
                min_ps: s.min_slack_ps(),
            }
        });
        if let Some(s) = &self.slack {
            let (credited, balance, min, mu) = (
                s.credited_requests(),
                s.slack_ps(),
                s.min_slack_ps(),
                s.mu(),
            );
            self.obs.slack_close(
                horizon,
                credited,
                balance,
                min,
                self.served,
                self.service_sum_ps,
                mu,
                self.config.t_request(),
            );
        } else {
            self.obs.flush_credits();
        }
        let mut energy = EnergyBreakdown::new();
        let mut per_chip_mj = Vec::with_capacity(self.chips.len());
        let mut per_chip_energy = Vec::with_capacity(self.chips.len());
        let mut per_chip_residency = Vec::with_capacity(self.chips.len());
        let mut wakes = 0;
        for chip in 0..self.chips.len() {
            self.note_transitions(chip);
        }
        for c in &mut self.chips {
            c.chip.sync(horizon);
            energy.merge(c.chip.energy());
            per_chip_mj.push(c.chip.energy().total_mj());
            per_chip_energy.push(c.chip.energy().clone());
            per_chip_residency.push(*c.chip.residency());
            wakes += c.chip.wakes();
        }
        if let Some(sw) = stats_sw {
            self.phases.add_ns(Phase::Stats, sw.elapsed_ns());
        }
        let queue_stats = self.queue.stats();
        let profile = EngineProfile {
            // Dispatched events: every loop-phase call (the Stats phase is
            // the post-loop pass, not a dispatched event).
            events: self.phases.total_calls() - self.phases.get(Phase::Stats).calls,
            heap_pushes: queue_stats.pushes,
            heap_pops: queue_stats.pops,
            max_heap_depth: queue_stats.max_depth,
            transfers: self.next_tid - 1,
            requests: self.dma_requests,
            timed: self.prof_timed,
            phases: self.phases,
        };
        // Deterministic prof counters go into the metrics snapshot
        // unconditionally (never the wall-clock ns), so obs output is
        // byte-identical whether phase timing is armed or not.
        self.obs.publish_prof(&profile);
        let trace = self.obs.tracer.take().map(|t| t.into_buffer(horizon));
        // Trace-ring loss accounting: spilled records reached the spill
        // sink, dropped records are gone. Published whenever both
        // consumers are attached so truncation is observable, not silent.
        if let (Some(m), Some(buf)) = (self.obs.metrics.as_ref(), trace.as_ref()) {
            m.registry
                .counter(crate::tracing::COUNTER_SPILLED)
                .add(buf.spilled());
            m.registry
                .counter(crate::tracing::COUNTER_DROPPED)
                .add(buf.dropped());
        }
        let obs_report = self.obs.sink.take().map(|events| RunObs {
            metrics: self
                .obs
                .metrics
                .as_ref()
                .map(|m| m.registry.snapshot())
                .unwrap_or_default(),
            events,
        });
        SimResult {
            scheme: self.scheme.label(),
            energy,
            per_chip_mj,
            per_chip_energy,
            per_chip_residency,
            horizon: horizon.elapsed_since(SimTime::ZERO),
            dma_requests: self.dma_requests,
            transfers: self.transfers_done,
            proc_accesses: self.proc_done,
            request_service: self.request_service,
            transfer_response: self.transfer_response,
            dma_serving: self.dma_serving,
            wakes,
            delayed_firsts: self.delayed_firsts,
            page_moves: self.page_moves,
            mu: self.scheme.ta.map_or(0.0, |t| t.mu),
            slack: slack_summary,
            obs: obs_report,
            timeline: self.obs.timeline.take(),
            trace,
            profile,
            sleep_floor_mw: self.config.chips as f64
                * self
                    .config
                    .power_model
                    .mode_power_mw(mempower::PowerMode::Powerdown),
        }
    }

    fn finished(&self, trace_len: usize) -> bool {
        self.cursor >= trace_len
            && self.active_transfers == 0
            && self.live_requests == 0
            && self.serving_count == 0
    }

    // ------------------------------------------------------------------
    // Trace feeding

    fn on_trace(&mut self, events: &[TraceEvent]) {
        while self.cursor < events.len() && events[self.cursor].time() <= self.now {
            let ev = events[self.cursor];
            self.cursor += 1;
            match ev {
                TraceEvent::Dma(d) => self.start_transfer(d.bus, d.page, d.bytes, d),
                TraceEvent::Proc(p) => self.on_proc_access(p.page),
            }
        }
        if self.cursor < events.len() {
            self.queue.schedule(events[self.cursor].time(), Ev::Trace);
        }
    }

    fn start_transfer(&mut self, bus: BusId, page: PageId, bytes: u64, d: dma_trace::DmaRecord) {
        assert!(
            (page as usize) < self.config.pages,
            "trace page {page} outside working set"
        );
        let bus = bus % self.buses.len();
        let tid = self.next_tid;
        self.next_tid += 1;
        let chip = self.page_map.chip_of(page);
        let slot = self.tracks.insert(Track {
            arrival: self.now,
            chip,
        });
        self.chips[chip].chip.dma_transfer_started(self.now);
        self.active_transfers += 1;
        self.obs.trace_transfer_started(tid, bus, self.now);
        self.tl_note(chip);
        if let Some(tracker) = &mut self.tracker {
            tracker.record(page);
        }
        let transfer =
            DmaTransfer::new(tid, bus, page, bytes, d.direction, d.source).with_slot(slot);
        self.buses[bus].add_transfer(self.now, transfer);
        self.schedule_bus_tick(bus);
    }

    fn on_proc_access(&mut self, page: PageId) {
        assert!(
            (page as usize) < self.config.pages,
            "trace page {page} outside working set"
        );
        let chip = self.page_map.chip_of(page);
        self.chips[chip].proc_ready.push_back(self.now);
        self.live_requests += 1;
        // Section 4.1.3: processor interference eats into the slack of the
        // chip's pending DMA requests.
        let pending = self.chips[chip].pending_count();
        if let Some(slack) = &mut self.slack {
            slack.debit_proc(self.proc_service, pending);
            if pending > 0 {
                let amount = self.proc_service.as_ps() as f64 * pending as f64;
                let balance = slack.slack_ps();
                self.obs
                    .slack_debit(self.now, DebitCause::Proc, amount, balance);
            }
        }
        // A processor access wakes the chip immediately (priority); pending
        // DMA requests ride along since the chip will be active anyway.
        if pending > 0 {
            self.release_chip(chip, ReleaseCause::ProcWake);
        } else {
            self.make_progress(chip);
        }
    }

    // ------------------------------------------------------------------
    // Bus handling

    fn schedule_bus_tick(&mut self, bus: BusId) {
        if let Some(t) = self.buses[bus].next_issue_time(self.now) {
            self.bus_gen[bus] += 1;
            self.queue.schedule(
                t,
                Ev::BusTick {
                    bus,
                    gen: self.bus_gen[bus],
                },
            );
        }
    }

    fn on_bus_tick(&mut self, bus: BusId, gen: u64) {
        if gen != self.bus_gen[bus] {
            return; // superseded
        }
        if let IssueOutcome::Issued(req) = self.buses[bus].issue(self.now) {
            self.on_dma_request(req);
        }
        self.schedule_bus_tick(bus);
    }

    fn on_dma_request(&mut self, req: DmaRequest) {
        self.dma_requests += 1;
        if let Some(slack) = &mut self.slack {
            let amount = slack.credit_request();
            let balance = slack.slack_ps();
            if self.obs.enabled() {
                self.obs.slack_credit(self.now, amount, balance);
            }
        }
        // simlint::allow(panic-path, "a request's slot is created at TransferStart and lives until the last completion; a vacant slot means the event queue itself is corrupt")
        let chip = self.tracks[req.slot].chip;
        let sleeping = matches!(
            self.chips[chip].chip.phase(),
            ChipPhase::Steady(m) if m.is_low_power()
        ) || matches!(self.chips[chip].chip.phase(), ChipPhase::GoingDown { .. });

        let gathering = req.is_first && self.scheme.ta.is_some() && sleeping;
        self.obs.trace_issued(
            req.transfer,
            req.is_first,
            req.is_last,
            sleeping && !gathering,
            self.now,
        );
        if gathering {
            // DMA-TA: buffer the first request; the stream stays blocked
            // until the ack at service start.
            let c = &mut self.chips[chip];
            c.pending.push(PendingFirst {
                req,
                arrival: self.now,
            });
            c.pending_per_bus[req.bus] += 1;
            self.live_requests += 1;
            self.ta_pending_total += 1;
            self.delayed_firsts += 1;
            let pending = self.chips[chip].pending_count();
            self.obs.ta_gather(self.now, chip, pending);
            self.obs.trace_gathered(req.transfer, self.now);
            self.check_release(chip);
        } else {
            self.enqueue_dma(chip, req);
        }
    }

    fn enqueue_dma(&mut self, chip: usize, req: DmaRequest) {
        self.chips[chip].dma_ready.push_back(ReadyDma {
            req,
            arrival: self.now,
        });
        self.live_requests += 1;
        self.make_progress(chip);
    }

    // ------------------------------------------------------------------
    // DMA-TA gather/release

    fn check_release(&mut self, chip: usize) {
        let (Some(slack), Some(rule)) = (&self.slack, &self.rule) else {
            return;
        };
        let c = &self.chips[chip];
        let Some(oldest) = c.pending.first() else {
            return;
        };
        // simlint::allow(panic-path, "release checks are only scheduled when the TA scheme is configured; scheme.ta is Some for the whole run")
        let max_delay = self.scheme.ta.expect("TA on").max_delay;
        if self.now.saturating_since(oldest.arrival) >= max_delay {
            self.release_chip(chip, ReleaseCause::MaxDelay);
        } else if rule.should_release(&c.pending_per_bus, slack.slack_ps()) {
            self.release_chip(chip, ReleaseCause::Rule);
        }
    }

    /// Moves a chip's gathered first requests into its ready queue and
    /// wakes it. Also used when a processor access forces the chip awake.
    fn release_chip(&mut self, chip: usize, cause: ReleaseCause) {
        let n = self.chips[chip].pending_count();
        if n > 0 {
            // Charge the activation latency against the guarantee.
            let wake_latency = match self.chips[chip].chip.phase() {
                ChipPhase::Steady(m) if m.is_low_power() => self.config.power_model.wake(m).latency,
                ChipPhase::GoingDown { to, .. } => self.config.power_model.wake(to).latency,
                _ => SimDuration::ZERO,
            };
            // Charge delay incurred since the last epoch boundary that
            // epoch accounting has not covered.
            let residual: f64 = self.chips[chip]
                .pending
                .iter()
                .map(|p| {
                    self.now
                        .saturating_since(p.arrival.max(self.last_epoch_tick))
                        .as_ps() as f64
                })
                .sum();
            if let Some(slack) = self.slack.as_mut() {
                slack.debit_wake(wake_latency, n);
                let wake_amount = wake_latency.as_ps() as f64 * n as f64;
                let after_wake = slack.slack_ps();
                slack.debit_residual(residual);
                let after_residual = slack.slack_ps();
                if wake_amount > 0.0 {
                    self.obs
                        .slack_debit(self.now, DebitCause::Wake, wake_amount, after_wake);
                }
                if residual > 0.0 {
                    self.obs
                        .slack_debit(self.now, DebitCause::Residual, residual, after_residual);
                }
            }
            self.obs.ta_release(self.now, chip, n, cause);
            for i in 0..self.chips[chip].pending.len() {
                let p = self.chips[chip].pending[i];
                self.dbg_pending_delay_ps += self.now.saturating_since(p.arrival).as_ps() as f64;
                self.obs.trace_released(p.req.transfer, self.now);
            }
            let c = &mut self.chips[chip];
            for p in &c.pending_per_bus {
                debug_assert!(*p as usize <= n);
            }
            c.pending_per_bus.iter_mut().for_each(|p| *p = 0);
            self.ta_pending_total -= n;
            // Drain in place so the pending buffer keeps its capacity
            // across gather/release cycles instead of reallocating.
            let ChipCtl {
                pending, dma_ready, ..
            } = c;
            for p in pending.drain(..) {
                dma_ready.push_back(ReadyDma {
                    req: p.req,
                    arrival: p.arrival,
                });
            }
        }
        self.make_progress(chip);
    }

    // ------------------------------------------------------------------
    // Chip service and power management

    /// Drives a chip forward: wake it if it has work while sleeping, start
    /// the next service if it is free, or arm the policy timer if idle.
    fn make_progress(&mut self, chip: usize) {
        self.tl_note(chip);
        let has_work = !self.chips[chip].queues_empty();
        match self.chips[chip].chip.phase() {
            // Deliberately NOT collapsed into a match guard: a failed guard
            // would fall through to the wake arm below and wake an
            // already-active chip.
            #[allow(clippy::collapsible_match)]
            ChipPhase::Steady(PowerMode::Active) => {
                if self.serving[chip].is_none() {
                    self.try_serve(chip);
                }
            }
            ChipPhase::Steady(_) if has_work => {
                let done = self.chips[chip].chip.begin_wake(self.now);
                self.timer_gen[chip] += 1; // cancel any armed sleep
                self.queue.schedule(done, Ev::TransitionDone { chip });
                self.note_transitions(chip);
                self.tl_note(chip);
            }
            ChipPhase::GoingDown { .. } if has_work => {
                self.wake_requested[chip] = true;
            }
            _ => {}
        }
    }

    fn try_serve(&mut self, chip: usize) {
        if !self.chips[chip].chip.is_free(self.now) || self.serving[chip].is_some() {
            return;
        }
        let gap_due = self.cpu_gap_due(chip);
        let c = &mut self.chips[chip];
        // Priority: processor > DMA > migration (Section 4.1.3, first
        // solution; migration hides in otherwise-idle cycles).
        if let Some(_arrival) = c.proc_ready.pop_front() {
            c.chip
                .begin_service(self.now, self.proc_service, EnergyCategory::ActiveServing);
            self.serving[chip] = Some(Serving::Proc);
            self.dma_streak[chip] = 0;
        } else if gap_due {
            // Section 4.1.3 second solution: cap DMA utilization of the
            // active cycles, leaving a cache-line-sized service gap for
            // processor accesses. The chip stays active (the gap is billed
            // as DMA-idle time by the usual classification).
            self.dma_streak[chip] = 0;
            self.queue
                .schedule(self.now + self.proc_service, Ev::CpuGapDone { chip });
            return;
        } else if let Some(r) = c.dma_ready.pop_front() {
            let service = self.service_time_memo(r.req.bytes);
            let c = &mut self.chips[chip];
            c.chip
                .begin_service(self.now, service, EnergyCategory::ActiveServing);
            self.serving[chip] = Some(Serving::Dma {
                req: r.req,
                arrival: r.arrival,
                service,
            });
            self.dma_streak[chip] += 1;
            if r.req.is_first {
                self.buses[r.req.bus].ack_first(r.req.transfer, self.now);
                self.schedule_bus_tick(r.req.bus);
            }
            self.obs.trace_serve_start(r.req.transfer, self.now);
        } else if let Some(dur) = c.mig_ready.pop_front() {
            c.chip
                .begin_service(self.now, dur, EnergyCategory::Migration);
            self.serving[chip] = Some(Serving::Migration);
        } else {
            // Idle: hand the chip to the low-level policy.
            self.arm_policy(chip);
            return;
        }
        self.serving_count += 1;
        let done = self.chips[chip].chip.busy_until();
        self.queue.schedule(done, Ev::ServiceDone { chip });
        self.tl_note(chip);
    }

    /// [`mempower::PowerModel::service_time`] behind a one-entry memo:
    /// DMA request sizes are uniform within a run (bus slot granularity),
    /// so the float division folds to a single compare in the hot path.
    #[inline]
    fn service_time_memo(&mut self, bytes: u64) -> SimDuration {
        if self.service_memo.0 != bytes {
            self.service_memo = (bytes, self.config.power_model.service_time(bytes));
        }
        self.service_memo.1
    }

    /// True when the CPU-reservation alternative is enabled and this chip
    /// has served enough consecutive DMA requests that the reserved share
    /// of active cycles is due.
    fn cpu_gap_due(&self, chip: usize) -> bool {
        let Some(reservation) = self.scheme.ta.and_then(|ta| ta.cpu_reservation) else {
            return false;
        };
        if self.chips[chip].dma_ready.is_empty() {
            return false;
        }
        // With fraction x of cycles for DMA, allow ceil(x / (1 - x))
        // consecutive DMA services between gaps.
        let limit = (reservation / (1.0 - reservation)).ceil().max(1.0) as u32;
        self.dma_streak[chip] >= limit
    }

    fn on_service_done(&mut self, chip: usize) {
        let Some(serving) = self.serving[chip].take() else {
            return; // spurious (cleared elsewhere)
        };
        self.serving_count -= 1;
        self.live_requests -= 1;
        match serving {
            Serving::Dma {
                req,
                arrival,
                service,
            } => {
                let delay = (self.now - arrival).saturating_sub(service).as_ps() as f64;
                if req.is_first {
                    self.dbg_first_post_release_ps += delay;
                } else {
                    self.dbg_nonfirst_delay_ps += delay;
                    // Chip-level queueing (over-aligned streams) eats into
                    // the performance budget like any other added delay.
                    if let Some(slack) = &mut self.slack {
                        slack.debit_queue(delay);
                        let balance = slack.slack_ps();
                        if delay > 0.0 {
                            self.obs
                                .slack_debit(self.now, DebitCause::Queue, delay, balance);
                        }
                    }
                }
                self.request_service.record(self.now - arrival);
                self.served += 1;
                self.service_sum_ps += (self.now - arrival).as_ps();
                self.obs.request_served(self.now - arrival);
                self.dma_serving += service;
                self.obs
                    .trace_serve_done(req.transfer, req.is_last, self.now);
                if req.is_last {
                    // is_last fires exactly once per transfer, so the slot
                    // created at transfer start is still occupied.
                    let track = self.tracks.remove(req.slot);
                    self.chips[chip].chip.dma_transfer_ended(self.now);
                    self.active_transfers -= 1;
                    self.transfers_done += 1;
                    self.transfer_response.record(self.now - track.arrival);
                }
            }
            Serving::Proc => {
                self.proc_done += 1;
            }
            Serving::Migration => {}
        }
        self.tl_note(chip);
        self.try_serve(chip);
    }

    fn arm_policy(&mut self, chip: usize) {
        let c = &mut self.chips[chip];
        debug_assert!(c.queues_empty() && self.serving[chip].is_none());
        self.idle_start[chip] = self.now;
        self.timer_gen[chip] += 1;
        let mode = c.chip.mode().unwrap_or(PowerMode::Active);
        if let Some((target, when)) = c.policy.next_step(mode, self.now) {
            self.planned_mode[chip] = Some(target);
            let gen = self.timer_gen[chip];
            self.queue
                .schedule(when.max(self.now), Ev::PolicyTimer { chip, gen });
        }
    }

    fn on_policy_timer(&mut self, chip: usize, gen: u64) {
        if gen != self.timer_gen[chip] {
            return; // superseded — the common stale-timer case
        }
        let c = &mut self.chips[chip];
        let steady_idle = match c.chip.phase() {
            ChipPhase::Steady(PowerMode::Active) => c.chip.is_free(self.now),
            ChipPhase::Steady(_) => true,
            _ => false,
        };
        if !steady_idle || self.serving[chip].is_some() || !c.queues_empty() {
            return;
        }
        let Some(target) = self.planned_mode[chip].take() else {
            return;
        };
        let done = self.chips[chip].chip.begin_sleep(self.now, target);
        self.queue.schedule(done, Ev::TransitionDone { chip });
        self.note_transitions(chip);
        self.tl_note(chip);
    }

    fn on_transition_done(&mut self, chip: usize) {
        let was_waking = matches!(self.chips[chip].chip.phase(), ChipPhase::Waking { .. });
        self.chips[chip].chip.complete_transition(self.now);
        self.tl_note(chip);
        let c = &mut self.chips[chip];
        if was_waking {
            let idle = self.now.saturating_since(self.idle_start[chip]);
            c.policy.observe_idle_period(idle);
            self.wake_requested[chip] = false;
            self.try_serve(chip);
        } else {
            // Settled into a low-power mode.
            if self.wake_requested[chip] || !c.queues_empty() {
                self.wake_requested[chip] = false;
                let done = c.chip.begin_wake(self.now);
                self.queue.schedule(done, Ev::TransitionDone { chip });
                self.note_transitions(chip);
            } else {
                // Arm the next deeper step (thresholds measured from the
                // start of the idle period).
                // simlint::allow(panic-path, "TransitionDone leaves the chip settled in a steady mode; mode() is None only mid-transition")
                let mode = c.chip.mode().expect("steady after transition");
                let idle_start = self.idle_start[chip];
                if let Some((target, when)) = c.policy.next_step(mode, idle_start) {
                    self.planned_mode[chip] = Some(target);
                    self.timer_gen[chip] += 1;
                    let gen = self.timer_gen[chip];
                    self.queue
                        .schedule(when.max(self.now), Ev::PolicyTimer { chip, gen });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Periodic events

    fn on_epoch_tick(&mut self, trace_len: usize) {
        let Some(ta) = self.scheme.ta else { return };
        self.last_epoch_tick = self.now;
        if let Some(slack) = &mut self.slack {
            slack.debit_epoch(ta.epoch, self.ta_pending_total);
            let balance = slack.slack_ps();
            if self.ta_pending_total > 0 {
                let amount = ta.epoch.as_ps() as f64 * self.ta_pending_total as f64;
                self.obs
                    .slack_debit(self.now, DebitCause::Epoch, amount, balance);
            }
        }
        self.obs.epoch_tick(self.now, self.ta_pending_total);
        if self.ta_pending_total > 0 {
            for chip in 0..self.chips.len() {
                if self.chips[chip].pending_count() > 0 {
                    self.check_release(chip);
                }
            }
        }
        // Keep ticking while there is (or may still be) work.
        if !(self.cursor >= trace_len && self.active_transfers == 0 && self.ta_pending_total == 0) {
            let mut next = self.now + ta.epoch;
            // Virtual-time fast-forward: with no gathered requests and no
            // observability consumers, every tick strictly before the next
            // real event is a provable no-op — `debit_epoch(e, 0)` moves no
            // slack, there are no releases to check, and nothing records
            // the tick. Jump the tick straight to the last epoch boundary
            // at or before that event, counting the skipped boundaries so
            // the phase call counts (and the profile's `events`) stay
            // identical to a tick-by-tick engine. Pop order is preserved:
            // the jumped tick lands at the same `(time, allocation-order)`
            // position the final skipped-to tick would have had.
            if !self.classic && self.ta_pending_total == 0 && self.obs_quiet {
                if let Some((t, _)) = self.queue.peek_key() {
                    let gap_ps = t.saturating_since(self.now).as_ps();
                    let epoch_ps = ta.epoch.as_ps();
                    let k = gap_ps / epoch_ps;
                    if k > 1 {
                        self.phases.note_n(Phase::Policy, k - 1);
                        next = self.now + SimDuration::from_ps(k * epoch_ps);
                    }
                }
            }
            self.queue.schedule(next, Ev::EpochTick);
        }
    }

    fn on_pl_interval(&mut self, trace_len: usize) {
        let Some(pl) = self.scheme.pl else { return };
        let fpc = self.config.frames_per_chip();
        // Bandwidth floor: the hot group must be able to absorb `p` of the
        // aggregate I/O bandwidth, or concentration would oversubscribe it.
        let bus_bw: f64 = self.config.buses.iter().map(|b| b.bytes_per_sec).sum();
        let rm = self.config.power_model.bandwidth_bytes_per_sec();
        let min_hot = ((pl.p * bus_bw / rm).ceil() as usize).max(1);
        let (moves, stats) = {
            // simlint::allow(panic-path, "PL epochs are only scheduled when the PL scheme is configured, and the tracker is built alongside it")
            let tracker = self.tracker.as_ref().expect("PL tracker");
            plan_and_apply_observed(tracker, &mut self.page_map, &pl, fpc, min_hot)
        };
        self.page_moves += moves.len() as u64;
        self.obs
            .pl_plan(self.now, stats.hot_pages, stats.hot_chips, &moves);
        // Each move is a page copy: read on the source chip, write on the
        // destination. Both sides burn active cycles billed to the
        // Migration category and really occupy the chips. With small
        // migration_chunk_bytes (Section 4.2.2), the copy is split into
        // chunks that fit the chip's inter-request idle gaps, so it hides
        // inside cycles the chip was burning anyway.
        let chunk_bytes = pl.migration_chunk_bytes.min(self.config.page_bytes).max(1);
        let chunks = self.config.page_bytes.div_ceil(chunk_bytes);
        let chunk_time = self.config.power_model.service_time(chunk_bytes);
        for m in &moves {
            for chip in [m.from, m.to] {
                for _ in 0..chunks {
                    self.chips[chip].mig_ready.push_back(chunk_time);
                    self.live_requests += 1;
                }
                self.make_progress(chip);
            }
        }
        if let Some(tracker) = &mut self.tracker {
            tracker.age();
        }
        if !(self.cursor >= trace_len && self.active_transfers == 0) {
            self.queue.schedule(self.now + pl.interval, Ev::PlInterval);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_trace::{DmaRecord, ProcRecord, TraceGen};
    use iobus::{DmaDirection, DmaSource};

    fn small_config() -> SystemConfig {
        SystemConfig::default()
    }

    fn dma_at(us: u64, bus: usize, page: u64) -> TraceEvent {
        TraceEvent::Dma(DmaRecord {
            time: SimTime::ZERO + SimDuration::from_us(us),
            bus,
            page,
            bytes: 8192,
            direction: DmaDirection::FromMemory,
            source: DmaSource::Network,
        })
    }

    fn proc_at(us: u64, page: u64) -> TraceEvent {
        TraceEvent::Proc(ProcRecord {
            time: SimTime::ZERO + SimDuration::from_us(us),
            page,
            bytes: 64,
        })
    }

    #[test]
    fn single_transfer_completes_with_one_third_uf() {
        // Figure 2(a): one 8-KB transfer over one PCI-X bus keeps the chip
        // at uf = 1/3.
        let sim = ServerSimulator::new(small_config(), Scheme::baseline());
        let trace = Trace::from_events(vec![dma_at(0, 0, 0)]);
        let r = sim.run(&trace);
        assert_eq!(r.transfers, 1);
        assert_eq!(r.dma_requests, 1024);
        let uf = r.utilization_factor();
        assert!((uf - 1.0 / 3.0).abs() < 0.02, "uf {uf}");
        // Transfer takes ~8192B / 1.064GB/s ~ 7.7 us.
        let resp = r.transfer_response.mean_ns() / 1000.0;
        assert!(resp > 7.0 && resp < 9.0, "response {resp} us");
    }

    #[test]
    fn aligned_transfers_raise_utilization() {
        // Three simultaneous transfers from three buses to the same chip
        // interleave: uf approaches 1.
        let sim = ServerSimulator::new(small_config(), Scheme::baseline());
        let trace = Trace::from_events(vec![dma_at(0, 0, 0), dma_at(0, 1, 1), dma_at(0, 2, 2)]);
        // Pages 0,1,2 are all on chip 0 under the sequential layout.
        let r = sim.run(&trace);
        assert_eq!(r.transfers, 3);
        let uf = r.utilization_factor();
        assert!(uf > 0.9, "uf {uf}");
    }

    #[test]
    fn skewed_transfers_waste_active_energy() {
        // The same three transfers arriving staggered overlap only
        // partially; uf sits between 1/3 and 1.
        let sim = ServerSimulator::new(small_config(), Scheme::baseline());
        let trace = Trace::from_events(vec![
            dma_at(0, 0, 0),
            dma_at(3, 1, 1), // 3 us into the ~7.7 us first transfer
            dma_at(6, 2, 2),
        ]);
        let r = sim.run(&trace);
        let uf = r.utilization_factor();
        assert!(uf > 0.4 && uf < 0.9, "uf {uf}");
    }

    #[test]
    fn dma_ta_gathers_and_aligns() {
        // Staggered transfers, but DMA-TA with ample slack gathers them.
        // Warm-up transfers to a far chip earn the slack; the chip under
        // test has gone to sleep by the time the staggered burst arrives.
        let config = small_config();
        let mut events: Vec<TraceEvent> = (0..8u64)
            .map(|i| dma_at(i * 10, (i % 3) as usize, 40_000))
            .collect();
        events.extend([dma_at(500, 0, 0), dma_at(503, 1, 1), dma_at(506, 2, 2)]);
        let trace = Trace::from_events(events);
        let baseline = ServerSimulator::new(config.clone(), Scheme::baseline()).run(&trace);
        let ta = ServerSimulator::new(config, Scheme::dma_ta(2.0)).run(&trace);
        assert!(ta.delayed_firsts > 0, "TA never delayed anything");
        assert!(
            ta.utilization_factor() > baseline.utilization_factor() + 0.05,
            "TA uf {} vs baseline {}",
            ta.utilization_factor(),
            baseline.utilization_factor()
        );
        assert!(ta.energy.total_mj() < baseline.energy.total_mj());
    }

    #[test]
    fn zero_mu_means_no_delays_beyond_baseline() {
        // With mu = 0 there is no slack; TA must release immediately and
        // match baseline service times closely.
        let config = small_config();
        let trace = Trace::from_events(vec![dma_at(500, 0, 0), dma_at(520, 1, 40000)]);
        let ta = ServerSimulator::new(config, Scheme::dma_ta(0.0)).run(&trace);
        assert_eq!(ta.transfers, 2);
        // Mean per-request service stays within the no-delay envelope:
        // service time (2.5 ns) plus at most a wake (6 us amortized over
        // 1024 requests ~ 6 ns).
        assert!(ta.request_service.mean_ns() < 15.0);
    }

    #[test]
    fn proc_accesses_have_priority_and_complete() {
        let sim = ServerSimulator::new(small_config(), Scheme::baseline());
        let mut events = vec![dma_at(0, 0, 0)];
        for i in 0..50 {
            events.push(proc_at(i / 10, 0));
        }
        let r = sim.run(&Trace::from_events(events));
        assert_eq!(r.proc_accesses, 50);
        assert_eq!(r.transfers, 1);
    }

    #[test]
    fn proc_access_wakes_sleeping_chip_and_releases_pending() {
        let config = small_config();
        // A transfer is gathered on a sleeping chip; a processor access to
        // the same chip forces release.
        let trace = Trace::from_events(vec![dma_at(500, 0, 0), proc_at(501, 1)]);
        let r = ServerSimulator::new(config, Scheme::dma_ta(50.0)).run(&trace);
        assert_eq!(r.transfers, 1);
        assert_eq!(r.proc_accesses, 1);
    }

    #[test]
    fn pl_moves_hot_pages_and_charges_migration() {
        let config = small_config();
        // Hammer pages living on a far chip so PL must move them.
        let hot_pages: Vec<u64> = (0..8).map(|i| 60_000 + i).collect();
        let mut events = Vec::new();
        for round in 0..40u64 {
            for (i, &p) in hot_pages.iter().enumerate() {
                events.push(dma_at(round * 400 + i as u64 * 40, i % 3, p));
            }
        }
        let scheme = Scheme::dma_ta_pl(1.0, 2);
        let r = ServerSimulator::new(config, scheme).run(&Trace::from_events(events));
        assert!(r.page_moves > 0, "PL never migrated");
        assert!(
            r.energy.energy_mj(EnergyCategory::Migration) > 0.0,
            "migration energy not charged"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let config = small_config();
        let trace = dma_trace::SyntheticStorageGen::default().generate(SimDuration::from_ms(1), 3);
        let a = ServerSimulator::new(config.clone(), Scheme::dma_ta(0.5)).run(&trace);
        let b = ServerSimulator::new(config, Scheme::dma_ta(0.5)).run(&trace);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.dma_requests, b.dma_requests);
        assert_eq!(a.transfers, b.transfers);
    }

    #[test]
    fn baseline_energy_breakdown_shape() {
        // Idle-DMA waste ~ 2x serving energy; threshold waste small
        // (Figure 2(b) shape).
        let trace = dma_trace::SyntheticStorageGen::default().generate(SimDuration::from_ms(5), 11);
        let r = ServerSimulator::new(small_config(), Scheme::baseline()).run(&trace);
        let serving = r.energy.energy_mj(EnergyCategory::ActiveServing);
        let idle_dma = r.energy.energy_mj(EnergyCategory::ActiveIdleDma);
        let threshold = r.energy.energy_mj(EnergyCategory::ActiveIdleThreshold);
        assert!(
            idle_dma > serving * 1.5,
            "idle {idle_dma} vs serving {serving}"
        );
        assert!(
            idle_dma < serving * 2.5,
            "idle {idle_dma} vs serving {serving}"
        );
        assert!(threshold < idle_dma * 0.3, "threshold {threshold}");
    }

    #[test]
    fn cpu_reservation_leaves_gaps_and_still_completes() {
        let config = small_config();
        let mut scheme = Scheme::dma_ta(0.5);
        scheme.ta.as_mut().unwrap().cpu_reservation = Some(0.75);
        let trace = Trace::from_events(vec![dma_at(0, 0, 0), dma_at(0, 1, 1), dma_at(0, 2, 2)]);
        let r = ServerSimulator::new(config.clone(), scheme).run(&trace);
        assert_eq!(r.transfers, 3);
        // The reservation caps DMA utilization below the unreserved run.
        let unreserved = ServerSimulator::new(config, Scheme::dma_ta(0.5)).run(&trace);
        assert!(
            r.utilization_factor() <= unreserved.utilization_factor() + 1e-9,
            "reserved {} vs unreserved {}",
            r.utilization_factor(),
            unreserved.utilization_factor()
        );
        assert!(r.transfer_response.mean_ns() >= unreserved.transfer_response.mean_ns());
    }

    #[test]
    fn chunked_migration_hides_in_idle_cycles() {
        // Section 4.2.2: with request-sized migration chunks, PL's copies
        // slot into the chip's inter-request idle gaps instead of blocking
        // requests for whole-page copy times.
        let config = small_config();
        let trace = dma_trace::SyntheticStorageGen::default().generate(SimDuration::from_ms(8), 31);
        let blunt = ServerSimulator::new(config.clone(), Scheme::dma_ta_pl(1.0, 2)).run(&trace);
        let mut hidden_scheme = Scheme::dma_ta_pl(1.0, 2);
        hidden_scheme.pl.as_mut().unwrap().migration_chunk_bytes = 8;
        let hidden = ServerSimulator::new(config, hidden_scheme).run(&trace);
        assert!(blunt.page_moves > 0 && hidden.page_moves > 0);
        // Requests no longer queue behind whole-page copies: the mean
        // DMA-memory request service time drops.
        assert!(
            hidden.request_service.mean_ns() < blunt.request_service.mean_ns(),
            "hidden {} vs blunt {}",
            hidden.request_service.mean_ns(),
            blunt.request_service.mean_ns()
        );
        // And total energy does not rise (the copies displace idle cycles).
        assert!(
            hidden.energy.total_mj() <= blunt.energy.total_mj() * 1.01,
            "hidden {} vs blunt {}",
            hidden.energy.total_mj(),
            blunt.energy.total_mj()
        );
    }

    #[test]
    fn timeline_records_figure2a_pattern() {
        let config = small_config();
        let window_end = SimTime::ZERO + SimDuration::from_ns(200);
        let r = ServerSimulator::new(config, Scheme::baseline())
            .with_timeline(SimTime::ZERO, window_end)
            .run(&Trace::from_events(vec![dma_at(0, 0, 0)]));
        let rec = r.timeline.expect("timeline requested");
        // Within the window the chip alternates serving / DMA-idle at
        // uf = 1/3 (Figure 2a).
        let uf = rec.windowed_uf();
        assert!((uf - 1.0 / 3.0).abs() < 0.05, "windowed uf {uf}");
        let art = rec.render_active(48);
        assert!(art.contains('#') && art.contains('~'), "art:\n{art}");
    }

    #[test]
    #[should_panic(expected = "outside working set")]
    fn out_of_range_page_panics() {
        let sim = ServerSimulator::new(small_config(), Scheme::baseline());
        let trace = Trace::from_events(vec![dma_at(0, 0, 1_000_000)]);
        let _ = sim.run(&trace);
    }
}
