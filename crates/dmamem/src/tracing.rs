//! Transfer-level causal tracing and energy-waste attribution.
//!
//! The paper's core observation (Section 3, Figure 2) is *causal*: a DMA
//! transfer wakes a chip, then trickles requests at the I/O-bus rate, and
//! the chip burns active-idle energy in the gaps. Aggregate counters show
//! the waste exists; this module shows *where it comes from*, one
//! transfer at a time.
//!
//! [`Tracer`] turns the engine's hook stream into a
//! [`TraceBuffer`] span forest:
//!
//! * one **bus track** per I/O bus, where every DMA transfer is a root
//!   span ([`SPAN_TRANSFER`]) with child spans for the phases of its
//!   life — gather delay under DMA-TA ([`SPAN_GATHER_DELAY`]), chip
//!   wakeup ([`SPAN_WAKEUP`]), lockstep service ([`SPAN_LOCKSTEP`]),
//!   active-idle gaps between bus deliveries ([`SPAN_ACTIVE_IDLE`]) and
//!   the final queue drain after the last request lands
//!   ([`SPAN_DRAIN`]);
//! * one **chip track** per memory chip carrying its activity periods
//!   (serving / active-idle / threshold-idle / transitioning /
//!   low-power) plus a power counter ([`COUNTER_POWER`]) sampled at
//!   every mode transition.
//!
//! Export with [`TraceBuffer::to_chrome_json`] and load the file in
//! [Perfetto](https://ui.perfetto.dev) (or `chrome://tracing`).
//!
//! [`WasteBuckets`] and [`RunAttribution`] reduce a run's energy ledger
//! to the paper's waste taxonomy — useful active, active-idle during
//! DMA, threshold idle, wakeup, low-power — with the invariant that the
//! buckets sum to the run's total energy exactly (the mapping from
//! [`EnergyCategory`] is a partition, so the sum is the same floating
//! point additions the ledger itself performs).

use std::collections::BTreeMap;

use mempower::{EnergyBreakdown, EnergyCategory, PowerMode, TransitionEvent};
use simcore::obs::json::JsonObject;
use simcore::obs::trace::{SpanId, SpillSink, TraceBuffer, TrackId, TrackKind};
use simcore::SimTime;

use crate::metrics::SimResult;
use crate::timeline::ChipActivity;

/// Root span on a bus track: one whole DMA transfer, arrival to last
/// request served.
pub const SPAN_TRANSFER: &str = "dmamem.trace.transfer";
/// Child span: transfer is parked in the DMA-TA gather queue while its
/// target chip sleeps.
pub const SPAN_GATHER_DELAY: &str = "dmamem.trace.gather_delay";
/// Child span: target chip is powering up for this transfer.
pub const SPAN_WAKEUP: &str = "dmamem.trace.wakeup";
/// Child span: chip serving this transfer's requests in lockstep with
/// the I/O bus (more bus deliveries still to come).
pub const SPAN_LOCKSTEP: &str = "dmamem.trace.lockstep_active";
/// Child span (bus track): chip caught up with the bus and sits
/// active-idle until the next request of this transfer arrives. Also the
/// chip-track span name for [`ChipActivity::IdleDma`] periods.
pub const SPAN_ACTIVE_IDLE: &str = "dmamem.trace.active_idle";
/// Child span: every request has been delivered; the chip is draining
/// the tail of the queue.
pub const SPAN_DRAIN: &str = "dmamem.trace.drain";
/// Instant marker: DMA-TA released this transfer's gather group.
pub const MARK_RELEASE: &str = "dmamem.trace.release";
/// Chip-track span: chip actively serving a request.
pub const SPAN_SERVING: &str = "dmamem.trace.serving";
/// Chip-track span: chip idle above threshold with no DMA in flight.
pub const SPAN_IDLE_THRESHOLD: &str = "dmamem.trace.idle_threshold";
/// Chip-track span: chip transitioning between power modes.
pub const SPAN_TRANSITION: &str = "dmamem.trace.transition";
/// Chip-track span: chip settled in a low-power mode.
pub const SPAN_LOW_POWER: &str = "dmamem.trace.low_power";
/// Chip-track counter: chip power draw in milliwatts, sampled at every
/// mode transition.
pub const COUNTER_POWER: &str = "dmamem.trace.power_mw";
/// Run metric: trace records streamed to the spill sink instead of being
/// dropped when the span ring overflowed (see
/// [`TraceBuffer::arm_spill`](simcore::obs::trace::TraceBuffer::arm_spill)).
pub const COUNTER_SPILLED: &str = "dmamem.trace.spilled";
/// Run metric: trace records lost to ring overflow (no spill sink armed)
/// or to spill-sink write failures — loss is counted, never silent.
pub const COUNTER_DROPPED: &str = "dmamem.trace.dropped";

/// Where a transfer is in its life cycle (drives which child span is
/// open on the bus track).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Arrived; no request has reached the controller yet.
    Init,
    /// Parked in the DMA-TA gather queue.
    Gather,
    /// Waiting on the target chip's power-up.
    Wakeup,
    /// Chip serving in lockstep with the bus.
    Active,
    /// Chip caught up; waiting for the bus to deliver the next request.
    ActiveIdle,
    /// All requests delivered; draining the queue tail.
    Drain,
}

/// Per-transfer tracing state.
#[derive(Debug, Clone)]
struct TransferTrace {
    root: SpanId,
    track: TrackId,
    child: Option<SpanId>,
    phase: Phase,
    issued: u64,
    served: u64,
    last_issued: bool,
}

/// Builds the causal span trace from the engine's hook stream.
///
/// Created by [`crate::ServerSimulator::with_tracing`]; the engine calls
/// the hook methods through [`crate::obs::Obs`], and the finished
/// [`TraceBuffer`] lands in [`SimResult::trace`].
///
/// Timestamps are clamped monotonically: chip transition events are
/// drained in batches after the fact, so a late-drained event may carry
/// a stamp earlier than the latest hook already recorded. The clamp
/// keeps the buffer valid without perturbing order-sensitive spans
/// (hook calls themselves arrive in simulation order).
#[derive(Debug, Clone)]
pub struct Tracer {
    buf: TraceBuffer,
    chip_tracks: Vec<TrackId>,
    bus_tracks: Vec<TrackId>,
    chip_spans: Vec<Option<SpanId>>,
    mode_power_mw: [f64; 4],
    transfers: BTreeMap<u64, TransferTrace>,
    last: SimTime,
}

impl Tracer {
    /// A tracer with a `capacity`-record ring, one track per chip and per
    /// bus, and `mode_power_mw` giving the power draw of
    /// `[Active, Standby, Nap, Powerdown]` for the counter samples.
    pub fn new(capacity: usize, chips: usize, buses: usize, mode_power_mw: [f64; 4]) -> Self {
        let mut buf = TraceBuffer::new(capacity);
        let chip_tracks: Vec<TrackId> = (0..chips)
            .map(|i| buf.add_track(format!("chip {i}"), TrackKind::Chip))
            .collect();
        let bus_tracks = (0..buses)
            .map(|i| buf.add_track(format!("io bus {i}"), TrackKind::Bus))
            .collect();
        // Chips boot settled in Active: seed each power counter so the
        // track has a defined value from time zero.
        for &t in &chip_tracks {
            buf.counter(t, COUNTER_POWER, SimTime::ZERO, mode_power_mw[0]);
        }
        Tracer {
            buf,
            chip_tracks,
            bus_tracks,
            chip_spans: vec![None; chips],
            mode_power_mw,
            transfers: BTreeMap::new(),
            last: SimTime::ZERO,
        }
    }

    /// Arms bounded-memory spill mode: records displaced from the ring
    /// stream to `sink` instead of being dropped (open-span begins stay
    /// resident until their end). Must be called before the run starts;
    /// track registration has already happened in [`Tracer::new`], so the
    /// sink receives a complete Chrome JSON header.
    pub fn with_spill(mut self, sink: SpillSink) -> Self {
        self.buf.arm_spill(sink);
        self
    }

    fn at(&mut self, t: SimTime) -> SimTime {
        let t = t.max(self.last);
        self.last = t;
        t
    }

    fn mode_power(&self, mode: PowerMode) -> f64 {
        let slot = match mode {
            PowerMode::Active => 0,
            PowerMode::Standby => 1,
            PowerMode::Nap => 2,
            PowerMode::Powerdown => 3,
        };
        self.mode_power_mw[slot]
    }

    /// A DMA transfer arrived at the controller: open its root span.
    pub fn transfer_started(&mut self, tid: u64, bus: usize, now: SimTime) {
        let at = self.at(now);
        let Some(&track) = self.bus_tracks.get(bus) else {
            return;
        };
        let root = self.buf.begin(track, SPAN_TRANSFER, at, None);
        self.transfers.insert(
            tid,
            TransferTrace {
                root,
                track,
                child: None,
                phase: Phase::Init,
                issued: 0,
                served: 0,
                last_issued: false,
            },
        );
    }

    /// The bus delivered one request of transfer `tid` to the controller.
    /// `wake_pending` is true when the request triggers an immediate chip
    /// wake (no gathering).
    pub fn issued(
        &mut self,
        tid: u64,
        is_first: bool,
        is_last: bool,
        wake_pending: bool,
        now: SimTime,
    ) {
        let at = self.at(now);
        let Some(t) = self.transfers.get_mut(&tid) else {
            return;
        };
        t.issued += 1;
        if is_last {
            t.last_issued = true;
        }
        if is_first && wake_pending && t.phase == Phase::Init {
            t.child = Some(self.buf.begin(t.track, SPAN_WAKEUP, at, Some(t.root)));
            t.phase = Phase::Wakeup;
        }
    }

    /// DMA-TA parked transfer `tid` in the gather queue.
    pub fn gathered(&mut self, tid: u64, now: SimTime) {
        let at = self.at(now);
        let Some(t) = self.transfers.get_mut(&tid) else {
            return;
        };
        if let Some(c) = t.child.take() {
            self.buf.end(c, at);
        }
        t.child = Some(self.buf.begin(t.track, SPAN_GATHER_DELAY, at, Some(t.root)));
        t.phase = Phase::Gather;
    }

    /// DMA-TA released the gather group containing transfer `tid`.
    pub fn released(&mut self, tid: u64, now: SimTime) {
        let at = self.at(now);
        let Some(t) = self.transfers.get_mut(&tid) else {
            return;
        };
        if t.phase != Phase::Gather {
            return;
        }
        if let Some(c) = t.child.take() {
            self.buf.end(c, at);
        }
        self.buf.instant(t.track, MARK_RELEASE, at);
        t.child = Some(self.buf.begin(t.track, SPAN_WAKEUP, at, Some(t.root)));
        t.phase = Phase::Wakeup;
    }

    /// The chip began serving a request of transfer `tid`.
    pub fn serve_start(&mut self, tid: u64, now: SimTime) {
        let at = self.at(now);
        let Some(t) = self.transfers.get_mut(&tid) else {
            return;
        };
        match t.phase {
            Phase::Active => {
                // Back-to-back service from a queued backlog; once the bus
                // has delivered everything, the rest is drain.
                if t.last_issued {
                    if let Some(c) = t.child.take() {
                        self.buf.end(c, at);
                    }
                    t.child = Some(self.buf.begin(t.track, SPAN_DRAIN, at, Some(t.root)));
                    t.phase = Phase::Drain;
                }
            }
            Phase::Drain => {}
            Phase::Init | Phase::Gather | Phase::Wakeup | Phase::ActiveIdle => {
                if let Some(c) = t.child.take() {
                    self.buf.end(c, at);
                }
                let (name, phase) = if t.last_issued {
                    (SPAN_DRAIN, Phase::Drain)
                } else {
                    (SPAN_LOCKSTEP, Phase::Active)
                };
                t.child = Some(self.buf.begin(t.track, name, at, Some(t.root)));
                t.phase = phase;
            }
        }
    }

    /// The chip finished serving a request of transfer `tid`.
    pub fn serve_done(&mut self, tid: u64, is_last: bool, now: SimTime) {
        let at = self.at(now);
        let Some(t) = self.transfers.get_mut(&tid) else {
            return;
        };
        t.served += 1;
        if is_last {
            let root = t.root;
            if let Some(c) = t.child.take() {
                self.buf.end(c, at);
            }
            self.buf.end(root, at);
            self.transfers.remove(&tid);
            return;
        }
        if t.issued > t.served {
            // Backlog remains: the next service follows immediately, so the
            // open lockstep/drain span keeps running.
            return;
        }
        // Caught up with the bus: the chip sits active-idle until the next
        // request of this transfer is delivered.
        if let Some(c) = t.child.take() {
            self.buf.end(c, at);
        }
        t.child = Some(self.buf.begin(t.track, SPAN_ACTIVE_IDLE, at, Some(t.root)));
        t.phase = Phase::ActiveIdle;
    }

    /// Chip `chip` entered a new activity period (deduplicated upstream by
    /// [`crate::obs::Obs::note_activity`]).
    pub fn chip_activity(&mut self, chip: usize, now: SimTime, activity: ChipActivity) {
        let at = self.at(now);
        let Some(&track) = self.chip_tracks.get(chip) else {
            return;
        };
        if let Some(open) = self.chip_spans[chip].take() {
            self.buf.end(open, at);
        }
        let name = match activity {
            ChipActivity::Serving => SPAN_SERVING,
            ChipActivity::IdleDma => SPAN_ACTIVE_IDLE,
            ChipActivity::IdleOther => SPAN_IDLE_THRESHOLD,
            ChipActivity::Transitioning => SPAN_TRANSITION,
            ChipActivity::LowPower => SPAN_LOW_POWER,
        };
        self.chip_spans[chip] = Some(self.buf.begin(track, name, at, None));
    }

    /// Chip `chip` began a power-mode transition: drop a counter sample at
    /// the power of the mode being entered.
    pub fn transition(&mut self, chip: usize, ev: &TransitionEvent) {
        let at = self.at(ev.at);
        let Some(&track) = self.chip_tracks.get(chip) else {
            return;
        };
        let value = self.mode_power(ev.to);
        self.buf.counter(track, COUNTER_POWER, at, value);
    }

    /// Closes every open span at `horizon` and returns the finished
    /// buffer.
    pub fn into_buffer(mut self, horizon: SimTime) -> TraceBuffer {
        let at = self.at(horizon);
        self.buf.finish(at);
        self.buf
    }
}

/// The paper's energy-waste taxonomy for one scope (a run or one chip),
/// in millijoules.
///
/// The five buckets partition [`EnergyCategory`]:
/// useful-active ← `ActiveServing` + `Migration`, active-idle-during-DMA
/// ← `ActiveIdleDma`, idle-above-threshold ← `ActiveIdleThreshold`,
/// wakeup ← `Transition`, low-power ← `LowPower`. Because the mapping is
/// a partition, [`WasteBuckets::total_mj`] reproduces
/// [`EnergyBreakdown::total_mj`] up to float associativity
/// (≤ 1e-9 relative in practice; asserted by the test suite).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WasteBuckets {
    /// Energy spent actively serving requests (including PL page moves).
    pub useful_active_mj: f64,
    /// Active-idle energy burned while a DMA transfer was in flight to
    /// the chip — the waste DMA-TA attacks (Figure 2(b)).
    pub active_idle_dma_mj: f64,
    /// Active-idle energy above the power-down threshold with no DMA in
    /// flight.
    pub idle_threshold_mj: f64,
    /// Energy spent in power-mode transitions (dominated by wakeups).
    pub wakeup_mj: f64,
    /// Energy spent settled in low-power modes.
    pub low_power_mj: f64,
}

impl WasteBuckets {
    /// Bucket labels in [`WasteBuckets::as_array`] order (also the JSON
    /// field names).
    pub const LABELS: [&'static str; 5] = [
        "useful_active",
        "active_idle_dma",
        "idle_threshold",
        "wakeup",
        "low_power",
    ];

    /// Reduces an energy ledger to the waste buckets.
    pub fn from_breakdown(e: &EnergyBreakdown) -> Self {
        WasteBuckets {
            useful_active_mj: e.energy_mj(EnergyCategory::ActiveServing)
                + e.energy_mj(EnergyCategory::Migration),
            active_idle_dma_mj: e.energy_mj(EnergyCategory::ActiveIdleDma),
            idle_threshold_mj: e.energy_mj(EnergyCategory::ActiveIdleThreshold),
            wakeup_mj: e.energy_mj(EnergyCategory::Transition),
            low_power_mj: e.energy_mj(EnergyCategory::LowPower),
        }
    }

    /// The buckets in [`WasteBuckets::LABELS`] order.
    pub fn as_array(&self) -> [f64; 5] {
        [
            self.useful_active_mj,
            self.active_idle_dma_mj,
            self.idle_threshold_mj,
            self.wakeup_mj,
            self.low_power_mj,
        ]
    }

    /// Sum of all buckets (equals the source ledger's total).
    pub fn total_mj(&self) -> f64 {
        self.as_array().iter().sum()
    }

    /// Fraction of the total in one bucket (`LABELS` index); 0 for an
    /// empty ledger.
    pub fn fraction(&self, idx: usize) -> f64 {
        let total = self.total_mj();
        if total <= 0.0 {
            0.0
        } else {
            self.as_array()[idx] / total
        }
    }

    fn to_json(self) -> String {
        let mut obj = JsonObject::new();
        for (label, v) in Self::LABELS.iter().zip(self.as_array()) {
            obj.field_f64(label, v);
        }
        obj.finish()
    }
}

/// Energy-waste attribution for one simulation run: the run-level
/// buckets plus one [`WasteBuckets`] per chip.
#[derive(Debug, Clone, PartialEq)]
pub struct RunAttribution {
    /// Workload label ("OLTP-St", ...).
    pub workload: String,
    /// Scheme label ("baseline", "DMA-TA", ...).
    pub scheme: String,
    /// Run total energy straight from the ledger (the checksum the
    /// buckets must reproduce).
    pub total_mj: f64,
    /// Run-level buckets.
    pub buckets: WasteBuckets,
    /// Per-chip buckets, chip id order.
    pub per_chip: Vec<WasteBuckets>,
}

impl RunAttribution {
    /// Attribution for `r`, labeled with `workload`.
    pub fn from_result(workload: &str, r: &SimResult) -> Self {
        RunAttribution {
            workload: workload.to_string(),
            scheme: r.scheme.clone(),
            total_mj: r.energy.total_mj(),
            buckets: WasteBuckets::from_breakdown(&r.energy),
            per_chip: r
                .per_chip_energy
                .iter()
                .map(WasteBuckets::from_breakdown)
                .collect(),
        }
    }

    /// Largest relative error between any bucket sum and its ledger
    /// total: the run-level buckets against [`RunAttribution::total_mj`],
    /// and the per-chip sums against the run-level buckets.
    pub fn checksum_rel_err(&self) -> f64 {
        let scale = self.total_mj.abs().max(1.0);
        let mut err = (self.buckets.total_mj() - self.total_mj).abs() / scale;
        if !self.per_chip.is_empty() {
            for idx in 0..WasteBuckets::LABELS.len() {
                let sum: f64 = self.per_chip.iter().map(|b| b.as_array()[idx]).sum();
                err = err.max((sum - self.buckets.as_array()[idx]).abs() / scale);
            }
        }
        err
    }

    /// One human-readable summary line: total plus per-bucket percentages.
    pub fn summary_line(&self) -> String {
        let mut s = format!(
            "{:<10} {:<14} {:>10.3} mJ |",
            self.workload, self.scheme, self.total_mj
        );
        for (label, v) in WasteBuckets::LABELS.iter().zip(self.buckets.as_array()) {
            let pct = if self.total_mj > 0.0 {
                100.0 * v / self.total_mj
            } else {
                0.0
            };
            s.push_str(&format!(" {label} {pct:5.1}%"));
        }
        s
    }

    fn to_json(&self) -> String {
        let per_chip: Vec<String> = self.per_chip.iter().map(|b| b.to_json()).collect();
        let mut obj = JsonObject::new();
        obj.field_str("workload", &self.workload)
            .field_str("scheme", &self.scheme)
            .field_f64("total_mj", self.total_mj)
            .field_raw("buckets", &self.buckets.to_json())
            .field_raw("per_chip", &format!("[{}]", per_chip.join(",")));
        obj.finish()
    }
}

/// Renders a set of runs as the attribution-report JSON consumed by
/// `bench`'s `trace_diff` regression differ:
/// `{"runs":[{"workload","scheme","total_mj","buckets","per_chip"},...]}`.
pub fn attribution_json(runs: &[RunAttribution]) -> String {
    let body: Vec<String> = runs.iter().map(|r| r.to_json()).collect();
    format!("{{\"runs\":[\n{}\n]}}\n", body.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::TRACE_KEYS;
    use simcore::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    fn breakdown() -> EnergyBreakdown {
        let mut e = EnergyBreakdown::new();
        e.accrue(
            EnergyCategory::ActiveServing,
            300.0,
            SimDuration::from_us(10),
        );
        e.accrue(
            EnergyCategory::ActiveIdleDma,
            300.0,
            SimDuration::from_us(20),
        );
        e.accrue(
            EnergyCategory::ActiveIdleThreshold,
            300.0,
            SimDuration::from_us(5),
        );
        e.accrue(EnergyCategory::Transition, 170.0, SimDuration::from_us(2));
        e.accrue(EnergyCategory::LowPower, 3.0, SimDuration::from_us(50));
        e.accrue(EnergyCategory::Migration, 300.0, SimDuration::from_us(1));
        e
    }

    #[test]
    fn emitted_names_are_registered() {
        for name in [
            SPAN_TRANSFER,
            SPAN_GATHER_DELAY,
            SPAN_WAKEUP,
            SPAN_LOCKSTEP,
            SPAN_ACTIVE_IDLE,
            SPAN_DRAIN,
            MARK_RELEASE,
            SPAN_SERVING,
            SPAN_IDLE_THRESHOLD,
            SPAN_TRANSITION,
            SPAN_LOW_POWER,
            COUNTER_POWER,
            COUNTER_SPILLED,
            COUNTER_DROPPED,
        ] {
            assert!(TRACE_KEYS.contains(&name), "unregistered trace key {name}");
        }
        assert_eq!(TRACE_KEYS.len(), 14);
    }

    #[test]
    fn spill_armed_tracer_finalizes_to_ring_export() {
        let (sink, cell) = SpillSink::memory();
        let mut tr = Tracer::new(1 << 12, 1, 1, [300.0, 180.0, 30.0, 3.0]).with_spill(sink);
        tr.transfer_started(7, 0, t(1));
        tr.issued(7, true, true, true, t(2));
        tr.serve_start(7, t(3));
        tr.serve_done(7, true, t(4));
        let mut buf = tr.into_buffer(t(5));
        let ring_json = buf.to_chrome_json();
        assert_eq!(buf.spilled(), 0, "ample capacity: nothing spills early");
        buf.finalize_spill();
        let spilled = String::from_utf8(cell.lock().expect("spill buffer").clone()).unwrap();
        assert_eq!(spilled, ring_json);
    }

    #[test]
    fn lockstep_transfer_produces_balanced_tree() {
        let mut tr = Tracer::new(1 << 12, 1, 1, [300.0, 180.0, 30.0, 3.0]);
        tr.transfer_started(7, 0, t(1));
        tr.issued(7, true, false, true, t(2)); // wake pending -> wakeup child
        tr.serve_start(7, t(3)); // wakeup ends, lockstep begins
        tr.serve_done(7, false, t(4)); // caught up -> active_idle
        tr.issued(7, false, true, false, t(5));
        tr.serve_start(7, t(5)); // last issued -> drain
        tr.serve_done(7, true, t(6)); // root closes
        let buf = tr.into_buffer(t(10));
        let stats = buf.validate().expect("trace must validate");
        // Root + wakeup + lockstep + active_idle + drain.
        assert_eq!(stats.spans, 5);
        assert_eq!(stats.open, 0);
        let json = buf.to_chrome_json();
        assert!(json.contains(SPAN_WAKEUP) && json.contains(SPAN_DRAIN));
        assert!(json.contains(SPAN_LOCKSTEP) && json.contains(SPAN_ACTIVE_IDLE));
    }

    #[test]
    fn gathered_transfer_gets_gather_and_release() {
        let mut tr = Tracer::new(1 << 12, 2, 1, [300.0, 180.0, 30.0, 3.0]);
        tr.transfer_started(1, 0, t(1));
        tr.issued(1, true, false, false, t(1)); // gathering: no wake span yet
        tr.gathered(1, t(1));
        tr.released(1, t(40)); // gather ends, release mark, wakeup begins
        tr.serve_start(1, t(46));
        tr.issued(1, false, true, false, t(47));
        tr.serve_done(1, false, t(48));
        tr.serve_start(1, t(48));
        tr.serve_done(1, true, t(49));
        let buf = tr.into_buffer(t(50));
        buf.validate().expect("trace must validate");
        let json = buf.to_chrome_json();
        assert!(json.contains(SPAN_GATHER_DELAY));
        assert!(json.contains(MARK_RELEASE));
    }

    #[test]
    fn chip_activity_spans_close_in_order() {
        let mut tr = Tracer::new(1 << 12, 1, 1, [300.0, 180.0, 30.0, 3.0]);
        tr.chip_activity(0, t(0), ChipActivity::IdleOther);
        tr.chip_activity(0, t(2), ChipActivity::Serving);
        tr.chip_activity(0, t(3), ChipActivity::IdleDma);
        tr.chip_activity(0, t(5), ChipActivity::LowPower);
        let ev = TransitionEvent {
            at: t(4),
            from: PowerMode::Active,
            to: PowerMode::Nap,
            latency: SimDuration::from_ns(225),
        };
        tr.transition(0, &ev); // late-drained: clamps to t(5)
        let buf = tr.into_buffer(t(6));
        let stats = buf.validate().expect("chip track must stay LIFO-valid");
        assert_eq!(stats.open, 0);
        let json = buf.to_chrome_json();
        assert!(json.contains(COUNTER_POWER) && json.contains(SPAN_LOW_POWER));
    }

    #[test]
    fn out_of_range_ids_are_ignored() {
        let mut tr = Tracer::new(1 << 12, 1, 1, [300.0, 180.0, 30.0, 3.0]);
        tr.transfer_started(1, 99, t(1)); // bad bus: dropped
        tr.issued(1, true, false, true, t(2)); // unknown tid: dropped
        tr.serve_start(1, t(3));
        tr.serve_done(1, true, t(4));
        tr.chip_activity(42, t(1), ChipActivity::Serving);
        let buf = tr.into_buffer(t(5));
        let stats = buf.validate().expect("empty trace is valid");
        assert_eq!(stats.spans, 0);
    }

    #[test]
    fn buckets_partition_the_ledger() {
        let e = breakdown();
        let b = WasteBuckets::from_breakdown(&e);
        let rel = (b.total_mj() - e.total_mj()).abs() / e.total_mj();
        assert!(rel <= 1e-9, "bucket checksum off by {rel}");
        assert!(b.active_idle_dma_mj > b.useful_active_mj);
        assert!(b.fraction(1) > 0.0 && b.fraction(1) < 1.0);
    }

    #[test]
    fn attribution_json_round_trips() {
        let e = breakdown();
        let run = RunAttribution {
            workload: "OLTP-St".into(),
            scheme: "baseline".into(),
            total_mj: e.total_mj(),
            buckets: WasteBuckets::from_breakdown(&e),
            per_chip: vec![WasteBuckets::from_breakdown(&e)],
        };
        assert!(run.checksum_rel_err() > 0.0 || run.checksum_rel_err() == 0.0);
        let json = attribution_json(std::slice::from_ref(&run));
        let v = simcore::obs::json::parse(&json).expect("report must parse");
        let runs = v
            .get("runs")
            .and_then(|r| r.as_array())
            .expect("runs array");
        assert_eq!(runs.len(), 1);
        let total = runs[0]
            .get("total_mj")
            .and_then(|t| t.as_f64())
            .expect("total");
        assert!((total - e.total_mj()).abs() < 1e-12);
        let buckets = runs[0].get("buckets").expect("buckets");
        let idle = buckets
            .get("active_idle_dma")
            .and_then(|x| x.as_f64())
            .expect("bucket field");
        assert!((idle - run.buckets.active_idle_dma_mj).abs() < 1e-12);
        assert!(run.summary_line().contains("active_idle_dma"));
    }
}
