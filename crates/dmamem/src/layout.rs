//! The physical page map: logical pages to (chip, frame) placements.
//!
//! Both techniques operate on physical placement (paper Section 4): the
//! controller resolves every DMA-memory request's page through this map
//! (the `<old_location, new_location>` translation-table role), and PL
//! migrates pages by rewriting it.

use iobus::PageId;

use crate::config::SystemConfig;

/// Location of a page: which chip, which frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLoc {
    /// Chip index.
    pub chip: usize,
    /// Frame index within the chip.
    pub frame: usize,
}

/// Logical-page to physical-frame mapping with free-frame tracking.
///
/// # Example
///
/// ```
/// use dmamem::{PageMap, SystemConfig};
///
/// let config = SystemConfig::default();
/// let mut map = PageMap::new_sequential(&config);
/// let from = map.chip_of(0);
/// let dst = (from + 1) % config.chips;
/// assert!(map.move_page(0, dst));
/// assert_eq!(map.chip_of(0), dst);
/// ```
#[derive(Debug, Clone)]
pub struct PageMap {
    loc: Vec<PageLoc>,
    /// Per chip: frame -> occupying page.
    frames: Vec<Vec<Option<PageId>>>,
    /// Per chip: free frame indices (LIFO).
    free: Vec<Vec<usize>>,
    moves: u64,
}

impl PageMap {
    /// Lays pages out sequentially, spreading the working set evenly across
    /// all chips (each chip gets a contiguous run of `pages / chips` logical
    /// pages, leaving its remaining frames free).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]).
    pub fn new_sequential(config: &SystemConfig) -> Self {
        config.validate();
        let chips = config.chips;
        let fpc = config.frames_per_chip();
        let mut frames = vec![vec![None; fpc]; chips];
        let mut loc = Vec::with_capacity(config.pages);
        let mut next_frame = vec![0usize; chips];
        for page in 0..config.pages {
            let chip = page * chips / config.pages;
            let frame = next_frame[chip];
            assert!(frame < fpc, "chip {chip} overflow during initial layout");
            frames[chip][frame] = Some(page as PageId);
            next_frame[chip] += 1;
            loc.push(PageLoc { chip, frame });
        }
        let free = (0..chips)
            .map(|c| (next_frame[c]..fpc).rev().collect())
            .collect();
        PageMap {
            loc,
            frames,
            free,
            moves: 0,
        }
    }

    /// Number of chips.
    pub fn chips(&self) -> usize {
        self.frames.len()
    }

    /// Number of logical pages.
    pub fn pages(&self) -> usize {
        self.loc.len()
    }

    /// The chip currently holding `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn chip_of(&self, page: PageId) -> usize {
        self.loc[page as usize].chip
    }

    /// The full location of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn loc_of(&self, page: PageId) -> PageLoc {
        self.loc[page as usize]
    }

    /// Free frames remaining on `chip`.
    pub fn free_frames(&self, chip: usize) -> usize {
        self.free[chip].len()
    }

    /// Total page moves performed.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Iterates over the pages resident on `chip`.
    pub fn pages_on_chip(&self, chip: usize) -> impl Iterator<Item = PageId> + '_ {
        self.frames[chip].iter().filter_map(|f| *f)
    }

    /// Moves `page` to a free frame on `dst` chip. Returns `false` (and
    /// does nothing) if `dst` has no free frame or the page is already
    /// there.
    ///
    /// # Panics
    ///
    /// Panics if `page` or `dst` is out of range.
    pub fn move_page(&mut self, page: PageId, dst: usize) -> bool {
        let cur = self.loc[page as usize];
        if cur.chip == dst {
            return false;
        }
        let Some(frame) = self.free[dst].pop() else {
            return false;
        };
        self.frames[cur.chip][cur.frame] = None;
        self.free[cur.chip].push(cur.frame);
        self.frames[dst][frame] = Some(page);
        self.loc[page as usize] = PageLoc { chip: dst, frame };
        self.moves += 1;
        true
    }

    /// Exchanges the frames of two pages (the paper's swap-bounded
    /// shuffling when both sides are full). No-op returning `false` when
    /// the pages already share a chip.
    ///
    /// # Panics
    ///
    /// Panics if either page is out of range or `a == b`.
    pub fn swap_pages(&mut self, a: PageId, b: PageId) -> bool {
        assert_ne!(a, b, "cannot swap a page with itself");
        let la = self.loc[a as usize];
        let lb = self.loc[b as usize];
        if la.chip == lb.chip {
            return false;
        }
        self.frames[la.chip][la.frame] = Some(b);
        self.frames[lb.chip][lb.frame] = Some(a);
        self.loc[a as usize] = lb;
        self.loc[b as usize] = la;
        self.moves += 2;
        true
    }

    /// Finds a page on `chip` for which `victim_ok` holds (used to make
    /// room by evicting a cold page). Deterministic: scans frames in order.
    pub fn find_victim(&self, chip: usize, victim_ok: impl Fn(PageId) -> bool) -> Option<PageId> {
        self.pages_on_chip(chip).find(|&p| victim_ok(p))
    }

    /// Checks internal invariants (every page in exactly one frame, free
    /// lists consistent). Used by tests and debug assertions.
    pub fn check_invariants(&self) {
        let mut seen = vec![false; self.loc.len()];
        for (chip, frames) in self.frames.iter().enumerate() {
            let mut occupied = 0;
            for (fi, f) in frames.iter().enumerate() {
                if let Some(p) = *f {
                    occupied += 1;
                    assert_eq!(
                        self.loc[p as usize],
                        PageLoc { chip, frame: fi },
                        "page {p} location mismatch"
                    );
                    assert!(!seen[p as usize], "page {p} mapped twice");
                    seen[p as usize] = true;
                }
            }
            assert_eq!(
                occupied + self.free[chip].len(),
                frames.len(),
                "chip {chip} free-list inconsistent"
            );
        }
        assert!(seen.iter().all(|&s| s), "some page unmapped");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SystemConfig {
        // 4 chips x 8 frames, 16 pages (half full).
        SystemConfig {
            chips: 4,
            power_model: mempower::PowerModel::rdram().with_chip_bytes(8 * 8192),
            pages: 16,
            ..Default::default()
        }
    }

    #[test]
    fn sequential_layout_spreads_evenly() {
        let map = PageMap::new_sequential(&small_config());
        map.check_invariants();
        for chip in 0..4 {
            assert_eq!(map.pages_on_chip(chip).count(), 4);
            assert_eq!(map.free_frames(chip), 4);
        }
        assert_eq!(map.chip_of(0), 0);
        assert_eq!(map.chip_of(15), 3);
        // Contiguous runs.
        assert_eq!(map.chip_of(4), 1);
        assert_eq!(map.chip_of(7), 1);
    }

    #[test]
    fn move_page_updates_everything() {
        let mut map = PageMap::new_sequential(&small_config());
        assert!(map.move_page(0, 3));
        assert_eq!(map.chip_of(0), 3);
        assert_eq!(map.free_frames(0), 5);
        assert_eq!(map.free_frames(3), 3);
        assert_eq!(map.moves(), 1);
        map.check_invariants();
    }

    #[test]
    fn move_to_same_chip_is_noop() {
        let mut map = PageMap::new_sequential(&small_config());
        assert!(!map.move_page(0, 0));
        assert_eq!(map.moves(), 0);
    }

    #[test]
    fn move_fails_when_full() {
        let mut map = PageMap::new_sequential(&small_config());
        // Fill chip 0 (4 free frames) with pages from chip 1.
        for page in 4..8 {
            assert!(map.move_page(page, 0));
        }
        assert_eq!(map.free_frames(0), 0);
        assert!(!map.move_page(8, 0), "move into full chip must fail");
        map.check_invariants();
    }

    #[test]
    fn find_victim_respects_predicate() {
        let map = PageMap::new_sequential(&small_config());
        // Chip 2 holds pages 8..12; only odd pages are evictable.
        let v = map.find_victim(2, |p| p % 2 == 1);
        assert_eq!(v, Some(9));
        assert_eq!(map.find_victim(2, |_| false), None);
    }

    #[test]
    fn full_occupancy_layout() {
        // pages == frames: no free frames anywhere.
        let config = SystemConfig {
            chips: 4,
            power_model: mempower::PowerModel::rdram().with_chip_bytes(8 * 8192),
            pages: 32,
            ..Default::default()
        };
        let map = PageMap::new_sequential(&config);
        map.check_invariants();
        for chip in 0..4 {
            assert_eq!(map.free_frames(chip), 0);
        }
    }

    #[test]
    fn moves_roundtrip_preserves_invariants() {
        let mut map = PageMap::new_sequential(&small_config());
        for i in 0..16u64 {
            let dst = ((i * 7) % 4) as usize;
            map.move_page(i, dst);
        }
        map.check_invariants();
    }
}
