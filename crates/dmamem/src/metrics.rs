//! Simulation results and derived metrics.

use mempower::{EnergyBreakdown, EnergyCategory, ModeResidency};
use simcore::obs::trace::TraceBuffer;
use simcore::stats::DurationStats;
use simcore::{EngineProfile, SimDuration};

use crate::obs::{RunObs, SlackSummary};
use crate::timeline::TimelineRecorder;

/// Everything a simulation run measured.
///
/// Produced by [`crate::ServerSimulator::run`]; the experiment harness
/// combines several of these into the paper's tables and figures.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Scheme label ("baseline", "DMA-TA", "DMA-TA-PL(2)", ...).
    pub scheme: String,
    /// Aggregate energy breakdown across all chips.
    pub energy: EnergyBreakdown,
    /// Per-chip total energy in millijoules (hot/cold structure).
    pub per_chip_mj: Vec<f64>,
    /// Per-chip energy breakdowns (same category split as [`Self::energy`],
    /// one ledger per chip; drives the per-chip attribution report).
    pub per_chip_energy: Vec<EnergyBreakdown>,
    /// Per-chip power-mode residency (time settled in each mode plus
    /// transitioning; sums to the horizon per chip).
    pub per_chip_residency: Vec<ModeResidency>,
    /// Simulated horizon (start to last accounted instant).
    pub horizon: SimDuration,
    /// DMA-memory requests served.
    pub dma_requests: u64,
    /// DMA transfers completed.
    pub transfers: u64,
    /// Processor accesses served.
    pub proc_accesses: u64,
    /// Per-DMA-memory-request service time (controller arrival to service
    /// completion) — the quantity the performance guarantee bounds.
    pub request_service: DurationStats,
    /// Per-transfer response time (transfer arrival to last request
    /// served) — the client-perceived latency proxy.
    pub transfer_response: DurationStats,
    /// Time chips spent actively serving DMA-memory requests (excludes
    /// processor accesses) — `T_useful` of the utilization factor.
    pub dma_serving: SimDuration,
    /// Chip wake-ups performed.
    pub wakes: u64,
    /// First requests the controller delayed (DMA-TA gathering).
    pub delayed_firsts: u64,
    /// Page moves performed by PL.
    pub page_moves: u64,
    /// The `mu` budget in force (0 when TA is off).
    pub mu: f64,
    /// The system's sleep-floor power (all chips in the deepest mode), in
    /// milliwatts — used to extend runs to a common horizon for fair
    /// energy comparison.
    pub sleep_floor_mw: f64,
    /// Final slack-account summary (present when DMA-TA ran with a
    /// guarantee budget).
    pub slack: Option<SlackSummary>,
    /// Observability report — metrics snapshot and the recorded event
    /// stream (see [`crate::ServerSimulator::with_observability`]).
    pub obs: Option<RunObs>,
    /// Chip-activity timeline, if recording was requested (see
    /// [`crate::ServerSimulator::with_timeline`]).
    pub timeline: Option<TimelineRecorder>,
    /// Causal span trace, if tracing was requested (see
    /// [`crate::ServerSimulator::with_tracing`]).
    pub trace: Option<TraceBuffer>,
    /// Engine self-profile: deterministic hot-path counters (always
    /// collected) plus wall-clock phase ns when
    /// [`crate::ServerSimulator::with_profiling`] armed them.
    pub profile: EngineProfile,
}

impl SimResult {
    /// The utilization factor `uf = T_useful / T_tot` (Section 5.3):
    /// DMA serving time over total chip-active time attributable to DMA
    /// transfers (serving + inter-request idle). 1.0 when no DMA activity.
    pub fn utilization_factor(&self) -> f64 {
        let idle = self.energy.time(EnergyCategory::ActiveIdleDma);
        let tot = self.dma_serving + idle;
        if tot.is_zero() {
            1.0
        } else {
            self.dma_serving.ratio(tot)
        }
    }

    /// Average power over the horizon, in milliwatts.
    pub fn avg_power_mw(&self) -> f64 {
        let secs = self.horizon.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            // mJ / s = mW.
            self.energy.total_mj() / secs
        }
    }

    /// Total energy if the run were extended to horizon `h` with every
    /// chip asleep at the floor (how a longer-tailed comparison run would
    /// behave after this one finishes its work).
    pub fn energy_mj_at(&self, h: SimDuration) -> f64 {
        let extra = h.saturating_sub(self.horizon);
        self.energy.total_mj() + self.sleep_floor_mw * extra.as_secs_f64()
    }

    /// Fractional energy savings versus `baseline` (positive = saved).
    ///
    /// Schemes that delay work can run slightly longer than the baseline;
    /// both runs are extended to the later horizon at the sleep-floor power
    /// so neither side is charged or credited for idle tail time the other
    /// does not see.
    pub fn savings_vs(&self, baseline: &SimResult) -> f64 {
        let h = self.horizon.max(baseline.horizon);
        let base = baseline.energy_mj_at(h);
        assert!(base > 0.0, "baseline consumed no energy");
        (base - self.energy_mj_at(h)) / base
    }

    /// Client-perceived degradation versus `baseline`: relative increase of
    /// the mean transfer response time. Negative values (faster than
    /// baseline) are possible and clamp naturally.
    pub fn response_degradation_vs(&self, baseline: &SimResult) -> f64 {
        let base = baseline.transfer_response.mean_ns();
        if base == 0.0 {
            0.0
        } else {
            (self.transfer_response.mean_ns() - base) / base
        }
    }

    /// Whether the per-request soft guarantee held: the mean DMA-memory
    /// request service time stayed within `(1 + mu)` of the reference time
    /// `t_ref` (measured on a no-alignment, no-power-management run, per
    /// Section 4.1.2).
    pub fn guarantee_met(&self, t_ref: SimDuration) -> bool {
        self.request_service.mean_ns() <= (1.0 + self.mu) * t_ref.as_ns_f64() + 1e-9
    }
}

impl std::fmt::Display for SimResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {:.3} mJ over {} ({:.1} mW), uf={:.2}",
            self.scheme,
            self.energy.total_mj(),
            self.horizon,
            self.avg_power_mw(),
            self.utilization_factor()
        )?;
        write!(
            f,
            "  {} transfers, {} requests (mean service {:.1} ns), {} proc, {} wakes, {} delayed firsts, {} moves",
            self.transfers,
            self.dma_requests,
            self.request_service.mean_ns(),
            self.proc_accesses,
            self.wakes,
            self.delayed_firsts,
            self.page_moves
        )?;
        if let Some(s) = &self.slack {
            write!(
                f,
                "\n  slack: {} credits, debits epoch {:.1}/wake {:.1}/proc {:.1}/queue {:.1} us, final {:.1} us (min {:.1})",
                s.credited,
                s.debit_epoch_ps / 1e6,
                s.debit_wake_ps / 1e6,
                s.debit_proc_ps / 1e6,
                s.debit_queue_ps / 1e6,
                s.final_ps / 1e6,
                s.min_ps / 1e6
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(total_serving_ns: u64, idle_dma_ns: u64) -> SimResult {
        let mut energy = EnergyBreakdown::new();
        energy.accrue(
            EnergyCategory::ActiveServing,
            300.0,
            SimDuration::from_ns(total_serving_ns),
        );
        energy.accrue(
            EnergyCategory::ActiveIdleDma,
            300.0,
            SimDuration::from_ns(idle_dma_ns),
        );
        SimResult {
            scheme: "test".into(),
            energy,
            per_chip_mj: vec![],
            per_chip_energy: vec![],
            per_chip_residency: vec![],
            horizon: SimDuration::from_us(1),
            dma_requests: 10,
            transfers: 1,
            proc_accesses: 0,
            request_service: DurationStats::new(),
            transfer_response: DurationStats::new(),
            dma_serving: SimDuration::from_ns(total_serving_ns),
            wakes: 0,
            delayed_firsts: 0,
            page_moves: 0,
            mu: 0.0,
            sleep_floor_mw: 96.0,
            slack: None,
            obs: None,
            timeline: None,
            trace: None,
            profile: EngineProfile::default(),
        }
    }

    #[test]
    fn utilization_factor_matches_figure2a() {
        let r = mk(4, 8);
        assert!((r.utilization_factor() - 1.0 / 3.0).abs() < 1e-9);
        let full = mk(12, 0);
        assert_eq!(full.utilization_factor(), 1.0);
    }

    #[test]
    fn savings_and_power() {
        let base = mk(4, 8);
        let better = mk(4, 2);
        assert!(better.savings_vs(&base) > 0.0);
        assert!(base.avg_power_mw() > 0.0);
    }

    #[test]
    fn guarantee_check_uses_mu() {
        let mut r = mk(4, 8);
        r.request_service.record(SimDuration::from_ns(9));
        r.mu = 0.5;
        assert!(r.guarantee_met(SimDuration::from_ns(8))); // limit 12 ns
        r.mu = 0.0;
        assert!(!r.guarantee_met(SimDuration::from_ns(8)));
    }

    #[test]
    fn display_mentions_scheme() {
        let r = mk(1, 1);
        let s = r.to_string();
        assert!(s.contains("test") && s.contains("uf="));
    }
}
