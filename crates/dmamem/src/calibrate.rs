//! Off-line CP-Limit to `mu` transformation (paper Section 5.1).
//!
//! The evaluation expresses the performance budget as **CP-Limit**, the
//! maximum *client-perceived* average response-time degradation, and
//! transforms it off-line into the per-request budget `mu` that DMA-TA
//! actually takes. The transformation runs a short baseline simulation to
//! measure the average transfer response time `R` and the requests per
//! transfer `q`: slowing every DMA-memory request by `mu * T` adds
//! `q * mu * T` to a transfer, so a degradation limit of `cp` allows
//! `mu = cp * R / (q * T)`.

use dma_trace::Trace;
use simcore::SimDuration;

use crate::config::{PolicyKind, Scheme, SystemConfig};
use crate::system::ServerSimulator;

/// Computes `mu` for a client-perceived degradation limit `cp_limit`
/// (e.g. `0.10` for 10 %), using `trace` as the calibration workload.
/// `client_extra` is the portion of the client response time outside the
/// memory DMA path (disk time, query processing — see
/// [`crate::experiments::Workload::client_extra_latency`]); pass
/// `SimDuration::ZERO` to bound the raw DMA-path degradation instead.
///
/// # Panics
///
/// Panics if `cp_limit` is negative/not finite or the trace completes no
/// transfers.
pub fn mu_for_cp_limit(
    config: &SystemConfig,
    trace: &Trace,
    cp_limit: f64,
    client_extra: SimDuration,
) -> f64 {
    assert!(
        cp_limit >= 0.0 && cp_limit.is_finite(),
        "invalid CP-Limit: {cp_limit}"
    );
    let base = ServerSimulator::new(config.clone(), Scheme::baseline()).run(trace);
    assert!(
        base.transfers > 0,
        "calibration trace completed no transfers"
    );
    let q = base.dma_requests as f64 / base.transfers as f64;
    let r_ns = base.transfer_response.mean_ns() + client_extra.as_ns_f64();
    let t_ns = config.t_request().as_ns_f64();
    cp_limit * r_ns / (q * t_ns)
}

/// Measures the reference per-request service time `T` of Section 4.1.2:
/// the mean DMA-memory request service time with *no temporal alignment and
/// no power management* (chips always active).
pub fn reference_request_time(config: &SystemConfig, trace: &Trace) -> SimDuration {
    let mut cfg = config.clone();
    cfg.policy = PolicyKind::AlwaysActive;
    let r = ServerSimulator::new(cfg, Scheme::baseline()).run(trace);
    r.request_service.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_trace::{SyntheticStorageGen, TraceGen};

    fn short_trace() -> Trace {
        SyntheticStorageGen::default().generate(SimDuration::from_ms(2), 5)
    }

    #[test]
    fn mu_scales_linearly_with_cp() {
        let config = SystemConfig::default();
        let trace = short_trace();
        let mu10 = mu_for_cp_limit(&config, &trace, 0.10, SimDuration::from_ms(2));
        let mu20 = mu_for_cp_limit(&config, &trace, 0.20, SimDuration::from_ms(2));
        assert!(mu10 > 0.0);
        assert!((mu20 / mu10 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mu_magnitude_is_sane() {
        // Response ~ transfer time (+ wakes/queueing), q*T = transfer time:
        // mu should land within an order of magnitude of cp.
        let config = SystemConfig::default();
        let mu = mu_for_cp_limit(&config, &short_trace(), 0.10, SimDuration::ZERO);
        assert!(mu > 0.01 && mu < 2.0, "mu {mu}");
        // With a disk-dominated client response the budget is much larger.
        let mu_disk = mu_for_cp_limit(&config, &short_trace(), 0.10, SimDuration::from_ms(2));
        assert!(mu_disk > mu * 10.0, "mu_disk {mu_disk}");
    }

    #[test]
    fn reference_time_close_to_chip_service() {
        // Without PM or alignment, a request is served in ~4 memory cycles
        // (2.5 ns) plus occasional queueing.
        let config = SystemConfig::default();
        let t = reference_request_time(&config, &short_trace());
        assert!(
            t >= SimDuration::from_ps(2_500) && t < SimDuration::from_ns(10),
            "T = {t}"
        );
    }

    #[test]
    fn zero_cp_gives_zero_mu() {
        let config = SystemConfig::default();
        assert_eq!(
            mu_for_cp_limit(&config, &short_trace(), 0.0, SimDuration::from_ms(1)),
            0.0
        );
    }
}
