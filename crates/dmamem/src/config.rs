//! System and scheme configuration.

use iobus::BusConfig;
use mempower::policy::{
    AlwaysActive, DynamicThresholdPolicy, PowerPolicy, SelfTuningPolicy, StaticPolicy,
};
use mempower::{PowerMode, PowerModel};
use simcore::SimDuration;

/// Which low-level power-management policy runs under the DMA-aware schemes
/// (paper Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// No power management; chips stay active (used for calibration).
    AlwaysActive,
    /// Drop to a fixed mode whenever idle.
    Static(PowerMode),
    /// The dynamic threshold policy of Lebeck et al. — the paper's baseline.
    /// `scale` multiplies the default thresholds (1.0 = defaults); the
    /// threshold-sensitivity ablation sweeps it.
    Dynamic {
        /// Threshold multiplier.
        scale: f64,
    },
    /// Adaptive thresholds in the spirit of Li et al. (extension).
    SelfTuning,
}

impl PolicyKind {
    /// Instantiates one policy (per chip; adaptive policies keep per-chip
    /// state).
    pub fn build(&self, model: &PowerModel) -> Box<dyn PowerPolicy> {
        match *self {
            PolicyKind::AlwaysActive => Box::new(AlwaysActive),
            PolicyKind::Static(mode) => Box::new(StaticPolicy::new(mode)),
            PolicyKind::Dynamic { scale } => {
                Box::new(DynamicThresholdPolicy::lebeck(model).scaled(scale))
            }
            PolicyKind::SelfTuning => Box::new(SelfTuningPolicy::new(model)),
        }
    }
}

/// DMA-TA (temporal alignment) parameters — paper Section 4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaConfig {
    /// The per-request performance-degradation budget `mu`: the average
    /// DMA-memory request service time may grow to `(1 + mu) * T`.
    /// Derived off-line from a client-perceived limit via
    /// [`crate::calibrate::mu_for_cp_limit`].
    pub mu: f64,
    /// Epoch length for the pessimistic slack-debit accounting.
    pub epoch: SimDuration,
    /// Upper bound on how long any single first request may be held.
    /// Delaying past the workload's per-chip arrival timescale gathers
    /// nothing more (Section 4.1.2: no need to delay beyond what full
    /// utilization requires), so the controller caps individual delays.
    pub max_delay: SimDuration,
    /// Optional Section 4.1.3 alternative: reserve this fraction of active
    /// cycles for processor accesses instead of strict CPU priority.
    /// `None` (the paper's evaluated choice) gives processor accesses strict
    /// priority.
    pub cpu_reservation: Option<f64>,
}

impl TaConfig {
    /// Creates a TA configuration with the default 1-us epoch.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is negative or not finite.
    pub fn new(mu: f64) -> Self {
        assert!(mu >= 0.0 && mu.is_finite(), "invalid mu: {mu}");
        TaConfig {
            mu,
            epoch: SimDuration::from_us(1),
            max_delay: SimDuration::from_us(500),
            cpu_reservation: None,
        }
    }
}

/// PL (popularity-based layout) parameters — paper Section 4.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlConfig {
    /// Number of popularity groups `K` (paper: 2 works best; 3 and 6 are
    /// evaluated in Figure 5).
    pub groups: usize,
    /// Fraction of accesses the hot chips should absorb (paper's `p`,
    /// default 60 %).
    pub p: f64,
    /// Reorganization interval (layout recomputation + migration).
    pub interval: SimDuration,
    /// Cost-benefit gate (paper future work): skip migrating pages whose
    /// recent access count is below this threshold (filters sampling-noise
    /// singletons out of the hot set). 0 disables the gate.
    pub min_count_to_migrate: u32,
    /// Upper bound on page moves per interval (controller translation-table
    /// and shuffle-time budget).
    pub max_moves_per_interval: usize,
    /// Migration copy granularity in bytes. The paper evaluates whole-page
    /// copies (the default) but describes an optimization (Section 4.2.2)
    /// that copies in small chunks so the traffic hides inside the chip's
    /// active-idle cycles; set this to the DMA-memory request size (8) or a
    /// cache line (64) to enable it.
    pub migration_chunk_bytes: u64,
}

impl PlConfig {
    /// Creates a PL configuration with `groups` groups and defaults
    /// elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `groups < 2`.
    pub fn new(groups: usize) -> Self {
        assert!(groups >= 2, "PL needs at least a hot and a cold group");
        PlConfig {
            groups,
            p: 0.6,
            interval: SimDuration::from_ms(5),
            min_count_to_migrate: 2,
            max_moves_per_interval: 8192,
            migration_chunk_bytes: 8192,
        }
    }
}

impl Default for PlConfig {
    fn default() -> Self {
        PlConfig::new(2)
    }
}

/// The memory-management scheme under evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheme {
    /// Temporal alignment, if enabled.
    pub ta: Option<TaConfig>,
    /// Popularity-based layout, if enabled.
    pub pl: Option<PlConfig>,
}

impl Scheme {
    /// The paper's baseline: low-level dynamic policy only.
    pub fn baseline() -> Self {
        Scheme { ta: None, pl: None }
    }

    /// DMA-TA only, with performance budget `mu`.
    pub fn dma_ta(mu: f64) -> Self {
        Scheme {
            ta: Some(TaConfig::new(mu)),
            pl: None,
        }
    }

    /// DMA-TA plus popularity-based layout with `groups` groups.
    pub fn dma_ta_pl(mu: f64, groups: usize) -> Self {
        Scheme {
            ta: Some(TaConfig::new(mu)),
            pl: Some(PlConfig::new(groups)),
        }
    }

    /// A short label for reports ("baseline", "DMA-TA", "DMA-TA-PL(2)").
    pub fn label(&self) -> String {
        match (self.ta, self.pl) {
            (None, None) => "baseline".to_string(),
            (Some(_), None) => "DMA-TA".to_string(),
            (Some(_), Some(pl)) => format!("DMA-TA-PL({})", pl.groups),
            (None, Some(pl)) => format!("PL({})", pl.groups),
        }
    }
}

/// Full system configuration: memory, buses, working set, low-level policy.
///
/// The default reproduces the paper's simulated system (Section 5.1): 32
/// 32-MB 1600-MHz RDRAM chips (1 GB), three 133-MHz 64-bit PCI-X buses,
/// 8-byte DMA-memory requests, 8-KB pages, dynamic threshold policy.
///
/// # Example
///
/// ```
/// use dmamem::SystemConfig;
///
/// let c = SystemConfig::default();
/// assert_eq!(c.chips, 32);
/// assert_eq!(c.buses.len(), 3);
/// assert_eq!(c.frames_per_chip(), 4096);
/// assert_eq!(c.k_buses_to_saturate(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of memory chips.
    pub chips: usize,
    /// The chip power/timing model.
    pub power_model: PowerModel,
    /// One config per I/O bus.
    pub buses: Vec<BusConfig>,
    /// Page size in bytes (the DMA transfer unit).
    pub page_bytes: u64,
    /// Logical working-set size in pages (must fit in the chips).
    pub pages: usize,
    /// Low-level power-management policy.
    pub policy: PolicyKind,
    /// Processor access size in bytes (one cache line).
    pub cache_line_bytes: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            chips: 32,
            power_model: PowerModel::rdram(),
            buses: vec![BusConfig::pci_x(); 3],
            page_bytes: 8192,
            pages: 65_536,
            policy: PolicyKind::Dynamic { scale: 1.0 },
            cache_line_bytes: 64,
        }
    }
}

impl SystemConfig {
    /// Page frames each chip holds.
    pub fn frames_per_chip(&self) -> usize {
        (self.power_model.chip_bytes() / self.page_bytes) as usize
    }

    /// Total page frames in the system.
    pub fn total_frames(&self) -> usize {
        self.frames_per_chip() * self.chips
    }

    /// `k = ceil(Rm / Rb)`: how many buses of the first bus's rate saturate
    /// one memory chip (paper Section 4.1.2).
    ///
    /// # Panics
    ///
    /// Panics if there are no buses.
    pub fn k_buses_to_saturate(&self) -> usize {
        assert!(!self.buses.is_empty(), "no buses configured");
        let rm = self.power_model.bandwidth_bytes_per_sec();
        let rb = self.buses[0].bytes_per_sec;
        // A 2% tolerance mirrors the paper's treatment of the 3.2/1.064
        // ratio (3.0075) as exactly 3: a bus set within a hair of full
        // utilization counts as saturating.
        ((rm / rb * 0.98).ceil() as usize).max(1)
    }

    /// The reference DMA-memory request time `T` used by the performance
    /// guarantee: the bus slot period (the pace of an unimpeded transfer).
    pub fn t_request(&self) -> SimDuration {
        self.buses[0].slot_period()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the working set does not fit in memory, there are no buses
    /// or chips, or the request size exceeds the page size.
    pub fn validate(&self) {
        assert!(self.chips > 0, "no memory chips");
        assert!(!self.buses.is_empty(), "no buses");
        assert!(self.pages > 0, "empty working set");
        assert!(
            self.pages <= self.total_frames(),
            "working set ({} pages) exceeds memory ({} frames)",
            self.pages,
            self.total_frames()
        );
        for b in &self.buses {
            assert!(
                b.request_bytes <= self.page_bytes,
                "request size {} exceeds page size {}",
                b.request_bytes,
                self.page_bytes
            );
        }
        assert!(
            self.cache_line_bytes > 0 && self.cache_line_bytes <= self.page_bytes,
            "bad cache line size"
        );
    }

    /// Replaces every bus with `n` copies of `bus`.
    pub fn with_buses(mut self, n: usize, bus: BusConfig) -> Self {
        self.buses = vec![bus; n];
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_system() {
        let c = SystemConfig::default();
        c.validate();
        assert_eq!(c.total_frames(), 131_072);
        // Rm/Rb = 3.2/1.064 ~ 3.
        assert_eq!(c.k_buses_to_saturate(), 3);
        // T = one 8-byte PCI-X slot ~ 7.5 ns ~ 12 memory cycles.
        let t = c.t_request();
        assert!(t.as_ns_f64() > 7.0 && t.as_ns_f64() < 8.0);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::baseline().label(), "baseline");
        assert_eq!(Scheme::dma_ta(0.5).label(), "DMA-TA");
        assert_eq!(Scheme::dma_ta_pl(0.5, 2).label(), "DMA-TA-PL(2)");
        assert_eq!(
            Scheme {
                ta: None,
                pl: Some(PlConfig::new(3))
            }
            .label(),
            "PL(3)"
        );
    }

    #[test]
    fn policy_kinds_build() {
        let model = PowerModel::rdram();
        for kind in [
            PolicyKind::AlwaysActive,
            PolicyKind::Static(PowerMode::Nap),
            PolicyKind::Dynamic { scale: 1.0 },
            PolicyKind::SelfTuning,
        ] {
            let p = kind.build(&model);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn ratio_sweep_changes_k() {
        // Figure 10: vary the I/O bus rate with memory fixed at 3.2 GB/s.
        let mk = |rate: f64| {
            SystemConfig::default()
                .with_buses(3, BusConfig::with_rate(rate))
                .k_buses_to_saturate()
        };
        assert_eq!(mk(3.2e9), 1);
        assert_eq!(mk(2.0e9), 2);
        assert_eq!(mk(1.064e9), 3);
        assert_eq!(mk(0.5e9), 7);
    }

    #[test]
    #[should_panic(expected = "exceeds memory")]
    fn oversized_working_set_panics() {
        let c = SystemConfig {
            pages: 200_000,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least a hot and a cold")]
    fn single_group_pl_panics() {
        let _ = PlConfig::new(1);
    }

    #[test]
    fn ta_config_defaults() {
        let ta = TaConfig::new(0.3);
        assert_eq!(ta.epoch, SimDuration::from_us(1));
        assert!(ta.cpu_reservation.is_none());
    }
}
