//! Property tests for the causal tracer: span trees must balance and
//! nest for every workload seed and worker-thread count, and the
//! exported trace must be byte-identical at any thread count.

use dmamem::experiments::{traced_runs_ctx, ExpConfig};
use dmamem::sweep::SweepCtx;
use dmamem::tracing::attribution_json;
use proptest::prelude::*;
use simcore::SimDuration;

fn exp(ms_tenths: u64, seed: u64) -> ExpConfig {
    ExpConfig {
        duration: SimDuration::from_us(100 * ms_tenths),
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every traced run, on any seed and any worker count, yields a
    /// balanced span forest: begin/end pair up, parents close after
    /// children, chip tracks stay strictly LIFO, and nothing stays open
    /// past `finish`. All of that is what `validate` checks.
    #[test]
    fn spans_balance_under_random_seeds_and_threads(
        seed in 0u64..1000,
        threads in 1usize..4,
        tenths in 2u64..6,
    ) {
        let ctx = SweepCtx::new(threads);
        for run in traced_runs_ctx(&ctx, exp(tenths, seed), 0.10, 1 << 18) {
            let trace = run.result.trace.as_ref().expect("traced run");
            let stats = trace.validate().map_err(|e| {
                proptest::test_runner::TestCaseError::fail(format!(
                    "{}: invalid trace: {e}", run.workload
                ))
            })?;
            prop_assert_eq!(stats.open, 0);
            prop_assert!(stats.records >= stats.spans);
        }
    }
}

/// The exported trace and attribution report are byte-identical
/// regardless of how many sweep workers computed the shared baselines:
/// the traced runs themselves stay serial and outside the memo.
#[test]
fn trace_export_is_thread_count_invariant() {
    let e = exp(10, 42); // 1 ms
    let render = |threads: usize| {
        let ctx = SweepCtx::new(threads);
        let runs = traced_runs_ctx(&ctx, e, 0.10, 1 << 18);
        let attribs: Vec<_> = runs.iter().map(|r| r.attribution()).collect();
        let traces: Vec<String> = runs
            .iter()
            .map(|r| {
                r.result
                    .trace
                    .as_ref()
                    .expect("traced run")
                    .to_chrome_json()
            })
            .collect();
        (traces, attribution_json(&attribs))
    };
    let (t1, a1) = render(1);
    let (t2, a2) = render(2);
    let (t8, a8) = render(8);
    assert_eq!(a1, a2);
    assert_eq!(a1, a8);
    assert_eq!(t1, t2);
    assert_eq!(t1, t8);
}
