//! Idle-gap fast-forward conservation: the engine's virtual-time jump
//! across empty epochs is *observationally* a no-op.
//!
//! [`ServerSimulator::with_classic_event_core`] disables the jump, so
//! every pair below runs the same trace both ways and demands identical
//! results: the five-bucket energy attribution (to the 1e-9 checksum
//! the attribution suite enforces), per-chip residency, horizon,
//! service/response statistics, and the deterministic `events` count
//! (the fast path books skipped epoch ticks via `note_n`, so even the
//! profile's phase calls match the classic engine exactly). The only
//! legitimate divergence is queue shape — the fast path *schedules*
//! fewer epoch ticks — and the test asserts that divergence is present,
//! so it cannot pass vacuously with the fast-forward never firing.

use dma_trace::{SyntheticStorageGen, Trace, TraceGen};
use dmamem::{Scheme, ServerSimulator, SystemConfig};
use mempower::EnergyCategory;
use simcore::prof::Phase;
use simcore::SimDuration;

/// A storage trace sparse enough that epochs go empty between transfer
/// bursts (mean inter-arrival 50 us vs. the 1-us TA epoch), so the
/// fast-forward has real gaps to jump.
fn sparse_trace(seed: u64) -> Trace {
    let gen = SyntheticStorageGen {
        transfers_per_ms: 20.0,
        ..SyntheticStorageGen::default()
    };
    gen.generate(SimDuration::from_ms(2), seed)
}

fn run_pair(scheme: Scheme, trace: &Trace) -> (dmamem::SimResult, dmamem::SimResult) {
    let fast = ServerSimulator::new(SystemConfig::default(), scheme).run(trace);
    let classic = ServerSimulator::new(SystemConfig::default(), scheme)
        .with_classic_event_core()
        .run(trace);
    (fast, classic)
}

/// Field-by-field identity of everything observable about a run.
fn assert_conserved(label: &str, fast: &dmamem::SimResult, classic: &dmamem::SimResult) {
    assert_eq!(fast.scheme, classic.scheme, "{label}: scheme label");
    assert_eq!(fast.energy, classic.energy, "{label}: energy breakdown");
    assert_eq!(
        fast.per_chip_mj, classic.per_chip_mj,
        "{label}: per-chip energy"
    );
    assert_eq!(
        fast.per_chip_energy, classic.per_chip_energy,
        "{label}: per-chip breakdowns"
    );
    assert_eq!(
        fast.per_chip_residency, classic.per_chip_residency,
        "{label}: residency"
    );
    assert_eq!(fast.horizon, classic.horizon, "{label}: horizon");
    assert_eq!(fast.dma_requests, classic.dma_requests, "{label}: requests");
    assert_eq!(fast.transfers, classic.transfers, "{label}: transfers");
    assert_eq!(
        fast.proc_accesses, classic.proc_accesses,
        "{label}: proc accesses"
    );
    assert_eq!(
        fast.dma_serving, classic.dma_serving,
        "{label}: dma serving"
    );
    assert_eq!(fast.wakes, classic.wakes, "{label}: wakes");
    assert_eq!(
        fast.delayed_firsts, classic.delayed_firsts,
        "{label}: delayed firsts"
    );
    assert_eq!(fast.page_moves, classic.page_moves, "{label}: page moves");
    assert_eq!(fast.slack, classic.slack, "{label}: slack summary");
    for (a, b, which) in [
        (&fast.request_service, &classic.request_service, "service"),
        (
            &fast.transfer_response,
            &classic.transfer_response,
            "response",
        ),
    ] {
        assert_eq!(a.count(), b.count(), "{label}: {which} count");
        assert_eq!(a.mean(), b.mean(), "{label}: {which} mean");
        assert_eq!(a.max(), b.max(), "{label}: {which} max");
    }
    // The five attribution buckets partition the same total either way.
    for cat in EnergyCategory::ALL {
        assert_eq!(
            fast.energy.energy_mj(cat),
            classic.energy.energy_mj(cat),
            "{label}: bucket {}",
            cat.label()
        );
    }
    let rel = (fast.energy.total_mj() - classic.energy.total_mj()).abs()
        / classic.energy.total_mj().abs().max(1.0);
    assert!(
        rel <= 1e-9,
        "{label}: attribution checksum off by {rel:.3e}"
    );
    // Dispatch accounting matches to the event: skipped epochs are
    // booked, not dropped.
    assert_eq!(
        fast.profile.events, classic.profile.events,
        "{label}: events"
    );
    for phase in Phase::ALL {
        assert_eq!(
            fast.profile.phases.get(phase).calls,
            classic.profile.phases.get(phase).calls,
            "{label}: {} calls",
            phase.label()
        );
    }
}

/// Energy, residency, latency, and dispatch accounting are identical
/// with the fast-forward on vs. off, across seeds and TA schemes — and
/// the fast path provably fired (it scheduled fewer epoch ticks).
#[test]
fn fast_forward_conserves_all_observables() {
    for seed in [7u64, 42, 1234] {
        let trace = sparse_trace(seed);
        for scheme in [Scheme::dma_ta(0.1), Scheme::dma_ta_pl(0.3, 2)] {
            let (fast, classic) = run_pair(scheme, &trace);
            let label = format!("seed {seed} {}", scheme.label());
            assert_conserved(&label, &fast, &classic);
            assert!(
                fast.profile.heap_pushes < classic.profile.heap_pushes,
                "{label}: fast-forward never fired ({} vs {} pushes)",
                fast.profile.heap_pushes,
                classic.profile.heap_pushes,
            );
        }
    }
}

/// Without TA there are no epoch ticks to skip: the classic switch is
/// a strict no-op and even the queue shape matches.
#[test]
fn classic_switch_is_identity_for_baseline_scheme() {
    let trace = sparse_trace(42);
    let (fast, classic) = run_pair(Scheme::baseline(), &trace);
    assert_conserved("baseline", &fast, &classic);
    assert_eq!(fast.profile, classic.profile);
}
