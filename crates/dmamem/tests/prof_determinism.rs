//! Engine-profile determinism: every deterministic counter the engine
//! self-profiles (events dispatched, heap pushes/pops, max calendar
//! depth, transfers, requests, per-phase call counts) is bit-identical
//! at any thread count and across same-seed replays, and arming the
//! wall-clock timers changes nothing but the explicitly host-dependent
//! `phase_ns`/`timed_sims` fields.

use dmamem::experiments::{self, ExpConfig, Workload};
use dmamem::sweep::{ProfTotals, SweepCtx};
use proptest::prelude::*;
use simcore::SimDuration;

fn quick(seed: u64) -> ExpConfig {
    ExpConfig {
        duration: SimDuration::from_ms(2),
        seed,
    }
}

/// Zeroes the host-dependent fields so everything else can be compared
/// exactly (the deterministic contract of `simcore::prof`).
fn deterministic(mut t: ProfTotals) -> ProfTotals {
    t.phase_ns = [0; 4];
    t.timed_sims = 0;
    t
}

/// Runs a small Figure-5 sweep on `ctx` and returns its engine totals.
fn fig5_totals(ctx: &SweepCtx, exp: ExpConfig) -> ProfTotals {
    experiments::fig5_ctx(ctx, exp, &[Workload::SyntheticSt], &[0.05, 0.10]);
    ctx.prof_totals()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Profile counters are bit-identical across 1/2/8 worker threads
    /// and across a same-seed replay, for arbitrary seeds.
    #[test]
    fn prof_counters_identical_across_threads_and_replays(seed in 0u64..10_000) {
        let exp = quick(seed);
        let serial = fig5_totals(&SweepCtx::new(1), exp);
        prop_assert!(serial.sims > 0 && serial.events > 0);
        // Profiling off: the wall-clock fields never even arm.
        prop_assert_eq!(serial.phase_ns, [0u64; 4]);
        prop_assert_eq!(serial.timed_sims, 0);
        // The loop-accounting invariant survives aggregation: every
        // dispatched event plus one stats pass per sim noted a phase.
        prop_assert_eq!(
            serial.phase_calls.iter().sum::<u64>(),
            serial.events + serial.sims
        );
        for threads in [2usize, 8] {
            prop_assert_eq!(serial, fig5_totals(&SweepCtx::new(threads), exp));
        }
        prop_assert_eq!(serial, fig5_totals(&SweepCtx::new(2), exp));
    }

    /// Arming the profiler changes neither the figure rows nor any
    /// deterministic counter — only `phase_ns` and `timed_sims` move.
    #[test]
    fn profiling_changes_only_wall_clock_fields(seed in 0u64..10_000) {
        let exp = quick(seed);
        let workloads = [Workload::SyntheticSt];
        let plain_ctx = SweepCtx::new(2);
        let plain_rows = experiments::fig5_ctx(&plain_ctx, exp, &workloads, &[0.10]);
        let prof_ctx = SweepCtx::new(2).with_profiling(true);
        let prof_rows = experiments::fig5_ctx(&prof_ctx, exp, &workloads, &[0.10]);
        // Bit-exact row equality: profiling perturbs no result.
        prop_assert_eq!(&plain_rows, &prof_rows);
        let plain = plain_ctx.prof_totals();
        let profiled = prof_ctx.prof_totals();
        prop_assert_eq!(deterministic(plain), deterministic(profiled));
        prop_assert_eq!(plain.timed_sims, 0);
        prop_assert_eq!(profiled.timed_sims, profiled.sims);
    }
}

/// A single simulation's `EngineProfile` reproduces exactly on replay,
/// with or without the wall-clock switch.
#[test]
fn single_run_profile_replays_exactly() {
    let exp = quick(42);
    let ctx = SweepCtx::new(1);
    let trace = Workload::OltpSt.shared_trace(&ctx, exp);
    let run = |profiled: bool| {
        let mut sim = dmamem::ServerSimulator::new(
            dmamem::SystemConfig::default(),
            dmamem::Scheme::baseline(),
        );
        if profiled {
            sim = sim.with_profiling();
        }
        sim.run(trace.trace())
    };
    let a = run(false);
    let b = run(false);
    assert_eq!(a.profile, b.profile, "replay must reproduce the profile");
    let c = run(true);
    assert!(
        a.profile.deterministic_eq(&c.profile),
        "profiling drifted a deterministic counter:\n{:?}\nvs\n{:?}",
        a.profile,
        c.profile
    );
    assert_eq!(a.energy, c.energy);
    assert!(!a.profile.timed && c.profile.timed);
}
