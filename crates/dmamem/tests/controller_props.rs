//! Property tests for the controller decision logic (slack account,
//! release rule, PL planning, page map).

use dmamem::controller::pl::{plan_and_apply, GroupLayout, PopularityTracker};
use dmamem::controller::ta::{ReleaseRule, SlackAccount};
use dmamem::{PageMap, PlConfig, SystemConfig};
use mempower::PowerModel;
use proptest::prelude::*;
use simcore::SimDuration;

proptest! {
    /// Slack arithmetic: balance always equals credits minus debits.
    #[test]
    fn slack_books_balance(
        mu in 0.0f64..50.0,
        ops in prop::collection::vec((0u8..5, 1usize..10), 0..100),
    ) {
        let t = SimDuration::from_ns(8);
        let mut s = SlackAccount::new(mu, t);
        let mut expected = 0.0f64;
        for (op, n) in ops {
            match op {
                0 => {
                    s.credit_request();
                    expected += mu * 8_000.0;
                }
                1 => {
                    s.debit_epoch(SimDuration::from_ns(100), n);
                    expected -= 100_000.0 * n as f64;
                }
                2 => {
                    s.debit_wake(SimDuration::from_ns(60), n);
                    expected -= 60_000.0 * n as f64;
                }
                3 => {
                    s.debit_proc(SimDuration::from_ns(20), n);
                    expected -= 20_000.0 * n as f64;
                }
                _ => {
                    s.debit_queue(n as f64 * 500.0);
                    expected -= n as f64 * 500.0;
                }
            }
        }
        prop_assert!((s.slack_ps() - expected).abs() < 1e-6 * (1.0 + expected.abs()));
        prop_assert!(s.min_slack_ps() <= 0.0 + 1e-9);
    }

    /// Release decisions are monotone in slack: if a chip releases at some
    /// slack level, it also releases at any lower level.
    #[test]
    fn release_monotone_in_slack(
        k in 1usize..6,
        r in 1usize..6,
        raw_pending in prop::collection::vec(0u32..5, 6),
        slack in -1e6f64..1e6,
    ) {
        let pending = raw_pending[..r].to_vec();
        let rule = ReleaseRule::new(k, r, SimDuration::from_ns(8));
        if rule.should_release(&pending, slack) {
            prop_assert!(rule.should_release(&pending, slack - 1000.0));
        }
        // And monotone in pending: adding a request never un-releases.
        if pending.iter().sum::<u32>() > 0 && rule.should_release(&pending, slack) {
            let mut more = pending.clone();
            more[0] += 1;
            prop_assert!(rule.should_release(&more, slack));
        }
    }

    /// Group layouts partition the chips exactly.
    #[test]
    fn group_layout_partitions(groups in 2usize..8, total in 2usize..64) {
        let n_hot = (total - 1).min(total / 2);
        let l = GroupLayout::new(groups, n_hot, total);
        let sum: usize = (0..l.groups()).map(|g| l.chips_in(g)).sum();
        prop_assert_eq!(sum, total);
        // chip_range covers 0..total contiguously.
        let mut cursor = 0;
        for g in 0..l.groups() {
            let (s, e) = l.chip_range(g);
            prop_assert_eq!(s, cursor);
            cursor = e;
            for c in s..e {
                prop_assert_eq!(l.group_of_chip(c), g);
            }
        }
        prop_assert_eq!(cursor, total);
    }

    /// PL planning never corrupts the page map, never exceeds the move
    /// budget (plus one paired eviction/swap), and is idempotent.
    #[test]
    fn pl_plan_preserves_map_invariants(
        accesses in prop::collection::vec(0u64..64, 0..400),
        groups in 2usize..5,
        max_moves in 1usize..64,
    ) {
        let config = SystemConfig {
            chips: 4,
            power_model: PowerModel::rdram().with_chip_bytes(16 * 8192),
            pages: 64,
            ..SystemConfig::default()
        };
        let mut map = PageMap::new_sequential(&config);
        let mut tracker = PopularityTracker::new(64);
        for &p in &accesses {
            tracker.record(p);
        }
        let pl = PlConfig {
            max_moves_per_interval: max_moves,
            min_count_to_migrate: 0,
            ..PlConfig::new(groups)
        };
        let moves = plan_and_apply(&tracker, &mut map, &pl, 16);
        map.check_invariants();
        prop_assert!(moves.len() <= max_moves + 1, "{} > {}", moves.len(), max_moves);
        // Idempotence: re-planning after placement moves nothing (up to the
        // move budget truncation).
        if moves.len() < max_moves {
            let again = plan_and_apply(&tracker, &mut map, &pl, 16);
            prop_assert!(again.is_empty(), "re-plan moved: {again:?}");
        }
    }

    /// Random page moves keep the map consistent.
    #[test]
    fn page_map_random_moves(ops in prop::collection::vec((0u64..64, 0usize..4), 0..200)) {
        let config = SystemConfig {
            chips: 4,
            power_model: PowerModel::rdram().with_chip_bytes(32 * 8192),
            pages: 64,
            ..SystemConfig::default()
        };
        let mut map = PageMap::new_sequential(&config);
        for (page, dst) in ops {
            let _ = map.move_page(page, dst);
        }
        map.check_invariants();
    }
}
