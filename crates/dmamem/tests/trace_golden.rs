//! Golden-file test for the Perfetto (Chrome trace-event) exporter.
//!
//! A small scripted transfer — gather, release, wakeup, lockstep,
//! active-idle, drain — plus one chip activity lane and a power-mode
//! transition is rendered to JSON and compared byte-for-byte against
//! `tests/golden/trace_small.json`. Any change to the export format is
//! therefore a deliberate, reviewed diff of the golden file; regenerate
//! it with `UPDATE_GOLDEN=1 cargo test -p dmamem --test trace_golden`.

use dmamem::timeline::ChipActivity;
use dmamem::tracing::Tracer;
use mempower::{PowerMode, TransitionEvent};
use simcore::obs::json::{parse, JsonValue};
use simcore::{SimDuration, SimTime};

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_us(us)
}

/// The scripted scenario. Kept deliberately tiny so the golden file
/// stays reviewable in a diff.
fn scripted_trace() -> String {
    let mut tr = Tracer::new(1 << 10, 2, 1, [300.0, 180.0, 30.0, 3.0]);

    // Chip 0 dozes while transfer 9 arrives on bus 0 and is gathered.
    tr.chip_activity(0, t(0), ChipActivity::LowPower);
    tr.transfer_started(9, 0, t(1));
    tr.issued(9, true, false, false, t(1)); // first request parks in the gather queue
    tr.gathered(9, t(1));

    // CP-Limit reached: release the gathered transfer, wake the chip.
    tr.transition(
        0,
        &TransitionEvent {
            at: t(3),
            from: PowerMode::Nap,
            to: PowerMode::Active,
            latency: SimDuration::from_us(1),
        },
    );
    tr.chip_activity(0, t(3), ChipActivity::Transitioning);
    tr.released(9, t(3)); // release mark + wakeup span
    tr.chip_activity(0, t(4), ChipActivity::Serving);
    tr.serve_start(9, t(4)); // wakeup over, lockstep service begins
    tr.serve_done(9, false, t(6)); // bus caught up -> active-idle gap
    tr.issued(9, false, true, false, t(7));
    tr.serve_start(9, t(7)); // last request issued -> drain phase
    tr.serve_done(9, true, t(8)); // transfer completes, root closes

    tr.chip_activity(0, t(8), ChipActivity::IdleDma);
    tr.into_buffer(t(10)).to_chrome_json()
}

#[test]
fn chrome_json_matches_golden_file() {
    let json = scripted_trace();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_small.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden");
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        json, golden,
        "Perfetto export changed; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p dmamem --test trace_golden"
    );
}

#[test]
fn chrome_json_has_trace_event_shape() {
    let parsed = parse(&scripted_trace()).expect("exporter emits valid JSON");
    let JsonValue::Object(fields) = &parsed else {
        panic!("top level must be an object");
    };
    assert!(fields.iter().any(|(k, _)| k == "displayTimeUnit"));
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut phases = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has a phase");
        phases.insert(ph.to_string());
        // Metadata events carry no timestamp or thread id; everything
        // else must have both.
        if ph != "M" {
            assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(ev.get("tid").is_some());
        }
        assert!(ev.get("pid").is_some());
    }
    for want in ["B", "E", "b", "e", "i", "C", "M"] {
        assert!(phases.contains(want), "missing phase {want}");
    }
}
