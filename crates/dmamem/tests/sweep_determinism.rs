//! The sweep engine's core guarantee: figure output is bit-identical at
//! any thread count, with memoization on or off, for any seed.
//!
//! `Fig5Row`/`Fig7Row`/... derive `PartialEq` over raw `f64`s, so the
//! equalities below are exact bit comparisons, not tolerance checks.

use dmamem::experiments::{self, ExpConfig, Workload};
use dmamem::sweep::{SimJob, SweepCtx};
use dmamem::{Scheme, SystemConfig};
use proptest::prelude::*;
use simcore::SimDuration;

fn quick(seed: u64) -> ExpConfig {
    ExpConfig {
        duration: SimDuration::from_ms(2),
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Figure 5 rows are bit-identical across serial, 2-thread, 8-thread,
    /// and memoization-off runs, for arbitrary seeds.
    #[test]
    fn fig5_bit_identical_across_threads_and_memo(seed in 0u64..10_000) {
        let exp = quick(seed);
        let workloads = [Workload::SyntheticSt];
        let cps = [0.05, 0.10];
        let serial = experiments::fig5_ctx(&SweepCtx::new(1), exp, &workloads, &cps);
        for threads in [2usize, 8] {
            let parallel =
                experiments::fig5_ctx(&SweepCtx::new(threads), exp, &workloads, &cps);
            prop_assert_eq!(&serial, &parallel);
        }
        let unmemoized =
            experiments::fig5_ctx(&SweepCtx::new(2).with_memoize(false), exp, &workloads, &cps);
        prop_assert_eq!(&serial, &unmemoized);
    }

    /// Raw batch results match a plain serial simulator loop bit-for-bit.
    #[test]
    fn run_batch_matches_direct_simulation(seed in 0u64..10_000) {
        let config = SystemConfig::default();
        let ctx = SweepCtx::new(8);
        let trace = Workload::SyntheticSt.shared_trace(&ctx, quick(seed));
        let schemes = [
            Scheme::baseline(),
            Scheme::dma_ta(0.5),
            Scheme::dma_ta_pl(0.5, 2),
        ];
        let batch = ctx.run_batch(
            schemes
                .iter()
                .map(|&s| SimJob::new(config.clone(), s, trace.clone()))
                .collect(),
        );
        for (scheme, from_batch) in schemes.iter().zip(&batch) {
            let direct =
                dmamem::ServerSimulator::new(config.clone(), *scheme).run(trace.trace());
            prop_assert_eq!(&direct.energy, &from_batch.energy);
            prop_assert_eq!(direct.dma_requests, from_batch.dma_requests);
            prop_assert_eq!(direct.transfers, from_batch.transfers);
            prop_assert_eq!(
                direct.transfer_response.mean_ns().to_bits(),
                from_batch.transfer_response.mean_ns().to_bits()
            );
        }
    }
}

/// Every `_ctx` figure runner agrees with its serial entry point at
/// thread counts 1, 2, and 8.
#[test]
fn all_figures_bit_identical_across_thread_counts() {
    let exp = quick(42);
    let fig7_serial = experiments::fig7(exp, &[0.05, 0.10]);
    let fig8_serial = experiments::fig8(exp, &[50.0, 100.0], 0.10);
    let fig9_serial = experiments::fig9(exp, &[0.0, 50.0], 0.10);
    let fig10_serial = experiments::fig10(exp, &[1.064e9, 2.0e9], 0.10);
    let tpch_serial = experiments::tpch(exp, 0.10);
    for threads in [1usize, 2, 8] {
        let ctx = SweepCtx::new(threads);
        assert_eq!(fig7_serial, experiments::fig7_ctx(&ctx, exp, &[0.05, 0.10]));
        assert_eq!(
            fig8_serial,
            experiments::fig8_ctx(&ctx, exp, &[50.0, 100.0], 0.10)
        );
        assert_eq!(
            fig9_serial,
            experiments::fig9_ctx(&ctx, exp, &[0.0, 50.0], 0.10)
        );
        assert_eq!(
            fig10_serial,
            experiments::fig10_ctx(&ctx, exp, &[1.064e9, 2.0e9], 0.10)
        );
        assert_eq!(tpch_serial, experiments::tpch_ctx(&ctx, exp, 0.10));
    }
}

/// A context reused across figures (the cross-figure memo path) still
/// reproduces the fresh-context rows exactly.
#[test]
fn cross_figure_memoization_does_not_change_rows() {
    let exp = quick(42);
    let shared = SweepCtx::new(2);
    let fig5_first = experiments::fig5_ctx(&shared, exp, &[Workload::OltpSt], &[0.10]);
    let fig6_shared = experiments::fig6_ctx(&shared, exp, 0.10);
    let fig7_shared = experiments::fig7_ctx(&shared, exp, &[0.10]);
    let before = shared.memo_stats();
    assert!(before.hits > 0, "cross-figure reuse never hit the memo");
    assert_eq!(
        fig5_first,
        experiments::fig5(exp, &[Workload::OltpSt], &[0.10])
    );
    assert_eq!(fig6_shared, experiments::fig6(exp, 0.10));
    assert_eq!(fig7_shared, experiments::fig7(exp, &[0.10]));
}
