//! Integration tests for the observability layer: the slack audit trail
//! independently re-derives the simulator's guarantee verdict, and the
//! exported JSONL event stream is well-formed and covers every decision
//! family the controller makes.

use std::collections::BTreeSet;

use dmamem::experiments::Workload;
use dmamem::{replay_slack, Scheme, ServerSimulator, SimResult, SystemConfig};
use proptest::prelude::*;
use simcore::SimDuration;

/// Runs `workload` under DMA-TA (optionally with PL) with the event sink
/// sized so nothing is dropped; returns the result and the guarantee
/// reference time.
fn observed(
    workload: Workload,
    ms: u64,
    seed: u64,
    mu: f64,
    pl_groups: Option<usize>,
) -> (SimResult, SimDuration) {
    let config = SystemConfig::default();
    let t_ref = config.t_request();
    let trace = workload.generate(SimDuration::from_ms(ms), seed);
    let scheme = match pl_groups {
        Some(g) => Scheme::dma_ta_pl(mu, g),
        None => Scheme::dma_ta(mu),
    };
    let r = ServerSimulator::new(config, scheme)
        .with_observability(1 << 20)
        .run(&trace);
    (r, t_ref)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Replaying the slack-ledger events reproduces `guarantee_met`
    /// without consulting the simulator's own statistics: same verdict,
    /// same `mu`, and a balance trail consistent at every step.
    #[test]
    fn replayed_ledger_reproduces_guarantee(
        seed in 0u64..1_000,
        mu in 0.05f64..3.0,
        with_pl in any::<bool>(),
    ) {
        let groups = if with_pl { Some(2) } else { None };
        let (r, t_ref) = observed(Workload::SyntheticSt, 2, seed, mu, groups);
        let obs = r.obs.as_ref().expect("observability requested");
        prop_assert_eq!(obs.events.dropped(), 0, "audit ring overflowed");
        let replay = replay_slack(obs.events.iter());
        prop_assert!(replay.closed, "no slack_close event");
        prop_assert!(replay.ledger_consistent, "balance trail diverged");
        prop_assert!((replay.mu - r.mu).abs() < 1e-12);
        prop_assert_eq!(
            replay.guarantee_met(t_ref),
            r.guarantee_met(t_ref),
            "ledger verdict disagrees with the simulator"
        );
    }
}

#[test]
fn jsonl_export_is_wellformed_and_covers_event_families() {
    let (r, _) = observed(Workload::OltpSt, 4, 42, 1.0, Some(2));
    let obs = r.obs.as_ref().expect("observability requested");
    let jsonl = obs.events.to_jsonl();
    assert!(!jsonl.is_empty());
    let mut kinds = BTreeSet::new();
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"seq\":"), "bad envelope: {line}");
        assert!(line.ends_with('}'), "unterminated object: {line}");
        assert!(line.contains("\"t_ps\":"), "missing timestamp: {line}");
        let kind = line
            .split("\"kind\":\"")
            .nth(1)
            .unwrap_or_else(|| panic!("missing kind: {line}"))
            .split('"')
            .next()
            .unwrap();
        kinds.insert(kind.to_string());
    }
    for kind in [
        "mode_transition",
        "ta_gather",
        "ta_release",
        "slack_credit",
        "slack_debit",
        "slack_close",
    ] {
        assert!(kinds.contains(kind), "no {kind} events in {kinds:?}");
    }
}

#[test]
fn metrics_snapshot_mirrors_result_counters() {
    let (r, _) = observed(Workload::SyntheticSt, 2, 7, 1.0, None);
    let obs = r.obs.as_ref().expect("observability requested");
    let m = &obs.metrics;
    assert_eq!(m.counter("dmamem.wakes"), Some(r.wakes));
    assert_eq!(m.counter("dmamem.ta.gathered"), Some(r.delayed_firsts));
    let releases = m.counter("dmamem.ta.release.rule").unwrap_or(0)
        + m.counter("dmamem.ta.release.max_delay").unwrap_or(0)
        + m.counter("dmamem.ta.release.proc_wake").unwrap_or(0);
    assert!(releases > 0, "TA made no release decisions");
    let service = &m.histograms["dmamem.request_service_ns"];
    assert_eq!(service.count, r.dma_requests);
    let json = m.to_json();
    assert!(json.starts_with("{\"counters\":{"), "snapshot json: {json}");
    assert!(json.contains("\"dmamem.slack.balance_ps\""));
    assert!(json.contains("\"span.engine_dispatch_ns\""));
}

#[test]
fn uninstrumented_run_carries_no_obs_report() {
    let config = SystemConfig::default();
    let trace = Workload::SyntheticSt.generate(SimDuration::from_ms(1), 3);
    let r = ServerSimulator::new(config, Scheme::dma_ta(0.5)).run(&trace);
    assert!(r.obs.is_none());
    // The slack summary is part of the result proper, not the obs layer.
    assert!(r.slack.is_some());
}
