//! System-configuration matrix tests: the simulator must behave sensibly
//! across policies, bus disciplines, granularities, and degenerate shapes.

use dma_trace::{SyntheticDbGen, SyntheticStorageGen, Trace, TraceGen};
use dmamem::{PolicyKind, Scheme, ServerSimulator, SystemConfig};
use iobus::{BusConfig, BusDiscipline};
use mempower::{EnergyCategory, PowerMode};
use simcore::SimDuration;

fn trace_ms(ms: u64) -> Trace {
    SyntheticStorageGen {
        pages: 8192,
        ..Default::default()
    }
    .generate(SimDuration::from_ms(ms), 17)
}

fn base_config() -> SystemConfig {
    SystemConfig {
        pages: 8192,
        ..SystemConfig::default()
    }
}

#[test]
fn every_policy_completes_and_orders_sanely() {
    let trace = trace_ms(2);
    let mut totals = Vec::new();
    for policy in [
        PolicyKind::AlwaysActive,
        PolicyKind::Static(PowerMode::Standby),
        PolicyKind::Static(PowerMode::Nap),
        PolicyKind::Static(PowerMode::Powerdown),
        PolicyKind::Dynamic { scale: 1.0 },
        PolicyKind::SelfTuning,
    ] {
        let config = SystemConfig {
            policy,
            ..base_config()
        };
        let r = ServerSimulator::new(config, Scheme::baseline()).run(&trace);
        assert_eq!(r.transfers, trace.stats().dma_transfers());
        totals.push((policy, r.energy.total_mj()));
    }
    // Always-active burns the most by far; every managed policy beats it.
    let always = totals[0].1;
    for (policy, t) in &totals[1..] {
        assert!(
            *t < always * 0.7,
            "{policy:?} used {t} vs always-active {always}"
        );
    }
}

#[test]
fn tdm_and_per_engine_both_complete() {
    let trace = trace_ms(2);
    for discipline in [BusDiscipline::PerEngine, BusDiscipline::TimeDivision] {
        let config = base_config().with_buses(3, BusConfig::pci_x().with_discipline(discipline));
        let r = ServerSimulator::new(config, Scheme::dma_ta(1.0)).run(&trace);
        assert_eq!(r.transfers, trace.stats().dma_transfers());
        // uf near 1/3 either way at light load.
        let uf = r.utilization_factor();
        assert!(uf > 0.25 && uf < 0.9, "uf {uf} under {discipline:?}");
    }
}

#[test]
fn request_granularity_preserves_figure2a_ratio() {
    let trace = trace_ms(2);
    for bytes in [8u64, 16, 64, 512] {
        let config = base_config().with_buses(3, BusConfig::pci_x().with_request_bytes(bytes));
        let r = ServerSimulator::new(config, Scheme::baseline()).run(&trace);
        assert_eq!(
            r.transfers,
            trace.stats().dma_transfers(),
            "{bytes}B lost transfers"
        );
        // Serving time is granularity-independent (same bytes moved).
        let serving_ns = r.dma_serving.as_ns_f64();
        let expect = trace.stats().dma_bytes as f64 / 3.2e9 * 1e9;
        assert!(
            (serving_ns - expect).abs() / expect < 0.01,
            "{bytes}B serving {serving_ns} vs {expect}"
        );
    }
}

#[test]
fn single_bus_system_gathers_nothing_but_completes() {
    // With one bus, k = 3 can never be met; gathering falls back to the
    // slack timeout and the cap; everything still completes.
    let gen = SyntheticStorageGen {
        pages: 8192,
        buses: 1,
        ..Default::default()
    };
    let trace = gen.generate(SimDuration::from_ms(2), 9);
    let config = base_config().with_buses(1, BusConfig::pci_x());
    let r = ServerSimulator::new(config, Scheme::dma_ta(2.0)).run(&trace);
    assert_eq!(r.transfers, trace.stats().dma_transfers());
}

#[test]
fn many_buses_raise_alignment_ceiling() {
    // Six buses aligned on one chip can truly saturate it; with generous
    // slack the TA utilization beats the 3-bus case.
    let mk = |buses: usize| {
        let gen = SyntheticStorageGen {
            pages: 8192,
            buses,
            transfers_per_ms: 150.0,
            ..Default::default()
        };
        let trace = gen.generate(SimDuration::from_ms(3), 5);
        let config = base_config().with_buses(buses, BusConfig::pci_x());
        ServerSimulator::new(config, Scheme::dma_ta(30.0))
            .run(&trace)
            .utilization_factor()
    };
    let three = mk(3);
    let six = mk(6);
    assert!(six > three - 0.1, "6 buses uf {six} vs 3 buses {three}");
}

#[test]
fn empty_trace_is_a_clean_noop() {
    let r = ServerSimulator::new(base_config(), Scheme::dma_ta_pl(1.0, 2)).run(&Trace::default());
    assert_eq!(r.transfers, 0);
    assert_eq!(r.dma_requests, 0);
    assert_eq!(r.page_moves, 0);
    // The engine stops at the first idle instant; only nanoseconds of
    // boot-time chip energy are accounted.
    assert!(r.energy.total_mj() < 1e-3, "energy {}", r.energy.total_mj());
}

#[test]
fn proc_only_trace_serves_everything() {
    let gen = SyntheticDbGen {
        pages: 8192,
        transfers_per_ms: 1.0,
        proc_per_transfer: 500.0,
        ..Default::default()
    };
    let trace = gen.generate(SimDuration::from_ms(3), 3);
    let r = ServerSimulator::new(base_config(), Scheme::dma_ta(1.0)).run(&trace);
    assert_eq!(r.proc_accesses, trace.stats().proc_accesses);
    assert!(r.energy.energy_mj(EnergyCategory::ActiveServing) > 0.0);
}

#[test]
fn minimal_memory_system_works() {
    // Two chips, one bus, tiny working set.
    let config = SystemConfig {
        chips: 2,
        pages: 64,
        ..SystemConfig::default()
    }
    .with_buses(1, BusConfig::pci_x());
    let gen = SyntheticStorageGen {
        pages: 64,
        buses: 1,
        ..Default::default()
    };
    let trace = gen.generate(SimDuration::from_ms(1), 2);
    let r = ServerSimulator::new(config, Scheme::dma_ta_pl(1.0, 2)).run(&trace);
    assert_eq!(r.transfers, trace.stats().dma_transfers());
    assert_eq!(r.per_chip_mj.len(), 2);
}

#[test]
fn ddr_sdram_variant_runs_with_lower_ratio() {
    // Section 5.4: DDR at 2.1 GB/s gives ratio ~2 — less idle waste than
    // RDRAM's 3x, so baseline uf is higher.
    let rdram = base_config();
    let ddr = SystemConfig {
        power_model: mempower::PowerModel::ddr_sdram_like(),
        ..base_config()
    };
    let trace = trace_ms(2);
    let uf_rdram = ServerSimulator::new(rdram, Scheme::baseline())
        .run(&trace)
        .utilization_factor();
    let uf_ddr = ServerSimulator::new(ddr, Scheme::baseline())
        .run(&trace)
        .utilization_factor();
    assert!(
        uf_ddr > uf_rdram + 0.1,
        "DDR uf {uf_ddr} vs RDRAM {uf_rdram}"
    );
}

#[test]
fn self_tuning_policy_completes_under_ta_pl() {
    let config = SystemConfig {
        policy: PolicyKind::SelfTuning,
        ..base_config()
    };
    let trace = trace_ms(2);
    let r = ServerSimulator::new(config, Scheme::dma_ta_pl(1.0, 2)).run(&trace);
    assert_eq!(r.transfers, trace.stats().dma_transfers());
}
