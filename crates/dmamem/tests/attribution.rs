//! Energy-waste attribution invariants on the Figure-2 workloads.
//!
//! Two guarantees: the attribution buckets are a *partition* of run
//! energy (run buckets sum to the simulator's total, per-chip columns
//! sum to the run buckets, both to ~1e-9 relative), and the calibrated
//! paper-utilization configuration reproduces the headline Figure 2(b)
//! result — 48–51% of memory energy wasted active-idle under DMA
//! transfers with no power management beyond the baseline policy.

use dmamem::experiments::{
    fig2b_paper_util_config, fig2b_paper_util_trace, traced_runs_ctx, ExpConfig,
};
use dmamem::sweep::SweepCtx;
use dmamem::{Scheme, ServerSimulator};
use mempower::EnergyCategory;
use simcore::SimDuration;

/// Buckets partition total energy exactly, at run and per-chip scope,
/// for every Figure-2 traced run (baselines plus DMA-TA-PL).
#[test]
fn attribution_buckets_partition_run_energy() {
    let ctx = SweepCtx::serial();
    let exp = ExpConfig {
        duration: SimDuration::from_us(2_000),
        seed: 42,
    };
    let runs = traced_runs_ctx(&ctx, exp, 0.10, 1 << 18);
    assert_eq!(runs.len(), 3, "two baselines plus one DMA-TA-PL run");
    for run in &runs {
        let a = run.attribution();
        assert!(
            a.checksum_rel_err() <= 1e-9,
            "{}/{}: buckets do not partition energy (rel err {:.3e})",
            a.workload,
            a.scheme,
            a.checksum_rel_err()
        );
        assert_eq!(a.per_chip.len(), run.result.per_chip_mj.len());
        // Each chip's buckets must also sum to that chip's total ledger.
        for (chip, buckets) in a.per_chip.iter().enumerate() {
            let rel = (buckets.total_mj() - run.result.per_chip_mj[chip]).abs()
                / run.result.per_chip_mj[chip].abs().max(1.0);
            assert!(
                rel <= 1e-9,
                "{} chip {chip}: bucket sum off by rel {rel:.3e}",
                a.workload
            );
        }
    }
}

/// Figure 2(b): under the calibrated per-chip utilization (4 chips at
/// the paper's operating point), the unmanaged baseline wastes 48–51%
/// of memory energy active-idle during DMA transfers.
#[test]
fn fig2b_active_idle_waste_lands_in_paper_band() {
    let exp = ExpConfig {
        duration: SimDuration::from_us(8_000),
        seed: 42,
    };
    let trace = fig2b_paper_util_trace(exp);
    let result = ServerSimulator::new(fig2b_paper_util_config(), Scheme::baseline()).run(&trace);
    let frac = result.energy.fraction(EnergyCategory::ActiveIdleDma);
    assert!(
        (0.48..=0.51).contains(&frac),
        "active-idle DMA waste {:.1}% outside the paper's 48-51% band",
        100.0 * frac
    );
}
