//! Property tests for the disk timing model.

use disksim::{Disk, DiskArray, DiskParams, DiskRequest, RequestKind};
use proptest::prelude::*;
use simcore::SimTime;

fn request(lba: u64, sectors: u64, write: bool) -> DiskRequest {
    DiskRequest {
        lba,
        sectors,
        kind: if write {
            RequestKind::Write
        } else {
            RequestKind::Read
        },
    }
}

proptest! {
    /// Service timelines are causally ordered and FCFS for any request mix.
    #[test]
    fn timelines_are_causal_and_fcfs(
        reqs in prop::collection::vec((0u64..1_000_000, 1u64..128, any::<bool>()), 1..40),
    ) {
        let mut disk = Disk::new(DiskParams::server_15k());
        let mut prev_complete = SimTime::ZERO;
        for (lba, sectors, write) in reqs {
            let a = disk.submit(SimTime::ZERO, request(lba, sectors, write));
            prop_assert!(a.start_service >= prev_complete, "FCFS violated");
            prop_assert!(a.start_transfer >= a.start_service);
            prop_assert!(a.complete > a.start_transfer);
            prev_complete = a.complete;
        }
    }

    /// Rotational latency is always under one revolution; a mechanical
    /// access always costs at least the controller overhead plus media
    /// transfer.
    #[test]
    fn latency_components_bounded(lba in 0u64..50_000_000, sectors in 1u64..256) {
        let params = DiskParams::server_15k();
        let mut disk = Disk::new(params.clone());
        let a = disk.submit(SimTime::ZERO, request(lba, sectors, false));
        prop_assert!(!a.cache_hit);
        let positioning = a.start_transfer - a.start_service;
        let max_positioning = params.controller_overhead + params.seek_max + params.revolution();
        prop_assert!(positioning <= max_positioning, "positioning {positioning} too long");
        let media = a.complete - a.start_transfer;
        let expect = simcore::SimDuration::from_bytes_at_rate(
            sectors * params.sector_bytes,
            params.media_bytes_per_sec(),
        );
        prop_assert_eq!(media, expect);
    }

    /// Determinism: the same request sequence gives identical timelines.
    #[test]
    fn disk_is_deterministic(
        reqs in prop::collection::vec((0u64..10_000_000, 1u64..64, any::<bool>()), 1..30),
    ) {
        let run = |reqs: &[(u64, u64, bool)]| {
            let mut disk = Disk::new(DiskParams::server_15k());
            reqs.iter()
                .map(|&(lba, s, w)| disk.submit(SimTime::ZERO, request(lba, s, w)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&reqs), run(&reqs));
    }

    /// Array routing is a bijection on stripes: every LBA maps to exactly
    /// one (disk, local) pair, and distinct LBAs in distinct stripes on the
    /// same disk get distinct local addresses.
    #[test]
    fn array_locate_is_injective(
        width in 1usize..8,
        stripe in 1u64..512,
        lbas in prop::collection::vec(0u64..1_000_000, 2..30),
    ) {
        let array = DiskArray::new(DiskParams::server_15k(), width, stripe);
        for &lba in &lbas {
            let loc = array.locate(lba);
            prop_assert!(loc.0 < width);
        }
        // Injectivity of the full mapping.
        let mut pairs = std::collections::HashMap::new();
        for &lba in &lbas {
            let loc = array.locate(lba);
            if let Some(prev) = pairs.insert(loc, lba) {
                prop_assert_eq!(prev, lba, "two LBAs mapped to one location");
            }
        }
    }

    /// Sequential reads after a miss hit the segment cache and are
    /// strictly faster than the miss.
    #[test]
    fn readahead_hits_are_faster(start in 0u64..1_000_000) {
        let mut disk = Disk::new(DiskParams::server_15k());
        let miss = disk.submit(SimTime::ZERO, request(start, 16, false));
        let hit = disk.submit(miss.complete, request(start + 16, 16, false));
        prop_assert!(hit.cache_hit);
        prop_assert!(
            hit.complete - hit.start_service < miss.complete - miss.start_service
        );
    }
}
