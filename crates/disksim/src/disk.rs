//! The single-disk mechanical model.

use simcore::{SimDuration, SimTime};

use crate::cache::SegmentCache;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Data moves disk -> memory.
    Read,
    /// Data moves memory -> disk.
    Write,
}

/// One disk request in sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// Starting logical block address (sector number).
    pub lba: u64,
    /// Number of sectors.
    pub sectors: u64,
    /// Read or write.
    pub kind: RequestKind,
}

/// When a submitted request occupies the disk and streams data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskAccess {
    /// When the disk begins positioning for this request (after queueing).
    pub start_service: SimTime,
    /// When data starts streaming over the interface (DMA can begin).
    pub start_transfer: SimTime,
    /// When the request fully completes.
    pub complete: SimTime,
    /// True if the on-disk cache satisfied the request.
    pub cache_hit: bool,
}

impl DiskAccess {
    /// Total latency from `submitted` to completion.
    pub fn latency_since(&self, submitted: SimTime) -> SimDuration {
        self.complete - submitted
    }
}

/// Mechanical and cache parameters of one disk.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskParams {
    /// Spindle speed in revolutions per minute.
    pub rpm: f64,
    /// Number of cylinders.
    pub cylinders: u64,
    /// Sectors per track (single-zone model).
    pub sectors_per_track: u64,
    /// Bytes per sector.
    pub sector_bytes: u64,
    /// Tracks (surfaces) per cylinder.
    pub tracks_per_cylinder: u64,
    /// Track-to-track seek time.
    pub seek_min: SimDuration,
    /// Full-stroke seek time.
    pub seek_max: SimDuration,
    /// Fixed controller/command overhead per request.
    pub controller_overhead: SimDuration,
    /// Interface (cache-to-host) rate in bytes per second.
    pub interface_bytes_per_sec: f64,
    /// Number of read-cache segments (0 disables the cache).
    pub cache_segments: usize,
    /// Read-ahead length in sectors appended to each cached extent.
    pub readahead_sectors: u64,
}

impl DiskParams {
    /// A 15k-RPM enterprise drive, the class a mid-2000s storage server
    /// would use: ~0.5-8 ms seeks, 2 ms average rotational latency,
    /// ~64 MB/s media rate.
    pub fn server_15k() -> Self {
        DiskParams {
            rpm: 15_000.0,
            cylinders: 50_000,
            sectors_per_track: 500,
            sector_bytes: 512,
            tracks_per_cylinder: 4,
            seek_min: SimDuration::from_us(500),
            seek_max: SimDuration::from_ms(8),
            controller_overhead: SimDuration::from_us(50),
            interface_bytes_per_sec: 320e6, // Ultra320 SCSI
            cache_segments: 8,
            readahead_sectors: 256,
        }
    }

    /// Revolutions per second.
    pub fn rps(&self) -> f64 {
        self.rpm / 60.0
    }

    /// One full revolution.
    pub fn revolution(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.rps())
    }

    /// Sustained media transfer rate in bytes per second.
    pub fn media_bytes_per_sec(&self) -> f64 {
        self.sectors_per_track as f64 * self.sector_bytes as f64 * self.rps()
    }

    /// Sectors per cylinder.
    pub fn sectors_per_cylinder(&self) -> u64 {
        self.sectors_per_track * self.tracks_per_cylinder
    }

    /// Total capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.cylinders * self.sectors_per_cylinder()
    }

    /// Seek time for a cylinder distance, using the square-root curve
    /// `t = t_min + (t_max - t_min) * sqrt(d / C)` common to disk models.
    /// Zero distance costs nothing.
    pub fn seek_time(&self, distance: u64) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let frac = (distance as f64 / self.cylinders.max(1) as f64).sqrt();
        let extra = (self.seek_max - self.seek_min).mul_f64(frac);
        self.seek_min + extra
    }

    /// Cylinder containing `lba`.
    pub fn cylinder_of(&self, lba: u64) -> u64 {
        (lba / self.sectors_per_cylinder()).min(self.cylinders.saturating_sub(1))
    }

    /// Angular position (fraction of a revolution in `[0, 1)`) of `lba`'s
    /// first sector on its track.
    pub fn angle_of(&self, lba: u64) -> f64 {
        (lba % self.sectors_per_track) as f64 / self.sectors_per_track as f64
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams::server_15k()
    }
}

/// A single disk with FCFS queueing, deterministic rotational position, and
/// a segment read cache.
///
/// The API is analytic: [`Disk::submit`] immediately returns the complete
/// service timeline of the request (requests are serviced in submission
/// order, so later submissions cannot change earlier answers).
#[derive(Debug, Clone)]
pub struct Disk {
    params: DiskParams,
    busy_until: SimTime,
    head_cylinder: u64,
    cache: SegmentCache,
    served: u64,
    cache_hits: u64,
}

impl Disk {
    /// Creates an idle disk with the head parked at cylinder 0.
    pub fn new(params: DiskParams) -> Self {
        let cache = SegmentCache::new(params.cache_segments);
        Disk {
            params,
            busy_until: SimTime::ZERO,
            head_cylinder: 0,
            cache,
            served: 0,
            cache_hits: 0,
        }
    }

    /// The disk's parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// When the disk next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Read-cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Submits a request at `now`; returns its full service timeline.
    ///
    /// Requests are serviced FCFS: service begins when the disk finishes
    /// everything submitted earlier.
    ///
    /// # Panics
    ///
    /// Panics if the request is empty or runs past the end of the disk.
    pub fn submit(&mut self, now: SimTime, req: DiskRequest) -> DiskAccess {
        assert!(req.sectors > 0, "empty disk request");
        assert!(
            req.lba + req.sectors <= self.params.capacity_sectors(),
            "request past end of disk: lba {} + {} > {}",
            req.lba,
            req.sectors,
            self.params.capacity_sectors()
        );
        let start_service = now.max(self.busy_until);
        self.served += 1;

        let transfer_bytes = req.sectors * self.params.sector_bytes;
        let interface_time =
            SimDuration::from_bytes_at_rate(transfer_bytes, self.params.interface_bytes_per_sec);

        let hit = req.kind == RequestKind::Read && self.cache.contains(req.lba, req.sectors);
        if hit {
            // Served from the on-disk cache: overhead + interface transfer.
            self.cache_hits += 1;
            self.cache.touch(req.lba, req.sectors);
            let start_transfer = start_service + self.params.controller_overhead;
            let complete = start_transfer + interface_time;
            self.busy_until = complete;
            return DiskAccess {
                start_service,
                start_transfer,
                complete,
                cache_hit: true,
            };
        }

        // Mechanical path: overhead, seek, rotation, media transfer.
        let target_cyl = self.params.cylinder_of(req.lba);
        let distance = target_cyl.abs_diff(self.head_cylinder);
        let seek = self.params.seek_time(distance);
        let positioned = start_service + self.params.controller_overhead + seek;

        // Deterministic rotational latency from the platter's angular
        // position at `positioned`.
        let rev = self.params.revolution();
        let head_angle = (positioned.as_ps() % rev.as_ps()) as f64 / rev.as_ps() as f64;
        let target_angle = self.params.angle_of(req.lba);
        let wait_frac = (target_angle - head_angle).rem_euclid(1.0);
        let rotation = rev.mul_f64(wait_frac);
        let start_transfer = positioned + rotation;

        let media_time =
            SimDuration::from_bytes_at_rate(transfer_bytes, self.params.media_bytes_per_sec());
        let complete = start_transfer + media_time;

        self.head_cylinder = target_cyl;
        self.busy_until = complete;
        if req.kind == RequestKind::Read && self.params.cache_segments > 0 {
            // Cache the extent plus read-ahead.
            let cached = req.sectors + self.params.readahead_sectors;
            self.cache.insert(req.lba, cached);
        }
        DiskAccess {
            start_service,
            start_transfer,
            complete,
            cache_hit: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(lba: u64, sectors: u64) -> DiskRequest {
        DiskRequest {
            lba,
            sectors,
            kind: RequestKind::Read,
        }
    }

    #[test]
    fn media_rate_is_plausible() {
        let p = DiskParams::server_15k();
        let rate = p.media_bytes_per_sec();
        assert!(rate > 50e6 && rate < 80e6, "rate {rate}");
        assert_eq!(p.revolution(), SimDuration::from_ms(4));
    }

    #[test]
    fn seek_curve_monotone_and_bounded() {
        let p = DiskParams::server_15k();
        assert_eq!(p.seek_time(0), SimDuration::ZERO);
        let near = p.seek_time(1);
        let mid = p.seek_time(p.cylinders / 4);
        let full = p.seek_time(p.cylinders);
        assert!(near >= p.seek_min);
        assert!(near < mid && mid < full);
        assert_eq!(full, p.seek_max);
    }

    #[test]
    fn random_8k_read_costs_milliseconds() {
        let mut d = Disk::new(DiskParams::server_15k());
        // Far from the parked head, 16 sectors = 8 KB.
        let a = d.submit(SimTime::ZERO, read(d.params().capacity_sectors() / 2, 16));
        let lat = a.latency_since(SimTime::ZERO);
        assert!(lat > SimDuration::from_ms(1), "latency {lat}");
        assert!(lat < SimDuration::from_ms(20), "latency {lat}");
        assert!(!a.cache_hit);
    }

    #[test]
    fn fcfs_queueing_serializes() {
        let mut d = Disk::new(DiskParams::server_15k());
        let a = d.submit(SimTime::ZERO, read(1_000_000, 16));
        let b = d.submit(SimTime::ZERO, read(30_000_000, 16));
        assert_eq!(b.start_service, a.complete);
        assert!(b.complete > a.complete);
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut d = Disk::new(DiskParams::server_15k());
        let _ = d.submit(SimTime::ZERO, read(5_000, 16));
        let later = SimTime::ZERO + SimDuration::from_ms(100);
        let b = d.submit(later, read(6_000, 16));
        assert_eq!(b.start_service, later);
    }

    #[test]
    fn readahead_gives_sequential_hits() {
        let mut d = Disk::new(DiskParams::server_15k());
        let first = d.submit(SimTime::ZERO, read(10_000, 16));
        assert!(!first.cache_hit);
        // The next sequential chunk is inside the read-ahead window.
        let second = d.submit(first.complete, read(10_016, 16));
        assert!(second.cache_hit);
        // A cache hit is far faster than a mechanical access.
        let hit_lat = second.complete - second.start_service;
        let miss_lat = first.complete - first.start_service;
        assert!(hit_lat * 10 < miss_lat, "{hit_lat} vs {miss_lat}");
        assert_eq!(d.cache_hits(), 1);
    }

    #[test]
    fn cache_disabled_when_zero_segments() {
        let mut p = DiskParams::server_15k();
        p.cache_segments = 0;
        let mut d = Disk::new(p);
        let first = d.submit(SimTime::ZERO, read(10_000, 16));
        let second = d.submit(first.complete, read(10_016, 16));
        assert!(!second.cache_hit);
    }

    #[test]
    fn writes_do_not_populate_read_cache() {
        let mut d = Disk::new(DiskParams::server_15k());
        let w = d.submit(
            SimTime::ZERO,
            DiskRequest {
                lba: 20_000,
                sectors: 16,
                kind: RequestKind::Write,
            },
        );
        let r = d.submit(w.complete, read(20_000, 16));
        assert!(!r.cache_hit);
    }

    #[test]
    fn rotation_is_deterministic() {
        let run = || {
            let mut d = Disk::new(DiskParams::server_15k());
            let mut t = SimTime::ZERO;
            let mut acc = Vec::new();
            for i in 0..10 {
                let a = d.submit(t, read(i * 1_234_567 % 10_000_000, 16));
                t = a.complete;
                acc.push(a);
            }
            acc
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn near_seeks_beat_far_seeks() {
        let mut d1 = Disk::new(DiskParams::server_15k());
        let _ = d1.submit(SimTime::ZERO, read(0, 16));
        let near = d1.submit(SimTime::ZERO + SimDuration::from_ms(50), read(2_000, 16));

        let mut d2 = Disk::new(DiskParams::server_15k());
        let _ = d2.submit(SimTime::ZERO, read(0, 16));
        let far = d2.submit(
            SimTime::ZERO + SimDuration::from_ms(50),
            read(d2.params().capacity_sectors() - 16, 16),
        );
        // Compare positioning time only (exclude rotation jitter by a margin).
        let near_pos = near.start_transfer - near.start_service;
        let far_pos = far.start_transfer - far.start_service;
        assert!(far_pos > near_pos, "{far_pos} <= {near_pos}");
    }

    #[test]
    #[should_panic(expected = "past end of disk")]
    fn oversized_request_panics() {
        let mut d = Disk::new(DiskParams::server_15k());
        let cap = d.params().capacity_sectors();
        let _ = d.submit(SimTime::ZERO, read(cap, 1));
    }
}
