//! Analytic disk and disk-array timing model.
//!
//! The paper drives its memory simulator with disk-DMA arrival times
//! produced by DiskSim 2.0. This crate is the workspace's substitute: a
//! deterministic, mechanically grounded single-disk model (seek curve,
//! rotational position tracked over time, media transfer, on-disk segment
//! cache, FCFS queueing) plus a RAID-0 [`DiskArray`]. It answers the one
//! question the memory simulation needs — *when does the disk start and
//! finish streaming data for this request* — with realistic magnitudes
//! (milliseconds, dominated by positioning for random I/O).
//!
//! Determinism: rotational latency is not random; the model tracks the
//! platter's angular position as a function of absolute time, so identical
//! request sequences produce identical timings.
//!
//! # Example
//!
//! ```
//! use disksim::{Disk, DiskParams, DiskRequest, RequestKind};
//! use simcore::SimTime;
//!
//! let mut disk = Disk::new(DiskParams::server_15k());
//! let req = DiskRequest { lba: 1_000_000, sectors: 16, kind: RequestKind::Read };
//! let done = disk.submit(SimTime::ZERO, req);
//! assert!(done.complete > done.start_transfer);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod array;
mod cache;
mod disk;
mod sched;
mod zones;

pub use array::DiskArray;
pub use cache::SegmentCache;
pub use disk::{Disk, DiskAccess, DiskParams, DiskRequest, RequestKind};
pub use sched::{schedule, total_seek_distance, Discipline};
pub use zones::{Zone, ZonedGeometry};
