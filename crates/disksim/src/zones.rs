//! Zoned (multi-zone) disk geometry.
//!
//! Real disks record more sectors per track on outer cylinders (zoned bit
//! recording), so sequential bandwidth is higher at low LBAs. This module
//! layers a zone table over [`crate::DiskParams`]: the zone determines the
//! sectors-per-track (and therefore the media rate) used for a request.

use simcore::SimDuration;

use crate::disk::DiskParams;

/// One zone: a contiguous cylinder range with uniform track density.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zone {
    /// First cylinder of the zone.
    pub first_cylinder: u64,
    /// Sectors per track within the zone.
    pub sectors_per_track: u64,
}

/// A zoned geometry: a base parameter set plus a zone table.
///
/// # Example
///
/// ```
/// use disksim::{DiskParams, ZonedGeometry};
///
/// let z = ZonedGeometry::three_zone(DiskParams::server_15k());
/// // Outer zone (low cylinders) is denser than the inner zone.
/// let outer = z.media_rate_at_cylinder(0);
/// let inner = z.media_rate_at_cylinder(z.base().cylinders - 1);
/// assert!(outer > inner);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZonedGeometry {
    base: DiskParams,
    zones: Vec<Zone>,
}

impl ZonedGeometry {
    /// Builds a zoned geometry.
    ///
    /// # Panics
    ///
    /// Panics if `zones` is empty, not sorted by `first_cylinder`, does not
    /// start at cylinder 0, or contains a zone past the end of the disk.
    pub fn new(base: DiskParams, zones: Vec<Zone>) -> Self {
        assert!(!zones.is_empty(), "no zones");
        assert_eq!(zones[0].first_cylinder, 0, "zones must start at cylinder 0");
        for w in zones.windows(2) {
            assert!(
                w[0].first_cylinder < w[1].first_cylinder,
                "zones must be sorted and disjoint"
            );
        }
        assert!(
            zones.last().expect("non-empty").first_cylinder < base.cylinders,
            "zone starts past end of disk"
        );
        for z in &zones {
            assert!(z.sectors_per_track > 0, "empty tracks in zone");
        }
        ZonedGeometry { base, zones }
    }

    /// A typical three-zone profile: outer tracks 30 % denser, inner
    /// tracks 30 % sparser than the base geometry.
    pub fn three_zone(base: DiskParams) -> Self {
        let c = base.cylinders;
        let spt = base.sectors_per_track;
        ZonedGeometry::new(
            base,
            vec![
                Zone {
                    first_cylinder: 0,
                    sectors_per_track: spt * 13 / 10,
                },
                Zone {
                    first_cylinder: c / 3,
                    sectors_per_track: spt,
                },
                Zone {
                    first_cylinder: 2 * c / 3,
                    sectors_per_track: spt * 7 / 10,
                },
            ],
        )
    }

    /// The base (zone-less) parameters.
    pub fn base(&self) -> &DiskParams {
        &self.base
    }

    /// Number of zones.
    pub fn zones(&self) -> usize {
        self.zones.len()
    }

    /// The zone containing `cylinder`.
    pub fn zone_of_cylinder(&self, cylinder: u64) -> &Zone {
        let idx = self
            .zones
            .partition_point(|z| z.first_cylinder <= cylinder)
            .saturating_sub(1);
        &self.zones[idx]
    }

    /// Media transfer rate at `cylinder`, in bytes per second.
    pub fn media_rate_at_cylinder(&self, cylinder: u64) -> f64 {
        let z = self.zone_of_cylinder(cylinder);
        z.sectors_per_track as f64 * self.base.sector_bytes as f64 * self.base.rps()
    }

    /// Time to transfer `bytes` from media at `cylinder`.
    pub fn media_time(&self, cylinder: u64, bytes: u64) -> SimDuration {
        SimDuration::from_bytes_at_rate(bytes, self.media_rate_at_cylinder(cylinder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_lookup_uses_ranges() {
        let z = ZonedGeometry::three_zone(DiskParams::server_15k());
        let c = z.base().cylinders;
        assert_eq!(z.zone_of_cylinder(0).first_cylinder, 0);
        assert_eq!(z.zone_of_cylinder(c / 3).first_cylinder, c / 3);
        assert_eq!(z.zone_of_cylinder(c / 3 - 1).first_cylinder, 0);
        assert_eq!(z.zone_of_cylinder(c - 1).first_cylinder, 2 * c / 3);
    }

    #[test]
    fn outer_zone_transfers_faster() {
        let z = ZonedGeometry::three_zone(DiskParams::server_15k());
        let c = z.base().cylinders;
        let outer = z.media_time(0, 8192);
        let mid = z.media_time(c / 2, 8192);
        let inner = z.media_time(c - 1, 8192);
        assert!(outer < mid, "{outer} >= {mid}");
        assert!(mid < inner, "{mid} >= {inner}");
    }

    #[test]
    fn rate_matches_density_ratio() {
        let base = DiskParams::server_15k();
        let z = ZonedGeometry::three_zone(base.clone());
        let ratio = z.media_rate_at_cylinder(0) / base.media_bytes_per_sec();
        assert!((ratio - 1.3).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "start at cylinder 0")]
    fn zones_must_cover_from_zero() {
        let _ = ZonedGeometry::new(
            DiskParams::server_15k(),
            vec![Zone {
                first_cylinder: 10,
                sectors_per_track: 100,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn zones_must_be_sorted() {
        let _ = ZonedGeometry::new(
            DiskParams::server_15k(),
            vec![
                Zone {
                    first_cylinder: 0,
                    sectors_per_track: 100,
                },
                Zone {
                    first_cylinder: 0,
                    sectors_per_track: 90,
                },
            ],
        );
    }
}
