//! On-disk segment (track buffer) cache.

/// An LRU cache of LBA extents, modelling a drive's segmented read cache.
///
/// Each entry is a contiguous sector extent; a lookup hits when the
/// requested extent lies entirely inside one cached extent.
///
/// # Example
///
/// ```
/// use disksim::SegmentCache;
///
/// let mut c = SegmentCache::new(2);
/// c.insert(100, 50);
/// assert!(c.contains(120, 10));
/// assert!(!c.contains(140, 20)); // runs past the extent
/// ```
#[derive(Debug, Clone, Default)]
pub struct SegmentCache {
    capacity: usize,
    /// Most-recently-used last.
    segments: Vec<(u64, u64)>, // (start, len)
}

impl SegmentCache {
    /// Creates a cache with space for `capacity` segments (0 disables it).
    pub fn new(capacity: usize) -> Self {
        SegmentCache {
            capacity,
            segments: Vec::with_capacity(capacity),
        }
    }

    /// Number of resident segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if no segments are resident.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// True if `[lba, lba+sectors)` lies entirely inside a cached segment.
    pub fn contains(&self, lba: u64, sectors: u64) -> bool {
        self.segments
            .iter()
            .any(|&(s, l)| lba >= s && lba + sectors <= s + l)
    }

    /// Marks the segment containing the extent as most recently used.
    pub fn touch(&mut self, lba: u64, sectors: u64) {
        if let Some(i) = self
            .segments
            .iter()
            .position(|&(s, l)| lba >= s && lba + sectors <= s + l)
        {
            let seg = self.segments.remove(i);
            self.segments.push(seg);
        }
    }

    /// Inserts a new segment `[lba, lba+sectors)`, evicting the least
    /// recently used if full. No-op when capacity is zero.
    pub fn insert(&mut self, lba: u64, sectors: u64) {
        if self.capacity == 0 || sectors == 0 {
            return;
        }
        // Drop any segment fully covered by the new one.
        self.segments
            .retain(|&(s, l)| !(s >= lba && s + l <= lba + sectors));
        if self.segments.len() == self.capacity {
            self.segments.remove(0);
        }
        self.segments.push((lba, sectors));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_full_containment() {
        let mut c = SegmentCache::new(4);
        c.insert(100, 10);
        assert!(c.contains(100, 10));
        assert!(c.contains(105, 5));
        assert!(!c.contains(95, 10));
        assert!(!c.contains(105, 6));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SegmentCache::new(2);
        c.insert(0, 10);
        c.insert(100, 10);
        c.touch(0, 10); // 0 becomes MRU; 100 is now LRU
        c.insert(200, 10); // evicts 100
        assert!(c.contains(0, 10));
        assert!(!c.contains(100, 10));
        assert!(c.contains(200, 10));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn covered_segments_are_merged_away() {
        let mut c = SegmentCache::new(4);
        c.insert(100, 10);
        c.insert(90, 40); // covers [100,110)
        assert_eq!(c.len(), 1);
        assert!(c.contains(100, 10));
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut c = SegmentCache::new(0);
        c.insert(0, 100);
        assert!(c.is_empty());
        assert!(!c.contains(0, 1));
    }
}
