//! RAID-0 striping over several disks.

use simcore::SimTime;

use crate::disk::{Disk, DiskAccess, DiskParams, DiskRequest};

/// A RAID-0 (striped) array of identical disks.
///
/// The array stripes the logical address space in fixed-size stripe units;
/// page-sized requests (16 sectors) land on a single member disk, so the
/// array behaves as an independent-queue load spreader — exactly the role
/// the disk back-end plays for the paper's storage-server traces.
///
/// # Example
///
/// ```
/// use disksim::{DiskArray, DiskParams, DiskRequest, RequestKind};
/// use simcore::SimTime;
///
/// let mut array = DiskArray::new(DiskParams::server_15k(), 4, 128);
/// let req = DiskRequest { lba: 5_000, sectors: 16, kind: RequestKind::Read };
/// let access = array.submit(SimTime::ZERO, req);
/// assert!(access.complete > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct DiskArray {
    disks: Vec<Disk>,
    stripe_sectors: u64,
}

impl DiskArray {
    /// Creates an array of `n` disks with `stripe_sectors`-sector stripe
    /// units.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `stripe_sectors == 0`.
    pub fn new(params: DiskParams, n: usize, stripe_sectors: u64) -> Self {
        assert!(n > 0, "empty array");
        assert!(stripe_sectors > 0, "zero stripe");
        DiskArray {
            disks: (0..n).map(|_| Disk::new(params.clone())).collect(),
            stripe_sectors,
        }
    }

    /// Number of member disks.
    pub fn width(&self) -> usize {
        self.disks.len()
    }

    /// Stripe unit in sectors.
    pub fn stripe_sectors(&self) -> u64 {
        self.stripe_sectors
    }

    /// Total capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.disks[0].params().capacity_sectors() * self.disks.len() as u64
    }

    /// Which member disk serves array LBA `lba`, and the member-local LBA.
    pub fn locate(&self, lba: u64) -> (usize, u64) {
        let stripe = lba / self.stripe_sectors;
        let disk = (stripe % self.disks.len() as u64) as usize;
        let local_stripe = stripe / self.disks.len() as u64;
        let local = local_stripe * self.stripe_sectors + lba % self.stripe_sectors;
        (disk, local)
    }

    /// Submits a request; it is routed to the member disk owning its first
    /// stripe (requests no larger than one stripe unit — the workspace's
    /// page-sized accesses — never split).
    ///
    /// # Panics
    ///
    /// Panics on empty requests or requests past the end of the array.
    pub fn submit(&mut self, now: SimTime, req: DiskRequest) -> DiskAccess {
        assert!(req.sectors > 0, "empty request");
        assert!(
            req.lba + req.sectors <= self.capacity_sectors(),
            "request past end of array"
        );
        let (disk, local) = self.locate(req.lba);
        self.disks[disk].submit(
            now,
            DiskRequest {
                lba: local,
                sectors: req.sectors,
                kind: req.kind,
            },
        )
    }

    /// Total requests served across members.
    pub fn served(&self) -> u64 {
        self.disks.iter().map(Disk::served).sum()
    }

    /// Per-member served counts (for balance checks).
    pub fn served_per_disk(&self) -> Vec<u64> {
        self.disks.iter().map(Disk::served).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::RequestKind;
    use simcore::SimDuration;

    fn read(lba: u64) -> DiskRequest {
        DiskRequest {
            lba,
            sectors: 16,
            kind: RequestKind::Read,
        }
    }

    #[test]
    fn locate_round_robins_stripes() {
        let a = DiskArray::new(DiskParams::server_15k(), 4, 128);
        assert_eq!(a.locate(0).0, 0);
        assert_eq!(a.locate(128).0, 1);
        assert_eq!(a.locate(256).0, 2);
        assert_eq!(a.locate(384).0, 3);
        assert_eq!(a.locate(512).0, 0);
        // Local addresses advance one stripe per full rotation.
        assert_eq!(a.locate(512).1, 128);
        assert_eq!(a.locate(5).1, 5);
    }

    #[test]
    fn parallel_queues_overlap() {
        // Two requests to different members overlap; to the same member they
        // serialize.
        let mut a = DiskArray::new(DiskParams::server_15k(), 2, 128);
        let r0 = a.submit(SimTime::ZERO, read(0)); // disk 0
        let r1 = a.submit(SimTime::ZERO, read(128)); // disk 1
        assert_eq!(r1.start_service, SimTime::ZERO, "independent queue stalled");
        let r2 = a.submit(SimTime::ZERO, read(256)); // disk 0 again
        assert_eq!(r2.start_service, r0.complete);
        let _ = r1;
    }

    #[test]
    fn striping_balances_sequential_load() {
        let mut a = DiskArray::new(DiskParams::server_15k(), 4, 16);
        let mut t = SimTime::ZERO;
        for i in 0..64 {
            let acc = a.submit(t, read(i * 16));
            t = t.max(acc.start_service) + SimDuration::from_us(10);
        }
        let per = a.served_per_disk();
        assert_eq!(per, vec![16, 16, 16, 16]);
    }

    #[test]
    fn capacity_scales_with_width() {
        let single = DiskParams::server_15k().capacity_sectors();
        let a = DiskArray::new(DiskParams::server_15k(), 3, 128);
        assert_eq!(a.capacity_sectors(), single * 3);
    }

    #[test]
    #[should_panic(expected = "past end of array")]
    fn out_of_range_panics() {
        let mut a = DiskArray::new(DiskParams::server_15k(), 2, 128);
        let cap = a.capacity_sectors();
        let _ = a.submit(SimTime::ZERO, read(cap));
    }
}
