//! Disk-head scheduling disciplines.
//!
//! The analytic [`crate::Disk`] serves FCFS (its `submit` returns final
//! timings immediately, which requires arrival order = service order).
//! Real disk firmware and drivers reorder queued requests to cut seek time;
//! this module provides the classic disciplines as *batch schedulers*: given
//! a set of queued requests and the current head position, produce the
//! service order. The storage-server example and the queueing tests use
//! them to quantify what FCFS costs.

use crate::disk::{DiskParams, DiskRequest};

/// A head-scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Discipline {
    /// First come, first served (no reordering).
    Fcfs,
    /// Shortest seek time first (greedy nearest cylinder).
    Sstf,
    /// Elevator: sweep upward to the last cylinder, then downward (SCAN).
    Scan,
}

/// Orders `requests` for service starting from `head_cylinder`, returning
/// indices into the input slice.
///
/// # Example
///
/// ```
/// use disksim::{schedule, Discipline, DiskParams, DiskRequest, RequestKind};
///
/// let params = DiskParams::server_15k();
/// let spc = params.sectors_per_cylinder();
/// let reqs: Vec<DiskRequest> = [50u64, 10, 28]
///     .iter()
///     .map(|&cyl| DiskRequest { lba: cyl * spc, sectors: 8, kind: RequestKind::Read })
///     .collect();
/// let order = schedule(Discipline::Sstf, &params, 25, &reqs);
/// assert_eq!(order, vec![2, 1, 0]); // 28, then 10, then 50 from cylinder 25
/// ```
pub fn schedule(
    discipline: Discipline,
    params: &DiskParams,
    head_cylinder: u64,
    requests: &[DiskRequest],
) -> Vec<usize> {
    match discipline {
        Discipline::Fcfs => (0..requests.len()).collect(),
        Discipline::Sstf => sstf(params, head_cylinder, requests),
        Discipline::Scan => scan(params, head_cylinder, requests),
    }
}

fn sstf(params: &DiskParams, head: u64, requests: &[DiskRequest]) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..requests.len()).collect();
    let mut order = Vec::with_capacity(requests.len());
    let mut pos = head;
    while !remaining.is_empty() {
        let (slot, &idx) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| {
                let cyl = params.cylinder_of(requests[i].lba);
                (cyl.abs_diff(pos), i) // tie-break on arrival order
            })
            .expect("non-empty remaining");
        pos = params.cylinder_of(requests[idx].lba);
        order.push(idx);
        remaining.remove(slot);
    }
    order
}

fn scan(params: &DiskParams, head: u64, requests: &[DiskRequest]) -> Vec<usize> {
    let mut with_cyl: Vec<(u64, usize)> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| (params.cylinder_of(r.lba), i))
        .collect();
    with_cyl.sort_unstable();
    let split = with_cyl.partition_point(|&(cyl, _)| cyl < head);
    // Upward sweep first, then the below-head ones in descending order.
    let mut order: Vec<usize> = with_cyl[split..].iter().map(|&(_, i)| i).collect();
    order.extend(with_cyl[..split].iter().rev().map(|&(_, i)| i));
    order
}

/// Total seek distance (in cylinders) of serving `requests` in `order`
/// starting from `head_cylinder` — the figure of merit schedulers minimize.
pub fn total_seek_distance(
    params: &DiskParams,
    head_cylinder: u64,
    requests: &[DiskRequest],
    order: &[usize],
) -> u64 {
    let mut pos = head_cylinder;
    let mut total = 0;
    for &i in order {
        let cyl = params.cylinder_of(requests[i].lba);
        total += cyl.abs_diff(pos);
        pos = cyl;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::RequestKind;

    fn reqs_at_cylinders(params: &DiskParams, cyls: &[u64]) -> Vec<DiskRequest> {
        cyls.iter()
            .map(|&c| DiskRequest {
                lba: c * params.sectors_per_cylinder(),
                sectors: 8,
                kind: RequestKind::Read,
            })
            .collect()
    }

    #[test]
    fn fcfs_preserves_order() {
        let p = DiskParams::server_15k();
        let reqs = reqs_at_cylinders(&p, &[40, 10, 99]);
        assert_eq!(schedule(Discipline::Fcfs, &p, 0, &reqs), vec![0, 1, 2]);
    }

    #[test]
    fn sstf_picks_nearest_each_step() {
        let p = DiskParams::server_15k();
        let reqs = reqs_at_cylinders(&p, &[100, 20, 60]);
        // From 50: nearest is 60, then 20... (|60-50|=10) -> 60; from 60:
        // |100-60|=40 vs |20-60|=40 tie -> arrival order picks index 0 (100).
        let order = schedule(Discipline::Sstf, &p, 50, &reqs);
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn scan_sweeps_up_then_down() {
        let p = DiskParams::server_15k();
        let reqs = reqs_at_cylinders(&p, &[80, 10, 60, 30]);
        let order = schedule(Discipline::Scan, &p, 50, &reqs);
        // Up: 60, 80; down: 30, 10.
        assert_eq!(order, vec![2, 0, 3, 1]);
    }

    #[test]
    fn sstf_never_seeks_more_than_fcfs_on_average() {
        let p = DiskParams::server_15k();
        let mut rng = simcore::rng::DetRng::new(9);
        let mut fcfs_total = 0u64;
        let mut sstf_total = 0u64;
        for _ in 0..50 {
            let cyls: Vec<u64> = (0..12).map(|_| rng.below(p.cylinders)).collect();
            let reqs = reqs_at_cylinders(&p, &cyls);
            let head = rng.below(p.cylinders);
            let f = schedule(Discipline::Fcfs, &p, head, &reqs);
            let s = schedule(Discipline::Sstf, &p, head, &reqs);
            fcfs_total += total_seek_distance(&p, head, &reqs, &f);
            sstf_total += total_seek_distance(&p, head, &reqs, &s);
        }
        assert!(
            sstf_total < fcfs_total,
            "SSTF {sstf_total} not better than FCFS {fcfs_total}"
        );
    }

    #[test]
    fn schedules_are_permutations() {
        let p = DiskParams::server_15k();
        let reqs = reqs_at_cylinders(&p, &[5, 5, 90, 2, 47, 33]);
        for d in [Discipline::Fcfs, Discipline::Sstf, Discipline::Scan] {
            let mut order = schedule(d, &p, 20, &reqs);
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2, 3, 4, 5], "{d:?} not a permutation");
        }
    }

    #[test]
    fn empty_queue_schedules_empty() {
        let p = DiskParams::server_15k();
        for d in [Discipline::Fcfs, Discipline::Sstf, Discipline::Scan] {
            assert!(schedule(d, &p, 0, &[]).is_empty());
        }
    }
}
