//! Value-generation strategies: ranges, tuples, `any`, and `Just`.

use crate::test_runner::TestRng;
use crate::Arbitrary;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type. Mirrors the part of
/// `proptest::strategy::Strategy` the workspace uses (generation only;
/// no shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors
    /// `proptest::strategy::Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as i128) - (self.start as i128);
                assert!(width > 0, "empty integer range strategy");
                let offset = (rng.next_u64() as u128 % width as u128) as i128;
                ((self.start as i128) + offset) as $t
            }
        }
    )*}
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.uniform() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn pick(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        let v = self.start + (rng.uniform() as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    )*}
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Strategy over a type's whole domain; returned by [`crate::any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T> AnyStrategy<T> {
    pub(crate) fn new() -> Self {
        Self {
            _marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
