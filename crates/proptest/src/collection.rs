//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification for collection strategies: either an exact
/// size or a half-open range, mirroring `proptest::collection::SizeRange`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            start: r.start,
            end: r.end,
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Creates a strategy generating vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.pick(rng)).collect()
    }
}
