//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! in-repo shim provides the subset of the proptest API that the
//! workspace's property tests actually use: the [`proptest!`] macro,
//! range / tuple / collection strategies, `any::<bool>()`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics are deliberately simple: each test function runs a fixed
//! number of deterministic cases (seeded from the test name and case
//! index, so failures are reproducible), and there is **no shrinking**
//! — a failing case reports its seed instead. Set the `PROPTEST_CASES`
//! environment variable to override the number of cases per test.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

use strategy::AnyStrategy;

/// Returns the canonical strategy for a type, mirroring
/// `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy::new()
}

/// Types with a canonical strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates one value from the whole domain of the type.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.uniform()
    }
}

/// The everything-you-need import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Mirrors `proptest::proptest!`.
///
/// Supports an optional `#![proptest_config(..)]` inner attribute and
/// any number of `fn name(arg in strategy, ..) { body }` items, each
/// carrying its own outer attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(
                    let $arg = $crate::strategy::Strategy::pick(&($strategy), __rng);
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the case (with
/// its reproduction seed) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?}` != `{:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)+);
            }
        }
    };
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{:?}` == `{:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left != *right, $($fmt)+);
            }
        }
    };
}

/// Rejects the current case (it is skipped, not failed) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3u64..17,
            b in -5i32..5,
            c in 0.25f64..0.75,
            d in 1usize..2,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&c));
            prop_assert_eq!(d, 1);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            items in crate::collection::vec((0u8..4, 10usize..20), 2..6),
            flag in any::<bool>(),
        ) {
            prop_assert!(items.len() >= 2 && items.len() < 6);
            for (x, y) in &items {
                prop_assert!(*x < 4);
                prop_assert!((10..20).contains(y));
            }
            if flag {
                prop_assume!(!items.is_empty());
            }
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_case_panics_with_seed() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| -> Result<(), TestCaseError> {
                prop_assert!(1 + 1 == 3);
                Ok(())
            },
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        for pass in 0..2 {
            let mut got = Vec::new();
            crate::test_runner::run(&ProptestConfig::with_cases(8), "determinism_probe", |rng| {
                got.push(rng.next_u64());
                Ok(())
            });
            if pass == 0 {
                first = got;
            } else {
                assert_eq!(first, got);
            }
        }
    }
}
