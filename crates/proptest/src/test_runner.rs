//! Deterministic case runner and test-local RNG.

/// Deterministic RNG handed to strategies while generating one case.
///
/// splitmix64 over a per-case seed: tiny, full-period over the seed
/// stream, and completely reproducible from the `(test name, case
/// index)` pair printed on failure.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` using the top 53 bits.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion; the whole test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejection (skipped case) with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
    /// Abort after this many `prop_assume!` rejections across the run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// FNV-1a, used to derive per-test seeds from the test name.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` for each generated case, panicking (with a reproduction
/// seed) on the first failure.
pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = hash_name(name);
    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut attempt = 0u64;
    while case < config.cases {
        let seed = base
            .wrapping_add((attempt).wrapping_mul(0xA076_1D64_78BD_642F))
            .wrapping_add(1);
        attempt += 1;
        let mut rng = TestRng::from_seed(seed);
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(why)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejects}), last: {why}"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {case} (seed {seed:#018x}): {msg}");
            }
        }
    }
}
