//! Machine-readable (JSON) and human rendering of lint findings.

use crate::rules::{Finding, Severity};

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, ordered by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the run.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Advisory findings.
    pub fn warn_count(&self) -> usize {
        self.findings.len() - self.deny_count()
    }

    /// True when the tree passes (no deny findings).
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// Renders the report as a single JSON object:
    /// `{"files_scanned":N,"deny":N,"warn":N,"findings":[…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.findings.len() * 160);
        out.push_str(&format!(
            "{{\"files_scanned\":{},\"deny\":{},\"warn\":{},\"findings\":[",
            self.files_scanned,
            self.deny_count(),
            self.warn_count()
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"severity\":\"{}\",\"path\":{},\"line\":{},\"message\":{},\"snippet\":{}}}",
                json_str(f.rule),
                f.severity.as_str(),
                json_str(&f.path),
                f.line,
                json_str(&f.message),
                json_str(&f.snippet)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (std-only, mirrors simcore::obs::json).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_json_shape() {
        let report = Report {
            findings: vec![Finding {
                rule: "wall-clock",
                severity: Severity::Deny,
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "bad".into(),
                snippet: "Instant::now()".into(),
            }],
            files_scanned: 1,
        };
        let j = report.to_json();
        assert!(j.starts_with("{\"files_scanned\":1,\"deny\":1,\"warn\":0,"));
        assert!(j.contains("\"rule\":\"wall-clock\""));
        assert!(j.contains("\"line\":3"));
        assert!(!report.is_clean());
    }
}
